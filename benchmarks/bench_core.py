"""Micro-benchmarks of the FARMER hot paths.

These measure the per-request mining cost the paper calls "reasonable
overhead": the full observe() pipeline, the similarity kernels, the graph
update and the Correlator List maintenance.
"""

from __future__ import annotations

import pytest

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer
from repro.graph.correlation_graph import CorrelationGraph
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import dpa_similarity, ipa_similarity
from repro.vsm.vocabulary import Vocabulary


def bench_farmer_observe_throughput(benchmark, hp_bench_trace):
    """Full pipeline: requests mined per second (paper's overhead claim)."""

    def mine():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
        return farmer

    farmer = benchmark.pedantic(mine, rounds=2, iterations=1)
    assert farmer.stats().n_observed == len(hp_bench_trace)
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(f"\n[mining cost: {per_req_us:.1f} us/request]")


def bench_extractor(benchmark, hp_bench_trace):
    """Stage 1 alone: semantic-vector extraction."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    records = hp_bench_trace[:1000]
    benchmark(lambda: [extractor.extract(r) for r in records])


def bench_ipa_similarity(benchmark, hp_bench_trace):
    """Function 1 (IPA) over realistic vectors."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = [extractor.extract(r) for r in hp_bench_trace[:200]]
    pairs = [(vectors[i], vectors[(i * 7 + 3) % len(vectors)]) for i in range(200)]
    benchmark(lambda: [ipa_similarity(a, b) for a, b in pairs])


def bench_dpa_similarity(benchmark, hp_bench_trace):
    """Function 1 (DPA) over realistic vectors."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = [extractor.extract(r) for r in hp_bench_trace[:200]]
    pairs = [(vectors[i], vectors[(i * 7 + 3) % len(vectors)]) for i in range(200)]
    benchmark(lambda: [dpa_similarity(a, b) for a, b in pairs])


def bench_graph_observe(benchmark, hp_bench_trace):
    """Stage 2 alone: sliding-window graph updates."""
    fids = [r.fid for r in hp_bench_trace]

    def build():
        graph = CorrelationGraph(window=4)
        for fid in fids:
            graph.observe(fid)
        return graph

    graph = benchmark.pedantic(build, rounds=3, iterations=1)
    assert graph.n_nodes() > 0


def bench_correlator_list_update(benchmark):
    """Stage 3/4: threshold + sorted insert under churn."""
    updates = [((i * 17) % 40, 0.3 + ((i * 13) % 70) / 100.0) for i in range(2000)]

    def churn():
        lst = CorrelatorList(threshold=0.4, capacity=16)
        for fid, degree in updates:
            lst.update(fid, degree)
        return lst

    lst = benchmark.pedantic(churn, rounds=5, iterations=1)
    assert lst.is_sorted()
