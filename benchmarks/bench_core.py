"""Micro-benchmarks of the FARMER hot paths.

These measure the per-request mining cost the paper calls "reasonable
overhead": the full observe() pipeline, the similarity kernels, the graph
update and the Correlator List maintenance.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer
from repro.graph.correlation_graph import CorrelationGraph
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import dpa_similarity, ipa_similarity
from repro.vsm.vocabulary import Vocabulary

EAGER_NO_CACHE = FarmerConfig(lazy_reevaluation=False, sim_cache_capacity=0)


def _sims_per_request(farmer: Farmer) -> float:
    """Function-1 computations per mined request (cache misses)."""
    n = farmer.stats().n_observed
    return farmer.sim_cache_stats().misses / n if n else 0.0


def bench_farmer_observe_throughput(benchmark, hp_bench_trace):
    """Full pipeline: requests mined per second (paper's overhead claim).

    Mines with the default (lazy + versioned sim cache) config and
    prints the similarity computations per request next to the eager
    uncached baseline, so the cache win is visible in BENCH output.
    """

    def mine():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
        farmer.snapshot()  # pay the deferred re-ranks inside the measurement
        return farmer

    farmer = benchmark.pedantic(mine, rounds=2, iterations=1)
    assert farmer.stats().n_observed == len(hp_bench_trace)
    eager = Farmer(EAGER_NO_CACHE)
    for record in hp_bench_trace:
        eager.observe(record)
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    stats = farmer.sim_cache_stats()
    lazy_sims = _sims_per_request(farmer)
    eager_sims = _sims_per_request(eager)
    ratio = eager_sims / lazy_sims if lazy_sims else float("inf")
    print(f"\n[mining cost: {per_req_us:.1f} us/request]")
    print(
        f"[sim computations/request: lazy+cache {lazy_sims:.2f} vs eager "
        f"{eager_sims:.2f} ({ratio:.1f}x fewer); cache hit-rate "
        f"{stats.hit_rate:.1%} ({stats.hits}/{stats.lookups})]"
    )


def bench_farmer_eager_vs_lazy(benchmark, hp_bench_trace):
    """Eager vs lazy observe() throughput on the same trace.

    The benchmark measures the lazy hot path (queries deferred); the
    eager schedule is timed alongside and the speedup printed.
    """
    n = len(hp_bench_trace)

    def mine_lazy():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
        return farmer

    farmer = benchmark.pedantic(mine_lazy, rounds=3, iterations=1)
    assert farmer.stats().n_observed == n
    start = time.perf_counter()
    eager = Farmer(FarmerConfig(lazy_reevaluation=False))
    for record in hp_bench_trace:
        eager.observe(record)
    eager_elapsed = time.perf_counter() - start
    lazy_us = benchmark.stats["mean"] / n * 1e6
    eager_us = eager_elapsed / n * 1e6
    print(
        f"\n[observe(): lazy {lazy_us:.1f} us/request vs eager "
        f"{eager_us:.1f} us/request ({eager_us / lazy_us:.1f}x)]"
    )


def bench_predict_under_churn(benchmark, hp_bench_trace):
    """The FPA loop: every request mines and immediately predicts, so
    each prediction pays the deferred re-rank of a dirty list."""

    def churn():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
            farmer.predict(record.fid)
        return farmer

    farmer = benchmark.pedantic(churn, rounds=2, iterations=1)
    stats = farmer.sim_cache_stats()
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(
        f"\n[observe+predict: {per_req_us:.1f} us/request; cache hit-rate "
        f"{stats.hit_rate:.1%}; sims/request {_sims_per_request(farmer):.2f}]"
    )


def bench_farmer_mine_batch(benchmark, hp_bench_trace):
    """The batched mine() fast path (tick-driven flush at batch end)."""

    def mine():
        return Farmer().mine(hp_bench_trace)

    farmer = benchmark.pedantic(mine, rounds=3, iterations=1)
    assert farmer.stats().n_observed == len(hp_bench_trace)
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(f"\n[batch mine: {per_req_us:.1f} us/request]")


def bench_extractor(benchmark, hp_bench_trace):
    """Stage 1 alone: semantic-vector extraction."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    records = hp_bench_trace[:1000]
    benchmark(lambda: [extractor.extract(r) for r in records])


def bench_ipa_similarity(benchmark, hp_bench_trace):
    """Function 1 (IPA) over realistic vectors."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = [extractor.extract(r) for r in hp_bench_trace[:200]]
    pairs = [(vectors[i], vectors[(i * 7 + 3) % len(vectors)]) for i in range(200)]
    benchmark(lambda: [ipa_similarity(a, b) for a, b in pairs])


def bench_dpa_similarity(benchmark, hp_bench_trace):
    """Function 1 (DPA) over realistic vectors."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = [extractor.extract(r) for r in hp_bench_trace[:200]]
    pairs = [(vectors[i], vectors[(i * 7 + 3) % len(vectors)]) for i in range(200)]
    benchmark(lambda: [dpa_similarity(a, b) for a, b in pairs])


def bench_graph_observe(benchmark, hp_bench_trace):
    """Stage 2 alone: sliding-window graph updates."""
    fids = [r.fid for r in hp_bench_trace]

    def build():
        graph = CorrelationGraph(window=4)
        for fid in fids:
            graph.observe(fid)
        return graph

    graph = benchmark.pedantic(build, rounds=3, iterations=1)
    assert graph.n_nodes() > 0


def bench_correlator_list_update(benchmark):
    """Stage 3/4: threshold + sorted insert under churn."""
    updates = [((i * 17) % 40, 0.3 + ((i * 13) % 70) / 100.0) for i in range(2000)]

    def churn():
        lst = CorrelatorList(threshold=0.4, capacity=16)
        for fid, degree in updates:
            lst.update(fid, degree)
        return lst

    lst = benchmark.pedantic(churn, rounds=5, iterations=1)
    assert lst.is_sorted()
