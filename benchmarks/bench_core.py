"""Micro-benchmarks of the FARMER hot paths.

These measure the per-request mining cost the paper calls "reasonable
overhead": the full observe() pipeline, the similarity kernels, the graph
update and the Correlator List maintenance. The mine/flush benches also
assert the *op-count* reductions behind the one-pass re-rank kernel
(zero insorts per re-rank, fewer Function-1 evaluation requests), so the
speedup claims are backed by counted work, not just wall clock.

Run with ``--json`` (or ``BENCH_JSON=dir``) to persist the numbers to
``BENCH_core.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer
from repro.graph.correlation_graph import CorrelationGraph
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import dpa_similarity, ipa_similarity
from repro.vsm.vocabulary import Vocabulary

EAGER_NO_CACHE = FarmerConfig(lazy_reevaluation=False, sim_cache_capacity=0)


def _sims_per_request(farmer: Farmer) -> float:
    """Function-1 computations per mined request (cache misses)."""
    n = farmer.stats().n_observed
    return farmer.sim_cache_stats().misses / n if n else 0.0


def bench_farmer_observe_throughput(benchmark, hp_bench_trace, bench_record):
    """Full pipeline: requests mined per second (paper's overhead claim).

    Mines with the default (lazy + versioned sim cache) config and
    prints the similarity computations per request next to the eager
    uncached baseline, so the cache win is visible in BENCH output.
    """

    def mine():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
        farmer.snapshot()  # pay the deferred re-ranks inside the measurement
        return farmer

    farmer = benchmark.pedantic(mine, rounds=2, iterations=1)
    assert farmer.stats().n_observed == len(hp_bench_trace)
    eager = Farmer(EAGER_NO_CACHE)
    for record in hp_bench_trace:
        eager.observe(record)
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    stats = farmer.sim_cache_stats()
    lazy_sims = _sims_per_request(farmer)
    eager_sims = _sims_per_request(eager)
    ratio = eager_sims / lazy_sims if lazy_sims else float("inf")
    print(f"\n[mining cost: {per_req_us:.1f} us/request]")
    print(
        f"[sim computations/request: lazy+cache {lazy_sims:.2f} vs eager "
        f"{eager_sims:.2f} ({ratio:.1f}x fewer); cache hit-rate "
        f"{stats.hit_rate:.1%} ({stats.hits}/{stats.lookups})]"
    )
    bench_record(
        us_per_request=per_req_us,
        records_per_s=len(hp_bench_trace) / benchmark.stats["mean"],
        sims_per_request=lazy_sims,
        cache_hit_rate=stats.hit_rate,
    )


def bench_farmer_eager_vs_lazy(benchmark, hp_bench_trace, bench_record):
    """Eager vs lazy observe() throughput on the same trace.

    The benchmark measures the lazy hot path (queries deferred); the
    eager schedule is timed alongside and the speedup printed.
    """
    n = len(hp_bench_trace)

    def mine_lazy():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
        return farmer

    farmer = benchmark.pedantic(mine_lazy, rounds=3, iterations=1)
    assert farmer.stats().n_observed == n
    start = time.perf_counter()
    eager = Farmer(FarmerConfig(lazy_reevaluation=False))
    for record in hp_bench_trace:
        eager.observe(record)
    eager_elapsed = time.perf_counter() - start
    lazy_us = benchmark.stats["mean"] / n * 1e6
    eager_us = eager_elapsed / n * 1e6
    print(
        f"\n[observe(): lazy {lazy_us:.1f} us/request vs eager "
        f"{eager_us:.1f} us/request ({eager_us / lazy_us:.1f}x)]"
    )
    bench_record(
        lazy_us_per_request=lazy_us,
        eager_us_per_request=eager_us,
        speedup=eager_us / lazy_us,
    )


def bench_predict_under_churn(benchmark, hp_bench_trace, bench_record):
    """The FPA loop: every request mines and immediately predicts, so
    each prediction pays the deferred re-rank of a dirty list."""

    def churn():
        farmer = Farmer()
        for record in hp_bench_trace:
            farmer.observe(record)
            farmer.predict(record.fid)
        return farmer

    farmer = benchmark.pedantic(churn, rounds=2, iterations=1)
    stats = farmer.sim_cache_stats()
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(
        f"\n[observe+predict: {per_req_us:.1f} us/request; cache hit-rate "
        f"{stats.hit_rate:.1%}; sims/request {_sims_per_request(farmer):.2f}]"
    )
    bench_record(
        us_per_request=per_req_us,
        records_per_s=len(hp_bench_trace) / benchmark.stats["mean"],
        cache_hit_rate=stats.hit_rate,
    )


def bench_farmer_mine_batch(benchmark, hp_bench_trace, bench_record):
    """The batched mine() fast path (tick-driven flush at batch end).

    The acceptance bench for the re-rank kernels. The headline number is
    the fastest kernel available — the vectorized ``array`` kernel when
    numpy is importable, the pure-python ``bulk`` kernel otherwise — and
    the bulk kernel is timed alongside so the artifact carries the
    vectorization speedup on the same box. Within the *same run* the
    bench asserts bit-identical lists across kernels and the op-count
    reductions: zero binary insertions during re-ranks where the
    entrywise reference (clear + per-entry ``update``) pays one per
    retained entry, and reevaluation/scan counters in exact parity.
    """
    try:
        import numpy  # noqa: F401 - picks the headline kernel

        kernel = "array"
    except ImportError:
        kernel = "bulk"
    config = FarmerConfig(rerank_kernel=kernel)

    def mine():
        return Farmer(config).mine(hp_bench_trace)

    farmer = benchmark.pedantic(mine, rounds=5, iterations=1, warmup_rounds=2)
    assert farmer.stats().n_observed == len(hp_bench_trace)
    per_req_us = benchmark.stats["min"] / len(hp_bench_trace) * 1e6
    rps = len(hp_bench_trace) / benchmark.stats["min"]
    # the pure-python kernel on the same box, best of 3 (the denominator
    # of the recorded vectorization speedup)
    bulk_elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        bulk_farmer = Farmer(
            FarmerConfig(rerank_kernel="bulk")
        ).mine(hp_bench_trace)
        bulk_elapsed = min(bulk_elapsed, time.perf_counter() - start)
    bulk_rps = len(hp_bench_trace) / bulk_elapsed
    reference = Farmer(
        FarmerConfig(rerank_kernel="entrywise")
    ).mine(hp_bench_trace)
    stats = farmer.rerank_stats()
    ref_stats = reference.rerank_stats()
    assert stats.n_reevaluations == ref_stats.n_reevaluations
    assert stats.entries_scanned == ref_stats.entries_scanned
    assert stats.insort_ops == 0  # the whole point of rebuild()
    assert ref_stats.insort_ops > 0
    # the speedup only counts if the same run proves equivalence
    for fid in reference.constructor.graph.nodes():
        expected = reference.correlators(fid)
        assert farmer.correlators(fid) == expected
        assert bulk_farmer.correlators(fid) == expected
    print(
        f"\n[batch mine ({kernel}): {per_req_us:.1f} us/request "
        f"({rps:,.0f} rec/s); bulk {bulk_rps:,.0f} rec/s "
        f"({rps / bulk_rps:.2f}x); insorts/re-rank: 0 vs entrywise "
        f"{ref_stats.insort_ops / ref_stats.n_reevaluations:.1f}]"
    )
    bench_record(
        us_per_request=per_req_us,
        records_per_s=rps,
        kernel=kernel,
        bulk_records_per_s=bulk_rps,
        speedup_vs_bulk=rps / bulk_rps,
        bulk_insort_ops=stats.insort_ops,
        entrywise_insort_ops=ref_stats.insort_ops,
        n_reevaluations=stats.n_reevaluations,
        entries_scanned=stats.entries_scanned,
    )


def bench_rerank_kernel_op_counts(benchmark, hp_bench_trace, bench_record):
    """Asserted op-count reductions on the FPA loop: the bulk kernel's
    stamps absorb Function-1 evaluation requests (sim-cache lookups)
    and rebuild() eliminates re-rank insorts, at bit-identical output."""

    def fpa(**kw):
        farmer = Farmer(FarmerConfig(vector_freeze_threshold=8, **kw))
        for record in hp_bench_trace:
            farmer.observe(record)
            farmer.predict(record.fid)
        return farmer

    stamped = benchmark.pedantic(fpa, rounds=2, iterations=1)
    plain = fpa(incremental_rerank=False)
    entrywise = fpa(rerank_kernel="entrywise")
    s_cache, p_cache = stamped.sim_cache_stats(), plain.sim_cache_stats()
    s_ops, e_ops = stamped.rerank_stats(), entrywise.rerank_stats()
    # fewer Function-1 evaluation requests...
    assert s_cache.lookups < p_cache.lookups / 2
    # ...never more recomputations...
    assert s_cache.misses <= p_cache.misses
    # ...and a fraction of the insort work per re-rank
    assert s_ops.insort_ops < e_ops.insort_ops / 2
    print(
        f"\n[Function-1 requests: stamped {s_cache.lookups} vs plain "
        f"{p_cache.lookups} ({p_cache.lookups / s_cache.lookups:.1f}x fewer); "
        f"insorts: bulk {s_ops.insort_ops} vs entrywise {e_ops.insort_ops} "
        f"({e_ops.insort_ops / max(1, s_ops.insort_ops):.1f}x fewer)]"
    )
    bench_record(
        stamped_f1_requests=s_cache.lookups,
        plain_f1_requests=p_cache.lookups,
        stamped_f1_computations=s_cache.misses,
        plain_f1_computations=p_cache.misses,
        bulk_insort_ops=s_ops.insort_ops,
        entrywise_insort_ops=e_ops.insort_ops,
    )


def bench_chunked_mine_incremental(benchmark, hp_bench_trace, bench_record):
    """The incremental service pattern: mine() in small chunks. The
    stamps skip entries whose inputs did not change across chunk
    boundaries — asserted via the skip counter."""
    chunk = 125

    def chunked():
        farmer = Farmer()
        for i in range(0, len(hp_bench_trace), chunk):
            farmer.mine(hp_bench_trace[i : i + chunk])
        return farmer

    farmer = benchmark.pedantic(chunked, rounds=2, iterations=1)
    ops = farmer.rerank_stats()
    assert ops.entries_skipped_unchanged > 0
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(
        f"\n[chunked mine ({chunk}/batch): {per_req_us:.1f} us/request; "
        f"{ops.entries_skipped_unchanged}/{ops.entries_scanned} entries "
        f"fully skipped by stamps]"
    )
    bench_record(
        us_per_request=per_req_us,
        entries_scanned=ops.entries_scanned,
        entries_skipped_unchanged=ops.entries_skipped_unchanged,
    )


def bench_extractor(benchmark, hp_bench_trace):
    """Stage 1 alone: semantic-vector extraction."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    records = hp_bench_trace[:1000]
    benchmark(lambda: [extractor.extract(r) for r in records])


def bench_ipa_similarity(benchmark, hp_bench_trace):
    """Function 1 (IPA) over realistic vectors."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = [extractor.extract(r) for r in hp_bench_trace[:200]]
    pairs = [(vectors[i], vectors[(i * 7 + 3) % len(vectors)]) for i in range(200)]
    benchmark(lambda: [ipa_similarity(a, b) for a, b in pairs])


def bench_dpa_similarity(benchmark, hp_bench_trace):
    """Function 1 (DPA) over realistic vectors."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = [extractor.extract(r) for r in hp_bench_trace[:200]]
    pairs = [(vectors[i], vectors[(i * 7 + 3) % len(vectors)]) for i in range(200)]
    benchmark(lambda: [dpa_similarity(a, b) for a, b in pairs])


def bench_graph_observe(benchmark, hp_bench_trace):
    """Stage 2 alone: sliding-window graph updates."""
    fids = [r.fid for r in hp_bench_trace]

    def build():
        graph = CorrelationGraph(window=4)
        for fid in fids:
            graph.observe(fid)
        return graph

    graph = benchmark.pedantic(build, rounds=3, iterations=1)
    assert graph.n_nodes() > 0


def bench_correlator_list_update(benchmark):
    """Stage 3/4: threshold + sorted insert under churn."""
    updates = [((i * 17) % 40, 0.3 + ((i * 13) % 70) / 100.0) for i in range(2000)]

    def churn():
        lst = CorrelatorList(threshold=0.4, capacity=16)
        for fid, degree in updates:
            lst.update(fid, degree)
        return lst

    lst = benchmark.pedantic(churn, rounds=5, iterations=1)
    assert lst.is_sorted()


def bench_correlator_list_rebuild(benchmark, bench_record):
    """Stage 3/4 bulk path: one-pass rebuild vs 2000 sorted inserts."""
    candidates = [
        (fid, 0.3 + ((fid * 13) % 70) / 100.0) for fid in range(40)
    ]

    def rebuilds():
        lst = CorrelatorList(threshold=0.4, capacity=16)
        for _ in range(50):
            lst.rebuild(candidates)
        return lst

    lst = benchmark.pedantic(rebuilds, rounds=5, iterations=1)
    assert lst.is_sorted()
    assert lst.insort_ops == 0
    bench_record(rebuild_us=benchmark.stats["mean"] / 50 * 1e6)
