"""Benchmarks that regenerate every table and figure of the paper.

Each benchmark runs the corresponding experiment once (``pedantic`` with
one round — these are end-to-end regenerations, not micro-benchmarks)
and prints the paper-style table on the first round, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation
section in one command.
"""

from __future__ import annotations

from repro.experiments import ablations, fig1, fig3, fig5, fig6, fig7, fig8
from repro.experiments import layout_experiment, table2, table3, table4

_PRINTED: set[str] = set()


def _show(result) -> None:
    if result.experiment_id not in _PRINTED:
        _PRINTED.add(result.experiment_id)
        print("\n" + result.render() + "\n")


def bench_fig1(benchmark, bench_events, bench_seeds):
    """Figure 1: successor predictability per attribute filter."""
    result = benchmark.pedantic(
        lambda: fig1.run(n_events=bench_events, seeds=bench_seeds),
        rounds=1,
        iterations=1,
    )
    _show(result)
    for per_filter in result.data["matrix"].values():
        valid = {k: v for k, v in per_filter.items() if v == v}
        assert min(valid, key=valid.get) == "none"


def bench_fig3(benchmark, bench_events, bench_seeds):
    """Figure 3: hit ratio vs max_strength for the four weights."""
    result = benchmark.pedantic(
        lambda: fig3.run(
            n_events=bench_events,
            seeds=bench_seeds,
            traces=("hp",),
            thresholds=(0.2, 0.4, 0.6, 0.8),
        ),
        rounds=1,
        iterations=1,
    )
    _show(result)
    series = result.data["matrix"]["hp"][0.7]
    assert series[0.8] <= series[0.4]


def bench_fig5(benchmark, bench_events, bench_seeds):
    """Figure 5 / Table 5: attribute combinations."""
    result = benchmark.pedantic(
        lambda: fig5.run(n_events=bench_events, seeds=bench_seeds, traces=("hp",)),
        rounds=1,
        iterations=1,
    )
    _show(result)
    assert len(result.data["matrix"]["hp"]) == 15


def bench_fig6(benchmark, bench_events, bench_seeds):
    """Figure 6: response time vs validity threshold."""
    result = benchmark.pedantic(
        lambda: fig6.run(
            n_events=bench_events,
            seeds=bench_seeds,
            thresholds=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        ),
        rounds=1,
        iterations=1,
    )
    _show(result)
    series = result.data["series"]
    assert series[0.4] < series[1.0]


def bench_fig7(benchmark, bench_events, bench_seeds):
    """Figure 7: FPA vs Nexus vs LRU hit ratios on all traces."""
    result = benchmark.pedantic(
        lambda: fig7.run(n_events=bench_events, seeds=bench_seeds),
        rounds=1,
        iterations=1,
    )
    _show(result)
    for trace, per_policy in result.data["matrix"].items():
        assert per_policy["FPA"]["hit_ratio"] >= per_policy["LRU"]["hit_ratio"], trace


def bench_fig8(benchmark, bench_events, bench_seeds):
    """Figure 8: response-time comparison."""
    result = benchmark.pedantic(
        lambda: fig8.run(n_events=bench_events, seeds=bench_seeds),
        rounds=1,
        iterations=1,
    )
    _show(result)
    for trace, rts in result.data["matrix"].items():
        assert rts["FPA"] <= rts["LRU"], trace


def bench_table2(benchmark):
    """Table 2: the exact DPA/IPA worked example."""
    result = benchmark.pedantic(table2.run, rounds=3, iterations=1)
    _show(result)
    assert result.data["all_match"]


def bench_table3(benchmark, bench_events, bench_seeds):
    """Table 3: prefetch accuracy FARMER vs Nexus."""
    result = benchmark.pedantic(
        lambda: table3.run(n_events=bench_events, seeds=bench_seeds),
        rounds=1,
        iterations=1,
    )
    _show(result)
    measured = result.data["measured"]
    assert measured["FARMER"] > measured["Nexus"]


def bench_table4(benchmark, bench_events):
    """Table 4: memory overhead accounting."""
    result = benchmark.pedantic(
        lambda: table4.run(n_events=bench_events), rounds=1, iterations=1
    )
    _show(result)
    matrix = result.data["matrix"]
    assert matrix["llnl"]["extrapolated_mb"] > matrix["ins"]["extrapolated_mb"]


def bench_ablation_dpa_ipa(benchmark, bench_events, bench_seeds):
    """§3.2.1 ablation: IPA vs DPA."""
    result = benchmark.pedantic(
        lambda: ablations.run_dpa_ipa(
            n_events=bench_events, seeds=bench_seeds, traces=("hp",)
        ),
        rounds=1,
        iterations=1,
    )
    _show(result)


def bench_ablation_lda(benchmark, bench_events, bench_seeds):
    """§3.2.2 ablation: LDA vs uniform weighting."""
    result = benchmark.pedantic(
        lambda: ablations.run_lda(
            n_events=bench_events, seeds=bench_seeds, traces=("hp",)
        ),
        rounds=1,
        iterations=1,
    )
    _show(result)


def bench_ablation_sv_policy(benchmark, bench_events, bench_seeds):
    """Vector-policy ablation (merge/latest/first)."""
    result = benchmark.pedantic(
        lambda: ablations.run_sv_policy(
            n_events=bench_events, seeds=bench_seeds, traces=("ins",)
        ),
        rounds=1,
        iterations=1,
    )
    _show(result)


def bench_layout(benchmark, bench_events, bench_seeds):
    """§4.2: correlation-directed layout."""
    result = benchmark.pedantic(
        lambda: layout_experiment.run(n_events=bench_events, seeds=bench_seeds),
        rounds=1,
        iterations=1,
    )
    _show(result)
    assert result.data["seek_ratio"] < 1.0


def bench_ext_predictors(benchmark, bench_events, bench_seeds):
    """Extension: offline accuracy of the predictor family."""
    from repro.experiments import extensions

    result = benchmark.pedantic(
        lambda: extensions.run_predictors(n_events=bench_events, seeds=bench_seeds),
        rounds=1,
        iterations=1,
    )
    _show(result)
    acc = result.data["accuracy"]
    assert acc["Nexus"] > acc["LastSuccessor"]


def bench_ext_regression(benchmark, bench_events):
    """Extension: §7 attribute regression."""
    from repro.experiments import extensions

    result = benchmark.pedantic(
        lambda: extensions.run_regression(n_events=bench_events),
        rounds=1,
        iterations=1,
    )
    _show(result)
    assert result.data["coefficients"]["process"] > 0
