"""Benchmarks of the sharded mining service (`repro.service`).

Two families:

* **Modeled** per-core concurrency (the original mode): each shard's
  substream replayed sequentially; service wall time = slowest shard.
  These numbers are per-core mining throughput, the quantity that scales
  with one miner shard per metadata server.
* **Executed** wall clock: :class:`~repro.service.runner.
  ParallelShardRunner` actually runs the shards on a thread or process
  pool and the number reported is real elapsed time. On a single-core
  CI container the parallel backends show executor overhead rather than
  speedup — the asserted property is output equivalence, and the
  measured timings land in ``BENCH_service.json`` so multi-core runs
  are comparable across PRs.

Run with::

    pytest benchmarks/bench_service.py -q -s \
        -o python_files='bench_*.py' -o python_functions='bench_*' --json
"""

from __future__ import annotations

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.service.harness import (
    compare_parallel_mine,
    compare_single_vs_sharded,
    replay_single,
)
from repro.service.runner import ParallelShardRunner
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import SimulationConfig, run_simulation
from repro.storage.prefetch import ShardedFarmerPrefetcher

BASE = FarmerConfig()


def _report(cmp_) -> None:
    per_shard = ", ".join(
        f"s{t.shard}:{t.n_records}r/{t.elapsed_s * 1e3:.0f}ms" for t in cmp_.timings
    )
    print(
        f"\n[{cmp_.n_shards} shards: aggregate {cmp_.aggregate_throughput:,.0f} req/s "
        f"vs single {cmp_.single_throughput:,.0f} req/s = {cmp_.speedup:.2f}x; "
        f"{cmp_.n_boundary_echoes} echoes; cache hit {cmp_.cache_hit_rate:.1%}]"
        f"\n[per-shard: {per_shard}]"
    )


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def bench_service_observe_predict_scaling(
    benchmark, hp_bench_trace, bench_record, n_shards
):
    """Single-miner vs N-shard observe+predict throughput (FPA loop).

    The benchmark times the sequential replay of every substream; the
    printed aggregate models the shards running concurrently. The
    4-shard configuration is the acceptance point: aggregate throughput
    must be at least 2x the single-miner baseline.
    """
    single_s = replay_single(Farmer(BASE), hp_bench_trace, predict=True)

    def sharded():
        return compare_single_vs_sharded(
            hp_bench_trace,
            BASE.with_(n_shards=n_shards),
            predict=True,
            single_elapsed_s=single_s,
        )

    cmp_ = benchmark.pedantic(sharded, rounds=2, iterations=1)
    _report(cmp_)
    assert cmp_.n_records == len(hp_bench_trace)
    bench_record(
        modeled_speedup=cmp_.speedup,
        aggregate_records_per_s=cmp_.aggregate_throughput,
        single_records_per_s=cmp_.single_throughput,
        n_boundary_echoes=cmp_.n_boundary_echoes,
        cache_hit_rate=cmp_.cache_hit_rate,
    )
    if n_shards == 4:
        assert cmp_.speedup >= 2.0, (
            f"4-shard aggregate throughput only {cmp_.speedup:.2f}x the "
            f"single-miner baseline (acceptance floor is 2x)"
        )


def bench_service_observe_only_4shards(benchmark, hp_bench_trace, bench_record):
    """Pure mining throughput (no per-request predict), 4 shards."""
    single_s = replay_single(Farmer(BASE), hp_bench_trace, predict=False)

    def sharded():
        return compare_single_vs_sharded(
            hp_bench_trace,
            BASE.with_(n_shards=4),
            predict=False,
            single_elapsed_s=single_s,
        )

    cmp_ = benchmark.pedantic(sharded, rounds=2, iterations=1)
    _report(cmp_)
    assert cmp_.n_records == len(hp_bench_trace)
    bench_record(
        modeled_speedup=cmp_.speedup,
        aggregate_records_per_s=cmp_.aggregate_throughput,
    )


def bench_service_strict_isolation_4shards(benchmark, hp_bench_trace, bench_record):
    """Upper bound: no boundary echoes (cross_shard_edges=False)."""
    single_s = replay_single(Farmer(BASE), hp_bench_trace, predict=True)

    def sharded():
        return compare_single_vs_sharded(
            hp_bench_trace,
            BASE.with_(n_shards=4, cross_shard_edges=False),
            predict=True,
            single_elapsed_s=single_s,
        )

    cmp_ = benchmark.pedantic(sharded, rounds=2, iterations=1)
    _report(cmp_)
    assert cmp_.n_boundary_echoes == 0
    bench_record(modeled_speedup=cmp_.speedup)


def bench_vector_freeze_hit_rate(benchmark, hp_bench_trace, bench_record):
    """The vector-stability heuristic: similarity-cache hit rate with
    and without ``vector_freeze_threshold`` on the FPA loop. Stamps are
    held off so the cache counters isolate the heuristic itself."""

    def frozen():
        farmer = Farmer(
            BASE.with_(vector_freeze_threshold=8, incremental_rerank=False)
        )
        for record in hp_bench_trace:
            farmer.observe(record)
            farmer.predict(record.fid)
        return farmer

    farmer = benchmark.pedantic(frozen, rounds=2, iterations=1)
    baseline = Farmer(BASE.with_(incremental_rerank=False))
    for record in hp_bench_trace:
        baseline.observe(record)
        baseline.predict(record.fid)
    hot = farmer.sim_cache_stats()
    cold = baseline.sim_cache_stats()
    print(
        f"\n[cache hit rate: freeze@8 {hot.hit_rate:.1%} vs "
        f"unfrozen {cold.hit_rate:.1%}; Function-1 computations "
        f"{hot.misses} vs {cold.misses}]"
    )
    assert hot.hit_rate > cold.hit_rate
    bench_record(
        frozen_hit_rate=hot.hit_rate,
        unfrozen_hit_rate=cold.hit_rate,
        frozen_f1=hot.misses,
        unfrozen_f1=cold.misses,
    )


def bench_sharded_batch_mine_4shards(benchmark, hp_bench_trace, bench_record):
    """The service's batch ``mine()`` path (per-shard tick flush)."""

    def mine():
        return ShardedFarmer(BASE.with_(n_shards=4)).mine(hp_bench_trace)

    service = benchmark.pedantic(mine, rounds=3, iterations=1)
    assert service.n_observed == len(hp_bench_trace)
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(f"\n[sharded batch mine: {per_req_us:.1f} us/request (sequential)]")
    from dataclasses import asdict

    bench_record(
        us_per_request=per_req_us,
        records_per_s=len(hp_bench_trace) / benchmark.stats["mean"],
        rerank=asdict(service.stats().rerank),
    )


def _owned_lists(service: ShardedFarmer):
    out = {}
    for index, shard in enumerate(service.shards):
        service.flush_shard(index)
        for fid, lst in shard.miner.lists().items():
            if len(lst) and service.shard_of(fid) == index:
                out[fid] = [(e.fid, e.degree) for e in lst.entries()]
    return out


@pytest.mark.parametrize("backend", ["thread", "process"])
def bench_parallel_mine(benchmark, hp_bench_trace, bench_record, backend):
    """Executed-parallel batch mine, wall clock (not modeled).

    Asserts the runner's mined lists equal the sequential
    ``ShardedFarmer.mine`` bit-for-bit, then reports measured elapsed
    time per phase. ``n_workers=2`` matches the CI smoke configuration.
    """
    cfg = BASE.with_(n_shards=4)
    expected = _owned_lists(ShardedFarmer(cfg).mine(hp_bench_trace))

    def parallel():
        service = ShardedFarmer(cfg)
        with ParallelShardRunner(service, n_workers=2, backend=backend) as r:
            report = r.mine(hp_bench_trace)
        return service, report

    service, report = benchmark.pedantic(parallel, rounds=2, iterations=1)
    assert _owned_lists(service) == expected
    assert report.n_records == len(hp_bench_trace)
    print(
        f"\n[{backend} x2 workers: {report.throughput:,.0f} rec/s wall-clock; "
        f"partition {report.partition_s * 1e3:.0f}ms, "
        f"ingest {report.ingest_s * 1e3:.0f}ms, "
        f"flush {report.flush_s * 1e3:.0f}ms]"
    )
    if backend == "process":
        # the shared-snapshot protocol: per-dispatch payloads (token +
        # touched nodes + fids) must stay far below shipping the whole
        # shard (graph + vector store + vocabulary) per dispatch
        assert 0 < report.dispatch_bytes
        assert 0 < report.shared_bytes
        print(
            f"[process dispatch: {report.dispatch_bytes:,} payload bytes + "
            f"{report.shared_bytes:,} once-per-batch snapshot bytes]"
        )
    bench_record(
        wall_clock_records_per_s=report.throughput,
        partition_s=report.partition_s,
        ingest_s=report.ingest_s,
        flush_s=report.flush_s,
        elapsed_s=report.elapsed_s,
        n_workers=report.n_workers,
        dispatch_bytes=report.dispatch_bytes,
        shared_bytes=report.shared_bytes,
        lists_equal_sequential=True,
    )


def bench_routed_prefetch_cluster(benchmark, hp_bench_trace, bench_record):
    """Cluster-routed prefetch vs candidate-drop in the 4-MDS cluster.

    Same engine, same per-request candidate budget and queue limits;
    the routed variant forwards cross-server candidates to the owning
    MDS's prefetch queue instead of dropping them. The asserted (and
    BENCH_service.json-recorded) property is a strictly higher demand
    hit ratio.
    """
    config = SimulationConfig(n_mds=4, cache_capacity=24)

    def engine():
        return ShardedFarmerPrefetcher(ShardedFarmer(BASE.with_(n_shards=4)))

    def routed():
        return run_simulation(
            hp_bench_trace,
            engine(),
            SimulationConfig(n_mds=4, cache_capacity=24, routed_prefetch=True),
        )

    routed_report = benchmark.pedantic(routed, rounds=2, iterations=1)
    drop_report = run_simulation(hp_bench_trace, engine(), config)
    print(
        f"\n[routed hit {routed_report.hit_ratio:.3f} "
        f"({routed_report.prefetch_forwarded} forwarded) vs "
        f"drop hit {drop_report.hit_ratio:.3f}; issued "
        f"{routed_report.prefetch_issued} vs {drop_report.prefetch_issued}]"
    )
    assert routed_report.hit_ratio > drop_report.hit_ratio
    assert routed_report.prefetch_forwarded > 0
    bench_record(
        routed_hit_ratio=routed_report.hit_ratio,
        drop_hit_ratio=drop_report.hit_ratio,
        routed_prefetch_forwarded=routed_report.prefetch_forwarded,
        routed_prefetch_issued=routed_report.prefetch_issued,
        drop_prefetch_issued=drop_report.prefetch_issued,
        routed_mean_response_us=routed_report.mean_response_ns / 1e3,
        drop_mean_response_us=drop_report.mean_response_ns / 1e3,
    )


def bench_rebalance_migration(benchmark, hp_bench_trace, bench_record):
    """Topology change on a mined service: consistent-hash 4 → 5.

    Measures the migration itself (rank + ship the moved fids'
    nodes/lists) and records the moved fraction — the consistent-hash
    contract is a minority move, so migration stays far cheaper than
    the re-mine it replaces.
    """
    cfg = BASE.with_(n_shards=4, shard_policy="consistent_hash")

    def migrate():
        service = ShardedFarmer(cfg).mine(hp_bench_trace)
        return service.rebalance(n_shards=5)

    report = benchmark.pedantic(migrate, rounds=2, iterations=1)
    # benchmark timing includes the mine; the report's own clock is the
    # migration alone
    print(
        f"\n[rebalance 4->5: moved {report.n_migrated}/{report.n_owned} fids "
        f"({report.moved_fraction:.1%}) in {report.elapsed_s * 1e3:.1f}ms]"
    )
    assert 0 < report.moved_fraction < 0.5
    bench_record(
        migration_s=report.elapsed_s,
        n_migrated=report.n_migrated,
        n_owned=report.n_owned,
        moved_fraction=report.moved_fraction,
    )


def bench_failover_recovery(benchmark, hp_bench_trace, bench_record):
    """Failover on a mined, replicated 4-shard service: kill each shard
    and promote its warm standby.

    The benchmark loop times the full kill-promote-reprotect cycle over
    all four shards; the recorded per-shard numbers split promotion
    (the partition's unavailability window once failure is detected —
    installing the standby, no state copied) from reseeding (building
    and fully syncing the replacement standby). The asserted property:
    every promotion restores a populated partition at zero loss (the
    batch mine ends on a sync barrier).
    """
    cfg = BASE.with_(
        n_shards=4, replication=True, standby_sync_interval=500
    )
    service = ShardedFarmer(cfg).mine(hp_bench_trace)

    def failover_cycle():
        reports = []
        for index in range(4):
            service.fail_shard(index)
            reports.append(service.promote_standby(index))
        return reports

    reports = benchmark.pedantic(failover_cycle, rounds=3, iterations=1)
    assert all(r.n_nodes_restored > 0 for r in reports)
    assert all(r.lag == 0 for r in reports)  # mine synced at its barrier
    mean_promote = sum(r.promote_s for r in reports) / len(reports)
    mean_reseed = sum(r.reseed_s for r in reports) / len(reports)
    print(
        f"\n[failover: promote {mean_promote * 1e6:.0f}us/shard, "
        f"reseed {mean_reseed * 1e3:.1f}ms/shard, "
        f"{reports[0].n_nodes_restored} nodes on shard 0]"
    )
    bench_record(
        promote_s=mean_promote,
        reseed_s=mean_reseed,
        n_nodes_restored=reports[0].n_nodes_restored,
        lag_records=reports[0].lag,
    )


def bench_standby_sync_overhead(benchmark, hp_bench_trace, bench_record):
    """What replication costs the live observe path: the same FPA loop
    with and without standby sync barriers every 500 accepted requests.

    The asserted property is transparency (identical predictions); the
    recorded number is the wall-clock overhead ratio, the price of a
    500-request failover loss window.
    """
    import time as _time

    def replay(cfg):
        service = ShardedFarmer(cfg)
        start = _time.perf_counter()
        for record in hp_bench_trace:
            service.observe(record)
            service.predict(record.fid)
        return service, _time.perf_counter() - start

    replay(BASE.with_(n_shards=4))  # warm-up

    def timed_pair():
        _, plain_s = replay(BASE.with_(n_shards=4))
        replicated, replicated_s = replay(
            BASE.with_(n_shards=4, replication=True, standby_sync_interval=500)
        )
        return replicated, plain_s, replicated_s

    replicated, plain_s, replicated_s = benchmark.pedantic(
        timed_pair, rounds=2, iterations=1
    )
    stats = replicated.stats()
    assert stats.n_standby_syncs == len(hp_bench_trace) // 500
    overhead = replicated_s / plain_s if plain_s > 0 else 1.0
    # how the shipped nodes travelled across all barriers: in-place
    # successor-array deltas (same membership at the standby) vs
    # whole-node clones — steady-state barriers should go mostly delta
    replicas = replicated._replicator.replicas
    n_delta = sum(r.n_delta_syncs for r in replicas)
    n_clone = sum(r.n_full_clones for r in replicas)
    print(
        f"\n[standby sync overhead: {overhead:.2f}x wall clock "
        f"({stats.n_standby_syncs} barriers over {len(hp_bench_trace)} "
        f"records; plain {plain_s * 1e3:.0f}ms vs replicated "
        f"{replicated_s * 1e3:.0f}ms; shipped {n_delta} array deltas + "
        f"{n_clone} full clones]"
    )
    bench_record(
        sync_overhead_ratio=overhead,
        plain_observe_predict_s=plain_s,
        replicated_observe_predict_s=replicated_s,
        n_standby_syncs=stats.n_standby_syncs,
        standby_sync_interval=500,
        n_delta_syncs=n_delta,
        n_full_clones=n_clone,
    )


def bench_auto_rebalance_decision(benchmark, hp_bench_trace, bench_record):
    """The load-aware decision on a mined service: read shard loads,
    build ring weights, migrate. Records the moved fraction the
    feedback loop costs (weights near uniform on a balanced workload,
    so the migration is dominated by the hash → consistent_hash policy
    switch)."""
    cfg = BASE.with_(n_shards=4)

    def decide():
        service = ShardedFarmer(cfg).mine(hp_bench_trace)
        return service.auto_rebalance()

    report = benchmark.pedantic(decide, rounds=2, iterations=1)
    print(
        f"\n[auto-rebalance: loads {tuple(int(v) for v in report.loads)} -> "
        f"weights {tuple(round(w, 2) for w in report.weights)}; moved "
        f"{report.rebalance.moved_fraction:.1%} in "
        f"{report.rebalance.elapsed_s * 1e3:.1f}ms]"
    )
    assert len(report.weights) == 4
    bench_record(
        decision_s=report.rebalance.elapsed_s,
        moved_fraction=report.rebalance.moved_fraction,
        weights=list(report.weights),
        loads=list(report.loads),
    )


def bench_online_ingest(benchmark, hp_bench_trace, bench_record):
    """The online ingestion path end to end: trace offered through the
    bounded queue with the consumer thread live, predict queries
    interleaved at the API cadence, then one drain barrier.

    The asserted property: no record is lost — nothing reaches the
    hard shed bound or the deferral watermark, and every accepted
    record is consumed. A producer this hot may cross the *echo*
    watermark (the first, gentlest rung of the ladder: those records
    still mine on their owner shard); the count is recorded, not
    forbidden. The recorded numbers are the sustained offer-to-drain
    throughput, the peak queue depth the consumer allowed (from the
    telemetry plane's ``queue_depth`` series, the same series the HTTP
    API serves), and per-endpoint p50/p95/p99 for ``predict`` and
    ``ingest_batch``.
    """
    import time as _time

    from repro.online import OnlineService

    def run():
        with OnlineService(BASE.with_(n_shards=4), batch_size=256) as svc:
            start = _time.perf_counter()
            for i, record in enumerate(hp_bench_trace):
                svc.offer(record)
                if i % 16 == 0:
                    svc.predict(record.fid)
            svc.drain()
            elapsed = _time.perf_counter() - start
        return svc, elapsed

    svc, elapsed = benchmark.pedantic(run, rounds=2, iterations=1)
    counters = svc.pipeline.counters()
    assert counters.n_shed == 0
    assert counters.n_deferred == 0
    assert counters.n_consumed == counters.n_accepted == len(hp_bench_trace)
    peak_depth = svc.telemetry.series("queue_depth").max()
    latency = svc.telemetry.endpoint_summaries()
    predict = latency["predict"]
    ingest = latency["ingest_batch"]
    throughput = len(hp_bench_trace) / elapsed
    print(
        f"\n[online ingest: {throughput:,.0f} rec/s offer-to-drain; "
        f"peak queue depth {peak_depth:.0f}/{svc.pipeline.policy.capacity}; "
        f"{counters.n_echo_degraded} echo-degraded; "
        f"predict p50 {predict.p50_s * 1e6:.0f}us p99 {predict.p99_s * 1e6:.0f}us; "
        f"ingest_batch p50 {ingest.p50_s * 1e3:.1f}ms p99 {ingest.p99_s * 1e3:.1f}ms]"
    )
    bench_record(
        sustained_records_per_s=throughput,
        peak_queue_depth=peak_depth,
        queue_capacity=svc.pipeline.policy.capacity,
        n_batches=counters.n_batches,
        predict_p50_s=predict.p50_s,
        predict_p95_s=predict.p95_s,
        predict_p99_s=predict.p99_s,
        ingest_batch_p50_s=ingest.p50_s,
        ingest_batch_p95_s=ingest.p95_s,
        ingest_batch_p99_s=ingest.p99_s,
        n_echo_degraded=counters.n_echo_degraded,
        no_records_lost=True,
    )


def bench_snapshot_restore(benchmark, hp_bench_trace, bench_record, tmp_path):
    """Durability cost, recorded honestly (ISSUE 8):

    * WAL append overhead — the same offer→drain ingest run twice, with
      and without a journal (fsync ``interval``/64, the default), both
      rates recorded;
    * snapshot cost — bytes written and the barrier's ingest stall;
    * replay rate — a journaled-but-unmined tail recovered through
      ``ingest_stream``, in records/s.

    The asserted property is the durability contract itself: the
    recovered service's accepted-stream position equals everything that
    was journaled.
    """
    import shutil as _shutil
    import time as _time

    from repro.durability import DurabilityManager
    from repro.online import AdmissionPolicy, OnlineService

    cfg = BASE.with_(n_shards=4)
    wide = AdmissionPolicy(
        capacity=100_000, echo_watermark=1.0, defer_watermark=1.0
    )
    data_dir = tmp_path / "bench-data"

    def ingest(online):
        start = _time.perf_counter()
        for record in hp_bench_trace:
            online.offer(record)
        online.drain()
        return _time.perf_counter() - start

    def run():
        _shutil.rmtree(data_dir, ignore_errors=True)
        plain_s = ingest(OnlineService(cfg, policy=wide))
        manager = DurabilityManager(data_dir, fsync="interval")
        durable = OnlineService(cfg, policy=wide, durability=manager)
        durable_s = ingest(durable)
        snapshot = durable.checkpoint()
        # journal a tail past the barrier, then abandon (the crash) and
        # time its recovery replay
        for record in hp_bench_trace:
            durable.offer(record)
        manager.wal.close()
        recovered, recovery = DurabilityManager(data_dir).recover(cfg)
        assert recovery.durable_seq == 2 * len(hp_bench_trace)
        assert recovered.n_observed == recovery.durable_seq
        return plain_s, durable_s, snapshot, recovery

    plain_s, durable_s, snapshot, recovery = benchmark.pedantic(
        run, rounds=2, iterations=1
    )
    n = len(hp_bench_trace)
    plain_rate = n / plain_s
    durable_rate = n / durable_s
    replay_rate = recovery.wal_replayed / recovery.elapsed_s
    overhead = (plain_rate - durable_rate) / plain_rate
    print(
        f"\n[snapshot/restore: ingest {plain_rate:,.0f} rec/s plain vs "
        f"{durable_rate:,.0f} rec/s durable ({overhead:+.1%} WAL cost); "
        f"snapshot {snapshot.bytes_total / 1e6:.2f}MB in "
        f"{snapshot.elapsed_s * 1e3:.0f}ms stall; replay "
        f"{replay_rate:,.0f} rec/s over {recovery.wal_replayed} records]"
    )
    bench_record(
        plain_ingest_records_per_s=plain_rate,
        durable_ingest_records_per_s=durable_rate,
        wal_append_overhead_fraction=overhead,
        fsync_policy="interval",
        snapshot_bytes=snapshot.bytes_total,
        snapshot_stall_s=snapshot.elapsed_s,
        replay_records_per_s=replay_rate,
        replay_records=recovery.wal_replayed,
        recovery_elapsed_s=recovery.elapsed_s,
    )


def bench_parallel_vs_sequential_wall_clock(
    benchmark, hp_bench_trace, bench_record
):
    """The full wall-clock comparison (single miner, sequential sharded,
    thread and process runners) — the numbers BENCH_service.json keeps
    for the perf trajectory."""

    def compare():
        return compare_parallel_mine(
            hp_bench_trace,
            BASE.with_(n_shards=4),
            n_workers=2,
            backends=("thread", "process"),
        )

    cmp_ = benchmark.pedantic(compare, rounds=2, iterations=1)
    assert cmp_.n_records == len(hp_bench_trace)
    lines = [
        f"{run.backend}: {run.elapsed_s * 1e3:.0f}ms "
        f"({cmp_.speedup_vs_sequential(run):.2f}x vs sequential)"
        for run in cmp_.runs
    ]
    print(
        f"\n[wall clock: single {cmp_.single_mine_s * 1e3:.0f}ms, "
        f"sequential sharded {cmp_.sequential_mine_s * 1e3:.0f}ms, "
        + ", ".join(lines)
        + "]"
    )
    bench_record(
        single_mine_s=cmp_.single_mine_s,
        sequential_mine_s=cmp_.sequential_mine_s,
        **{
            f"{run.backend}_elapsed_s": run.elapsed_s for run in cmp_.runs
        },
        **{
            f"{run.backend}_speedup_vs_sequential": cmp_.speedup_vs_sequential(
                run
            )
            for run in cmp_.runs
        },
    )


def bench_tiering_showdown(benchmark, hp_bench_trace, bench_record):
    """Tier-placement showdown at equal tier budgets (ext_tiering).

    HP@4MDS at a tight fast-tier budget plus one planted-truth scenario:
    the correlated policy (co-promoting mined correlators, cross-server
    placement hints included) must beat both temporal-locality baselines
    on fast-hit ratio. The recorded rows are the BENCH_service.json
    trajectory for the tiering subsystem.
    """
    from repro.experiments.tiering_experiment import cached_scenario, tiered_report

    def correlated():
        return tiered_report(hp_bench_trace, "correlated", 0.05)

    hp = {"correlated": benchmark.pedantic(correlated, rounds=2, iterations=1)}
    for policy in ("lru", "lfu"):
        hp[policy] = tiered_report(hp_bench_trace, policy, 0.05)
    scenario_records, _ = cached_scenario("pipeline", len(hp_bench_trace), 1)
    scen = {
        policy: tiered_report(scenario_records, policy, 0.1, seed=1)
        for policy in ("lru", "lfu", "correlated")
    }
    print(
        "\n[fast-hit hp@0.05: "
        + " ".join(f"{p}={hp[p].fast_hit_ratio:.3f}" for p in hp)
        + " | pipeline@0.1: "
        + " ".join(f"{p}={scen[p].fast_hit_ratio:.3f}" for p in scen)
        + "]"
    )
    for group in (hp, scen):
        assert group["correlated"].fast_hit_ratio > group["lru"].fast_hit_ratio
        assert group["correlated"].fast_hit_ratio > group["lfu"].fast_hit_ratio
    assert hp["correlated"].tier_hints_forwarded > 0
    bench_record(
        **{
            f"tiering_hp_{p}_fast_hit": hp[p].fast_hit_ratio for p in hp
        },
        **{
            f"tiering_pipeline_{p}_fast_hit": scen[p].fast_hit_ratio
            for p in scen
        },
        tiering_hp_correlated_hints=hp["correlated"].tier_hints_forwarded,
        tiering_hp_correlated_promotions=hp["correlated"].tier_promotions,
        tiering_hp_correlated_demotions=hp["correlated"].tier_demotions,
        tiering_hp_correlated_mean_response_us=(
            hp["correlated"].mean_response_ns / 1e3
        ),
    )
