"""Benchmarks of the sharded mining service (`repro.service`).

Single-miner vs 2/4/8-shard observe()+predict() throughput on the
synthetic HP trace. Shard concurrency is modeled, not executed (the
harness times each shard's substream replay separately; service wall
time is the slowest shard — see :mod:`repro.service.harness`), so the
numbers are per-core mining throughput, the quantity that scales with
one miner shard per metadata server.

Run with::

    pytest benchmarks/bench_service.py -q -s \
        -o python_files='bench_*.py' -o python_functions='bench_*'
"""

from __future__ import annotations

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.service.harness import compare_single_vs_sharded, replay_single
from repro.service.sharded import ShardedFarmer

BASE = FarmerConfig()


def _report(cmp_) -> None:
    per_shard = ", ".join(
        f"s{t.shard}:{t.n_records}r/{t.elapsed_s * 1e3:.0f}ms" for t in cmp_.timings
    )
    print(
        f"\n[{cmp_.n_shards} shards: aggregate {cmp_.aggregate_throughput:,.0f} req/s "
        f"vs single {cmp_.single_throughput:,.0f} req/s = {cmp_.speedup:.2f}x; "
        f"{cmp_.n_boundary_echoes} echoes; cache hit {cmp_.cache_hit_rate:.1%}]"
        f"\n[per-shard: {per_shard}]"
    )


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def bench_service_observe_predict_scaling(benchmark, hp_bench_trace, n_shards):
    """Single-miner vs N-shard observe+predict throughput (FPA loop).

    The benchmark times the sequential replay of every substream; the
    printed aggregate models the shards running concurrently. The
    4-shard configuration is the acceptance point: aggregate throughput
    must be at least 2x the single-miner baseline.
    """
    single_s = replay_single(Farmer(BASE), hp_bench_trace, predict=True)

    def sharded():
        return compare_single_vs_sharded(
            hp_bench_trace,
            BASE.with_(n_shards=n_shards),
            predict=True,
            single_elapsed_s=single_s,
        )

    cmp_ = benchmark.pedantic(sharded, rounds=2, iterations=1)
    _report(cmp_)
    assert cmp_.n_records == len(hp_bench_trace)
    if n_shards == 4:
        assert cmp_.speedup >= 2.0, (
            f"4-shard aggregate throughput only {cmp_.speedup:.2f}x the "
            f"single-miner baseline (acceptance floor is 2x)"
        )


def bench_service_observe_only_4shards(benchmark, hp_bench_trace):
    """Pure mining throughput (no per-request predict), 4 shards."""
    single_s = replay_single(Farmer(BASE), hp_bench_trace, predict=False)

    def sharded():
        return compare_single_vs_sharded(
            hp_bench_trace,
            BASE.with_(n_shards=4),
            predict=False,
            single_elapsed_s=single_s,
        )

    cmp_ = benchmark.pedantic(sharded, rounds=2, iterations=1)
    _report(cmp_)
    assert cmp_.n_records == len(hp_bench_trace)


def bench_service_strict_isolation_4shards(benchmark, hp_bench_trace):
    """Upper bound: no boundary echoes (cross_shard_edges=False)."""
    single_s = replay_single(Farmer(BASE), hp_bench_trace, predict=True)

    def sharded():
        return compare_single_vs_sharded(
            hp_bench_trace,
            BASE.with_(n_shards=4, cross_shard_edges=False),
            predict=True,
            single_elapsed_s=single_s,
        )

    cmp_ = benchmark.pedantic(sharded, rounds=2, iterations=1)
    _report(cmp_)
    assert cmp_.n_boundary_echoes == 0


def bench_vector_freeze_hit_rate(benchmark, hp_bench_trace):
    """The vector-stability heuristic: similarity-cache hit rate with
    and without ``vector_freeze_threshold`` on the FPA loop."""

    def frozen():
        farmer = Farmer(BASE.with_(vector_freeze_threshold=8))
        for record in hp_bench_trace:
            farmer.observe(record)
            farmer.predict(record.fid)
        return farmer

    farmer = benchmark.pedantic(frozen, rounds=2, iterations=1)
    baseline = Farmer(BASE)
    for record in hp_bench_trace:
        baseline.observe(record)
        baseline.predict(record.fid)
    hot = farmer.sim_cache_stats()
    cold = baseline.sim_cache_stats()
    print(
        f"\n[cache hit rate: freeze@8 {hot.hit_rate:.1%} vs "
        f"unfrozen {cold.hit_rate:.1%}; Function-1 computations "
        f"{hot.misses} vs {cold.misses}]"
    )
    assert hot.hit_rate > cold.hit_rate


def bench_sharded_batch_mine_4shards(benchmark, hp_bench_trace):
    """The service's batch ``mine()`` path (per-shard tick flush)."""

    def mine():
        return ShardedFarmer(BASE.with_(n_shards=4)).mine(hp_bench_trace)

    service = benchmark.pedantic(mine, rounds=3, iterations=1)
    assert service.n_observed == len(hp_bench_trace)
    per_req_us = benchmark.stats["mean"] / len(hp_bench_trace) * 1e6
    print(f"\n[sharded batch mine: {per_req_us:.1f} us/request (sequential)]")
