"""Micro-benchmarks of the storage substrate: simulator event rate,
cache operations and the B-tree store."""

from __future__ import annotations

from repro.core.farmer import Farmer
from repro.storage.cache import LRUCache
from repro.storage.cluster import SimulationConfig, run_simulation
from repro.storage.kvstore import BTreeKVStore
from repro.storage.prefetch import FarmerPrefetcher, NoPrefetcher


def bench_simulation_lru(benchmark, hp_bench_trace):
    """Event-loop throughput with the LRU (no-prefetch) policy."""
    cfg = SimulationConfig(cache_capacity=72)
    report = benchmark.pedantic(
        lambda: run_simulation(hp_bench_trace, NoPrefetcher(), cfg),
        rounds=2,
        iterations=1,
    )
    assert report.demand_requests == len(hp_bench_trace)


def bench_simulation_fpa(benchmark, hp_bench_trace):
    """Event-loop throughput with full FARMER prefetching."""
    cfg = SimulationConfig(cache_capacity=72)
    report = benchmark.pedantic(
        lambda: run_simulation(hp_bench_trace, FarmerPrefetcher(Farmer()), cfg),
        rounds=2,
        iterations=1,
    )
    assert report.prefetch_issued > 0


def bench_lru_cache_ops(benchmark):
    """Cache lookup/insert mix at steady state."""
    keys = [(i * 37) % 600 for i in range(5000)]

    def churn():
        cache = LRUCache(256)
        for k in keys:
            if cache.lookup(k) is None:
                cache.insert(k, k)
        return cache

    cache = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert len(cache) == 256


def bench_btree_put_get(benchmark):
    """B-tree store: interleaved puts and gets."""
    ops = [((i * 2654435761) % 10_000, i % 3 == 0) for i in range(5000)]

    def churn():
        store = BTreeKVStore(min_degree=16)
        for key, is_get in ops:
            if is_get:
                store.get(key)
            else:
                store.put(key, key)
        return store

    store = benchmark.pedantic(churn, rounds=3, iterations=1)
    store.check_invariants()


def bench_btree_range_scan(benchmark):
    """B-tree cursor scan over 10k keys."""
    store = BTreeKVStore()
    for i in range(10_000):
        store.put(i, i)
    out = benchmark(lambda: sum(1 for _ in store.range(2000, 8000)))
    assert out == 6001
