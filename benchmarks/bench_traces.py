"""Micro-benchmarks of the trace substrate: generation and statistics."""

from __future__ import annotations

from repro.traces.stats import filtered_predictability, successor_predictability
from repro.traces.synthetic import generate_trace


def bench_trace_generation(benchmark):
    """Synthetic HP trace generation rate."""
    trace = benchmark.pedantic(
        lambda: generate_trace("hp", 5000, seed=9), rounds=3, iterations=1
    )
    assert len(trace) == 5000


def bench_llnl_generation(benchmark):
    """LLNL (parallel-job) generation — exercises the job fan-out path."""
    trace = benchmark.pedantic(
        lambda: generate_trace("llnl", 5000, seed=9), rounds=3, iterations=1
    )
    assert len(trace) == 5000


def bench_successor_predictability(benchmark, hp_bench_trace):
    """The Figure 1 'none' statistic."""
    value = benchmark(lambda: successor_predictability(hp_bench_trace))
    assert 0.0 < value < 1.0


def bench_filtered_predictability(benchmark, hp_bench_trace):
    """The Figure 1 per-attribute statistic (pid filter)."""
    value = benchmark(lambda: filtered_predictability(hp_bench_trace, ("process",)))
    assert 0.0 < value <= 1.0
