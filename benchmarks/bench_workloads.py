"""Accuracy benchmarks: mining quality on the planted-truth scenarios.

Unlike the throughput benches, these rows measure *what the miner gets
right*: precision@k / recall@k against each scenario's planted
correlation set plus the prefetch-hit comparison with the plant-only
oracle (see :mod:`repro.workloads.eval` for the metric definitions).
The rows land in ``BENCH_core.json`` (``BENCH_MODULE`` routing) so the
accuracy trajectory is diffable across PRs next to the perf numbers,
and every row asserts its pinned floor from
:data:`repro.workloads.eval.ACCURACY_FLOORS` — an accuracy regression
fails the bench run, not just drifts the artifact.
"""

from __future__ import annotations

import time

import pytest

from repro.workloads import SCENARIO_NAMES, evaluate_scenario
from repro.workloads.eval import check_floors

# route rows into BENCH_core.json next to the mining perf numbers
BENCH_MODULE = "bench_core"

WORKLOAD_EVENTS = 4000


@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def bench_workload_accuracy(scenario, bench_record):
    """Single-shard mining accuracy per scenario, floor-asserted."""
    t0 = time.perf_counter()
    report = evaluate_scenario(scenario, n_events=WORKLOAD_EVENTS, seed=0)
    elapsed = time.perf_counter() - t0
    row = report.to_dict()
    row.pop("scenario")
    bench_record(eval_s=round(elapsed, 3), **row)
    violations = check_floors(report)
    assert not violations, "; ".join(violations)


def bench_workload_sharded_accuracy(bench_record):
    """Sharding's accuracy cost on the multi-tenant scenario.

    Partitioning the graph by fid loses some cross-shard reinforcement
    (boundary echoes keep the edges alive but each shard sees only its
    own side's lists), so sharded precision trails single-shard. The
    row pins both so the gap is tracked, with a loose floor on the
    sharded side.
    """
    single = evaluate_scenario("multi_tenant", n_events=WORKLOAD_EVENTS, seed=0)
    sharded = evaluate_scenario(
        "multi_tenant", n_events=WORKLOAD_EVENTS, seed=0, n_shards=4
    )
    bench_record(
        single_precision_at_4=round(single.at(4).precision, 6),
        sharded_precision_at_4=round(sharded.at(4).precision, 6),
        single_recall_at_4=round(single.at(4).recall, 6),
        sharded_recall_at_4=round(sharded.at(4).recall, 6),
        sharded_mined_hit_rate=round(sharded.mined_hit_rate, 6),
    )
    assert sharded.at(1).precision >= 0.70
    assert sharded.mined_hit_rate >= 0.5 * single.mined_hit_rate
