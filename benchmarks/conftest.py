"""Benchmark fixtures: shared traces so generation cost isn't re-paid,
plus machine-readable result emission.

Every benchmark can record named metrics through the ``bench_record``
fixture; at session end the collected metrics are written as one JSON
file per benchmark module (``bench_core`` → ``BENCH_core.json``), so the
perf trajectory is diffable across PRs instead of living in captured
stdout. Emission is enabled by ``--json [DIR]`` or the ``BENCH_JSON``
environment variable (its value is the output directory; ``1``/empty
means the current directory).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.traces.synthetic import generate_trace

BENCH_EVENTS = 2500
BENCH_SEEDS = (1,)

_RESULTS: dict[str, dict[str, dict]] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="write BENCH_<module>.json files with recorded metrics",
    )


def _json_dir(config) -> Path | None:
    opt = config.getoption("--json", default=None)
    if opt is not None:
        return Path(opt)
    env = os.environ.get("BENCH_JSON")
    if env is not None:
        return Path(".") if env in ("", "1") else Path(env)
    return None


def pytest_sessionfinish(session, exitstatus):
    out_dir = _json_dir(session.config)
    if out_dir is None or not _RESULTS:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    for module, results in sorted(_RESULTS.items()):
        name = module.removeprefix("bench_")
        path = out_dir / f"BENCH_{name}.json"
        # merge with an existing file so several pytest sessions (the CI
        # smoke steps run one per selection) accumulate into one
        # artifact instead of the last session overwriting the rest
        merged = dict(results)
        if path.exists():
            try:
                previous = json.loads(path.read_text()).get("results", {})
            except (OSError, ValueError):
                previous = {}
            merged = {**previous, **results}
        payload = {
            "module": module,
            "created_unix": int(time.time()),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "bench_events": BENCH_EVENTS,
            "results": merged,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[bench json: {path}]")


@pytest.fixture
def bench_record(request):
    """Record named metrics for the current benchmark: call
    ``bench_record(metric=value, ...)`` any number of times; entries
    land in the module's BENCH_*.json under the test's node name. A
    module may set ``BENCH_MODULE`` to route its rows into another
    module's artifact (bench_workloads feeds BENCH_core.json)."""
    module = getattr(request.module, "BENCH_MODULE", request.module.__name__)

    def record(**metrics):
        _RESULTS.setdefault(module, {}).setdefault(
            request.node.name, {}
        ).update(metrics)

    return record


@pytest.fixture(scope="session")
def bench_events():
    return BENCH_EVENTS


@pytest.fixture(scope="session")
def bench_seeds():
    return BENCH_SEEDS


@pytest.fixture(scope="session")
def hp_bench_trace():
    return generate_trace("hp", BENCH_EVENTS, seed=1)


@pytest.fixture(scope="session")
def ins_bench_trace():
    return generate_trace("ins", BENCH_EVENTS, seed=1)
