"""Benchmark fixtures: shared traces so generation cost isn't re-paid."""

from __future__ import annotations

import pytest

from repro.traces.synthetic import generate_trace

BENCH_EVENTS = 2500
BENCH_SEEDS = (1,)


@pytest.fixture(scope="session")
def bench_events():
    return BENCH_EVENTS


@pytest.fixture(scope="session")
def bench_seeds():
    return BENCH_SEEDS


@pytest.fixture(scope="session")
def hp_bench_trace():
    return generate_trace("hp", BENCH_EVENTS, seed=1)


@pytest.fixture(scope="session")
def ins_bench_trace():
    return generate_trace("ins", BENCH_EVENTS, seed=1)
