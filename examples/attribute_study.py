#!/usr/bin/env python
"""Which semantic attributes matter? (the paper's §2.2 + Table 5 story)

Part 1 reproduces the Figure 1 measurement: how much more predictable the
request stream becomes when filtered by each attribute combination.
Part 2 reproduces the Table 5 measurement: the cache hit ratio the
FARMER-enabled prefetcher achieves when its semantic vectors use each
attribute combination.

Run:
    python examples/attribute_study.py [--trace hp]
"""

from __future__ import annotations

import argparse
from itertools import combinations

from repro import Farmer, FarmerPrefetcher, run_simulation
from repro.experiments.common import farmer_config_for, sim_config_for
from repro.traces.stats import filtered_predictability, successor_predictability
from repro.traces.synthetic import TRACE_NAMES, generate_trace
from repro.utils.tables import format_percent, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=TRACE_NAMES, default="hp")
    parser.add_argument("--events", type=int, default=6000)
    args = parser.parse_args()

    records = generate_trace(args.trace, args.events, seed=1)
    has_path = args.trace in ("hp", "llnl")

    # ------------------------------------------------------------------
    # Part 1: Figure 1 — stream predictability per filter
    # ------------------------------------------------------------------
    filters = [("none", ())] + [
        (name, (name_attr,))
        for name, name_attr in (
            ("uid", "user"),
            ("pid", "process"),
            ("host", "host"),
        )
    ]
    if has_path:
        filters.append(("dir", ("path",)))
    rows = []
    for label, attrs in filters:
        p = (
            filtered_predictability(records, attrs)
            if attrs
            else successor_predictability(records)
        )
        rows.append((label, format_percent(p, 1)))
    print(
        format_table(
            ("filter", "successor predictability"),
            rows,
            title=f"Figure 1 measurement on {args.trace.upper()}",
        )
    )

    # ------------------------------------------------------------------
    # Part 2: Table 5 — hit ratio per attribute combination
    # ------------------------------------------------------------------
    base = ("user", "process", "host")
    fourth = "path" if has_path else "file"
    rows = []
    for r in range(1, 5):
        for combo in combinations((*base, fourth), r):
            attrs = combo if has_path else (*combo, "dev")
            farmer = Farmer(farmer_config_for(args.trace, attributes=attrs))
            report = run_simulation(
                records, FarmerPrefetcher(farmer), sim_config_for(args.trace)
            )
            rows.append(("{" + ", ".join(combo) + "}", format_percent(report.hit_ratio)))
    rows.sort(key=lambda row: row[1], reverse=True)
    print()
    print(
        format_table(
            ("attribute combination", "hit ratio"),
            rows,
            title=f"Table 5 measurement on {args.trace.upper()} (sorted)",
        )
    )


if __name__ == "__main__":
    main()
