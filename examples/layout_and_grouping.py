#!/usr/bin/env python
"""The §4.2/§4.3 applications: data layout, replica groups, security rules.

1. Mines a trace, groups correlated read-only files contiguously on an
   object storage device, and measures the seek/latency win over
   arrival-order placement (§4.2).
2. Builds consistency/replica groups from the strongest correlations
   (§4.3) and shows a security rule propagating across a group.

Run:
    python examples/layout_and_grouping.py
"""

from __future__ import annotations

from repro import Farmer
from repro.apps import (
    SecurityRulePropagator,
    build_replica_groups,
    evaluate_layout,
    plan_arrival_layout,
    plan_correlation_layout,
)
from repro.experiments.common import farmer_config_for
from repro.traces.synthetic import make_workload
from repro.utils.tables import format_table


def main() -> None:
    print("Mining an HP-style trace...")
    workload = make_workload("hp", seed=11)
    records = workload.generate(8000)
    farmer = Farmer(farmer_config_for("hp"))
    farmer.mine(records)

    # ------------------------------------------------------------------
    # §4.2 layout
    # ------------------------------------------------------------------
    read_only = {f.fid for f in workload.namespace.files() if f.read_only}
    sizes = {f.fid: max(1024, f.size) for f in workload.namespace.files()}
    order = [r.fid for r in records]
    batches = [
        [r.fid, *farmer.predict(r.fid)] for r in records if farmer.predict(r.fid)
    ]

    arrival = evaluate_layout(plan_arrival_layout(order), batches, sizes)
    grouped_plan = plan_correlation_layout(
        order, farmer, lambda fid: fid in read_only, group_limit=8
    )
    grouped = evaluate_layout(grouped_plan, batches, sizes)

    print(
        format_table(
            ("layout", "batches", "seeks/batch", "mean latency (ms)"),
            [
                ("arrival order", arrival.n_batches, f"{arrival.mean_seeks_per_batch:.2f}", f"{arrival.mean_latency_ms:.2f}"),
                ("correlation groups", grouped.n_batches, f"{grouped.mean_seeks_per_batch:.2f}", f"{grouped.mean_latency_ms:.2f}"),
            ],
            title="§4.2 correlation-directed layout",
        )
    )
    saved = 1 - grouped.total_seeks / max(1, arrival.total_seeks)
    print(f"seek reduction: {saved * 100:.1f}%  "
          f"({grouped_plan.n_groups} placement groups)")

    # ------------------------------------------------------------------
    # §4.3 replica groups + rule propagation
    # ------------------------------------------------------------------
    fids = [f.fid for f in workload.namespace.files()]
    groups = build_replica_groups(farmer, fids, min_strength=0.5, max_group_size=8)
    multi = [m for m in groups.members.values() if len(m) > 1]
    print(
        f"\n§4.3 replica groups: {groups.n_groups} groups over {len(fids)} files; "
        f"{len(multi)} groups with >1 member "
        f"(largest: {max((len(m) for m in multi), default=1)} files)"
    )
    if multi:
        sample = multi[0]
        print(f"example atomic backup group: {sample}")
        propagator = SecurityRulePropagator(farmer, min_strength=0.5, max_hops=1)
        covered = propagator.assign(sample[0], "deny-external-read")
        print(
            f"security rule assigned to file {sample[0]} auto-covered "
            f"{len(covered)} correlated files: {sorted(covered)}"
        )


if __name__ == "__main__":
    main()
