#!/usr/bin/env python
"""Metadata-server prefetching shoot-out: FPA vs Nexus vs LRU.

Replays each synthetic trace through the HUSt-like metadata-server
simulator under the three policies the paper evaluates and prints the
Figure 7 / Figure 8 quantities: cache hit ratio, prefetch accuracy and
mean response time.

Run:
    python examples/prefetch_comparison.py [--events 8000]
"""

from __future__ import annotations

import argparse

from repro import (
    Farmer,
    FarmerPrefetcher,
    NoPrefetcher,
    PredictorPrefetcher,
    run_simulation,
)
from repro.baselines import Nexus
from repro.experiments.common import farmer_config_for, sim_config_for
from repro.traces.synthetic import TRACE_NAMES, generate_trace
from repro.utils.tables import format_percent, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    rows = []
    for trace_name in TRACE_NAMES:
        print(f"replaying {trace_name} ({args.events} requests) ...")
        records = generate_trace(trace_name, args.events, seed=args.seed)
        policies = {
            "FPA": FarmerPrefetcher(Farmer(farmer_config_for(trace_name))),
            "Nexus": PredictorPrefetcher(Nexus(), k=5),
            "LRU": NoPrefetcher(),
        }
        for name, prefetcher in policies.items():
            report = run_simulation(records, prefetcher, sim_config_for(trace_name))
            acc = report.prefetch_accuracy
            rows.append(
                (
                    trace_name,
                    name,
                    format_percent(report.hit_ratio),
                    format_percent(acc) if acc == acc else "-",
                    f"{report.mean_response_ms:.3f}",
                    format_percent(report.utilization),
                )
            )
    print()
    print(
        format_table(
            ("trace", "policy", "hit ratio", "prefetch acc", "mean resp (ms)", "util"),
            rows,
            title="FPA vs Nexus vs LRU (Figures 7 and 8)",
        )
    )
    print(
        "\nExpected shape: FPA has the highest hit ratio and accuracy and"
        " the lowest response time on every trace."
    )


if __name__ == "__main__":
    main()
