#!/usr/bin/env python
"""Quickstart: mine file correlations from a trace and inspect them.

Generates a synthetic HP-style trace (a time-sharing server with full
path information), runs FARMER over it, and prints the strongest mined
correlations together with the three ingredients of every correlation
degree: the semantic distance (Function 1), the access frequency and the
blended degree R (Function 2).

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Farmer, FarmerConfig, generate_trace
from repro.traces import summarize_trace
from repro.utils.tables import format_table


def main() -> None:
    print("Generating a synthetic HP-style trace (20k requests)...")
    trace = generate_trace("hp", 20_000, seed=42)
    summary = summarize_trace(trace)
    print(format_table(("property", "value"), summary.rows(), title="Trace"))

    print("\nMining with FARMER (p=0.7, max_strength=0.4, IPA)...")
    farmer = Farmer(FarmerConfig())
    farmer.mine(trace)
    stats = farmer.stats()
    print(
        f"mined {stats.n_observed} requests -> {stats.n_files} files, "
        f"{stats.n_edges} graph edges, {stats.n_lists} Correlator Lists, "
        f"{stats.memory_megabytes:.2f} MB mining state"
    )

    print("\nStrongest file correlations:")
    rows = []
    for fid, entry in farmer.sorter.strongest_pairs(10):
        rows.append(
            (
                fid,
                entry.fid,
                f"{farmer.semantic_distance(fid, entry.fid):.3f}",
                f"{farmer.access_frequency(fid, entry.fid):.3f}",
                f"{entry.degree:.3f}",
            )
        )
    print(
        format_table(
            ("file", "correlate", "sim (Fn 1)", "F(A,B)", "R (Fn 2)"), rows
        )
    )

    probe = rows[0][0]
    print(f"\nPrefetch candidates for file {probe}: {farmer.predict(probe)}")
    print("\nDone. Next: examples/prefetch_comparison.py reproduces Figure 7/8.")


if __name__ == "__main__":
    main()
