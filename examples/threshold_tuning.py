#!/usr/bin/env python
"""Tuning FARMER's two key knobs (Figures 3 and 6).

Sweeps the Function 2 blend weight ``p`` and the validity threshold
``max_strength`` on one trace and prints the hit-ratio / response-time
surfaces — the data behind the paper's choice of p = 0.7 and the
observation that thresholds at or below 0.4 leave response time stable.

Run:
    python examples/threshold_tuning.py [--trace hp]
"""

from __future__ import annotations

import argparse

from repro import Farmer, FarmerPrefetcher, run_simulation
from repro.experiments.common import farmer_config_for, sim_config_for
from repro.traces.synthetic import TRACE_NAMES, generate_trace
from repro.utils.tables import format_percent, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=TRACE_NAMES, default="hp")
    parser.add_argument("--events", type=int, default=6000)
    args = parser.parse_args()

    records = generate_trace(args.trace, args.events, seed=1)
    sim_cfg = sim_config_for(args.trace)

    weights = (0.0, 0.3, 0.7, 1.0)
    thresholds = (0.2, 0.4, 0.6, 0.8)
    rows = []
    for p in weights:
        cells = []
        for ms in thresholds:
            farmer = Farmer(
                farmer_config_for(args.trace, weight_p=p, max_strength=ms)
            )
            report = run_simulation(records, FarmerPrefetcher(farmer), sim_cfg)
            cells.append(format_percent(report.hit_ratio, 1))
        rows.append((f"p={p:.1f}", *cells))
    print(
        format_table(
            ("weight", *(f"ms={t}" for t in thresholds)),
            rows,
            title=f"Figure 3 surface on {args.trace.upper()} (hit ratio)",
        )
    )

    rows = []
    for ms in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        farmer = Farmer(farmer_config_for(args.trace, max_strength=ms))
        report = run_simulation(records, FarmerPrefetcher(farmer), sim_cfg)
        rows.append((f"{ms:.1f}", f"{report.mean_response_ms:.3f}",
                     format_percent(report.hit_ratio, 1)))
    print()
    print(
        format_table(
            ("max_strength", "mean response (ms)", "hit ratio"),
            rows,
            title=f"Figure 6 curve on {args.trace.upper()}",
        )
    )
    print("\nExpected: response stable up to ~0.4, degrading beyond;"
          " p=0.7 at or near the top of the hit-ratio surface.")


if __name__ == "__main__":
    main()
