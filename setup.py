"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 builds (which need ``bdist_wheel``) fail. Keeping a setup.py
and no ``[build-system]`` table lets ``pip install -e .`` use the legacy
``setup.py develop`` path, which works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FARMER: file access correlation mining and evaluation reference "
        "model (reproduction of Xia et al., HPDC 2008)"
    ),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["farmer-repro = repro.cli:main"]},
)
