"""FARMER reproduction: file access correlation mining and evaluation.

Reimplementation of Xia, Feng, Jiang, Tian & Wang, *FARMER: A Novel
Approach to File Access Correlation Mining And Evaluation Reference Model
for Optimizing Peta-Scale File System Performance* (HPDC 2008 / UNL TR
TR-UNL-CSE-2008-0001), together with every substrate the evaluation
depends on: synthetic trace workloads, the Nexus/LRU comparators and an
event-driven object-storage (HUSt-like) metadata-server simulator.

Quick start::

    from repro import Farmer, FarmerConfig, generate_trace

    trace = generate_trace("hp", 20_000, seed=1)
    farmer = Farmer(FarmerConfig(weight_p=0.7, max_strength=0.4))
    farmer.mine(trace)
    print(farmer.correlators(trace[0].fid))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.core import (
    DEFAULT_ATTRIBUTES,
    PATHLESS_ATTRIBUTES,
    Farmer,
    FarmerConfig,
    FarmerStats,
)
from repro.graph import CorrelationGraph, CorrelatorEntry, CorrelatorList
from repro.service import (
    HashShardRouter,
    RangeShardRouter,
    ServiceStats,
    ShardedFarmer,
)
from repro.traces import TraceRecord
from repro.vsm import SemanticVector, Vocabulary, similarity

__version__ = "1.0.0"

# The storage simulator and the synthetic trace generators are
# numpy-backed; they are re-exported lazily (PEP 562) so the mining
# core (vsm → graph → core → service) stays importable — and usable on
# hand-built TraceRecord streams — on a numpy-free interpreter. The
# no-numpy CI leg pins this.
_STORAGE_NAMES = (
    "FarmerPrefetcher",
    "LatencyModel",
    "NoPrefetcher",
    "PredictorPrefetcher",
    "ShardedFarmerPrefetcher",
    "SimulationConfig",
    "SimulationReport",
    "run_simulation",
)
_TRACE_GEN_NAMES = ("TRACE_NAMES", "generate_trace", "make_workload")


def __getattr__(name: str):
    if name in _STORAGE_NAMES:
        from repro import storage

        return getattr(storage, name)
    if name in _TRACE_GEN_NAMES:
        from repro import traces

        return getattr(traces, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DEFAULT_ATTRIBUTES",
    "PATHLESS_ATTRIBUTES",
    "Farmer",
    "FarmerConfig",
    "FarmerStats",
    "CorrelationGraph",
    "CorrelatorEntry",
    "CorrelatorList",
    "FarmerPrefetcher",
    "HashShardRouter",
    "LatencyModel",
    "NoPrefetcher",
    "PredictorPrefetcher",
    "RangeShardRouter",
    "ServiceStats",
    "ShardedFarmer",
    "ShardedFarmerPrefetcher",
    "SimulationConfig",
    "SimulationReport",
    "run_simulation",
    "TRACE_NAMES",
    "TraceRecord",
    "generate_trace",
    "make_workload",
    "SemanticVector",
    "Vocabulary",
    "similarity",
    "__version__",
]
