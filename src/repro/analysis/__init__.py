"""Analysis extensions: the paper's §7 future-work regression and an
offline predictor-accuracy harness over the related-work baselines."""

from repro.analysis.predictor_eval import (
    PredictorScore,
    evaluate_predictor,
    evaluate_predictors,
)
from repro.analysis.regression import AttributeRegression, fit_attribute_regression

__all__ = [
    "PredictorScore",
    "evaluate_predictor",
    "evaluate_predictors",
    "AttributeRegression",
    "fit_attribute_regression",
]
