"""Offline predictor evaluation: hit@k over a trace.

The related-work section compares FARMER against a family of classical
predictors (LS, FS, Recent Popularity, Probability Graph, SD graph,
Nexus, PBS, PULS). This harness measures each predictor's raw
*next-access* accuracy independently of any cache: at every request it
asks the predictor for k candidates *before* revealing the request, and
scores a hit if the requested file was among the candidates predicted
after the previous request. This isolates prediction quality from cache
effects — complementary to the simulator's hit-ratio numbers.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.base import Predictor
from repro.traces.record import TraceRecord

__all__ = ["PredictorScore", "evaluate_predictor", "evaluate_predictors"]


@dataclass(frozen=True, slots=True)
class PredictorScore:
    """Offline accuracy of one predictor."""

    name: str
    k: int
    predictions: int
    hits: int
    coverage: float  # fraction of requests where the predictor offered anything

    @property
    def accuracy(self) -> float:
        """hits / predictions (NaN when nothing was predicted)."""
        if self.predictions == 0:
            return float("nan")
        return self.hits / self.predictions


def evaluate_predictor(
    records: Sequence[TraceRecord],
    predictor: Predictor,
    k: int = 1,
    name: str | None = None,
    warmup: int = 0,
) -> PredictorScore:
    """Score ``predictor`` on next-access prediction over ``records``.

    After observing record *i*, the predictor's candidates for record
    *i*'s file are compared against record *i+1*'s file. Records inside
    the ``warmup`` prefix train the predictor without being scored.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    predictions = 0
    hits = 0
    offered = 0
    total = 0
    prev_candidates: list[int] | None = None
    for i, record in enumerate(records):
        if prev_candidates is not None and i > warmup:
            total += 1
            if prev_candidates:
                offered += 1
                predictions += 1
                if record.fid in prev_candidates:
                    hits += 1
        predictor.observe(record)
        prev_candidates = predictor.predict(record.fid, k)
    coverage = offered / total if total else float("nan")
    return PredictorScore(
        name=name if name is not None else type(predictor).__name__,
        k=k,
        predictions=predictions,
        hits=hits,
        coverage=coverage,
    )


def evaluate_predictors(
    records: Sequence[TraceRecord],
    predictors: dict[str, Predictor],
    k: int = 1,
    warmup: int = 0,
) -> list[PredictorScore]:
    """Score several predictors on the same trace, best accuracy first."""
    scores = [
        evaluate_predictor(records, predictor, k=k, name=name, warmup=warmup)
        for name, predictor in predictors.items()
    ]
    scores.sort(key=lambda s: -(s.accuracy if s.accuracy == s.accuracy else -1.0))
    return scores
