"""Multiple regression of file correlation on attribute agreement.

The paper's §7 names this as future work: "multiple regression can be
used to learn more about association between file correlations and
attributes". We implement it: for a mined trace, each (file, successor)
pair contributes one observation whose *response* is the observed access
frequency ``F(A, B)`` and whose *features* are per-attribute agreement
indicators between the two files' semantic contexts (user overlap,
process overlap, host overlap, directory similarity). Ordinary least
squares then quantifies how much each attribute contributes — the
regression-coefficient analogue of the paper's Figure 1 bar chart.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.traces.record import TraceRecord
from repro.vsm.similarity import directory_similarity
from repro.vsm.vector import bag_intersection

__all__ = ["AttributeRegression", "fit_attribute_regression"]


@dataclass(frozen=True)
class AttributeRegression:
    """OLS fit of F(A,B) on per-attribute agreement features."""

    feature_names: tuple[str, ...]
    coefficients: np.ndarray  # aligned with feature_names
    intercept: float
    r_squared: float
    n_observations: int

    def ranked_attributes(self) -> list[tuple[str, float]]:
        """Features sorted by coefficient (most positive first)."""
        pairs = list(zip(self.feature_names, self.coefficients))
        pairs.sort(key=lambda kv: -kv[1])
        return [(name, float(coef)) for name, coef in pairs]

    def summary_rows(self) -> list[tuple[str, str]]:
        """Printable (feature, coefficient) rows plus the fit quality."""
        rows = [(name, f"{coef:+.4f}") for name, coef in self.ranked_attributes()]
        rows.append(("(intercept)", f"{self.intercept:+.4f}"))
        rows.append(("R^2", f"{self.r_squared:.4f}"))
        rows.append(("observations", str(self.n_observations)))
        return rows


def _attribute_overlap(farmer: Farmer, attr: str, src: int, dst: int) -> float:
    """Jaccard-style overlap of one attribute's merged values for a pair."""
    store = farmer.constructor.vectors
    state_src = store._merge.get(src)  # noqa: SLF001 - analysis reaches inside
    state_dst = store._merge.get(dst)  # noqa: SLF001
    if state_src is None or state_dst is None:
        return 0.0
    vals_src = set(state_src.values.get(attr, ()))
    vals_dst = set(state_dst.values.get(attr, ()))
    if not vals_src or not vals_dst:
        return 0.0
    return len(vals_src & vals_dst) / len(vals_src | vals_dst)


def _path_similarity(farmer: Farmer, src: int, dst: int) -> float:
    va = farmer.constructor.vector_of(src)
    vb = farmer.constructor.vector_of(dst)
    if va is None or vb is None:
        return 0.0
    return directory_similarity(va.path_ids, vb.path_ids)


def fit_attribute_regression(
    records: Sequence[TraceRecord],
    attributes: Sequence[str] = ("user", "process", "host"),
    include_path: bool = True,
    config: FarmerConfig | None = None,
    min_pairs: int = 8,
) -> AttributeRegression:
    """Mine ``records`` and regress F(A,B) on attribute agreement.

    Args:
        records: the trace to mine.
        attributes: scalar attributes to include as features.
        include_path: add the directory-similarity feature when the trace
            carries paths.
        config: FARMER configuration for mining (threshold is forced to 0
            so weak pairs are observed too — a regression needs negative
            examples).
        min_pairs: minimum observations required.

    Returns:
        The fitted :class:`AttributeRegression`.

    Raises:
        ValueError: if the trace yields fewer than ``min_pairs`` pairs.
    """
    base = config if config is not None else FarmerConfig()
    mine_attrs = tuple(attributes) + (("path",) if include_path else ())
    farmer = Farmer(base.with_(max_strength=0.0, attributes=mine_attrs, sv_policy="merge"))
    farmer.mine(records)

    has_paths = include_path and any(r.path is not None for r in records)
    feature_names = tuple(attributes) + (("path",) if has_paths else ())

    rows: list[list[float]] = []
    ys: list[float] = []
    graph = farmer.constructor.graph
    for src in graph.nodes():
        for dst in graph.successors(src):
            feats = [_attribute_overlap(farmer, a, src, dst) for a in attributes]
            if has_paths:
                feats.append(_path_similarity(farmer, src, dst))
            rows.append(feats)
            ys.append(graph.frequency(src, dst))
    if len(rows) < min_pairs:
        raise ValueError(
            f"only {len(rows)} (file, successor) pairs; need >= {min_pairs}"
        )
    x = np.asarray(rows, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    design = np.hstack([x, np.ones((len(x), 1))])
    beta, *_ = np.linalg.lstsq(design, y, rcond=None)
    pred = design @ beta
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return AttributeRegression(
        feature_names=feature_names,
        coefficients=beta[:-1],
        intercept=float(beta[-1]),
        r_squared=r_squared,
        n_observations=len(rows),
    )
