"""FARMER applications beyond prefetching (paper §4.2/§4.3):
correlation-directed data layout, replica grouping and security-rule
propagation."""

from repro.apps.grouping import (
    ReplicaGroups,
    SecurityRulePropagator,
    build_replica_groups,
)
from repro.apps.layout import (
    LayoutEvaluation,
    LayoutPlan,
    evaluate_layout,
    plan_arrival_layout,
    plan_correlation_layout,
)

__all__ = [
    "ReplicaGroups",
    "SecurityRulePropagator",
    "build_replica_groups",
    "LayoutEvaluation",
    "LayoutPlan",
    "evaluate_layout",
    "plan_arrival_layout",
    "plan_correlation_layout",
]
