"""FARMER-enabled reliability and security groups (paper §4.3).

Two applications of the mined correlations beyond prefetching:

* **Replica groups** — files with strong mutual correlations are placed
  in the same logical replica group; each group's backup/recovery is an
  atomic operation, giving consistency across correlated files. Groups
  are formed by union-find over correlation edges above a strength bar,
  with a size cap so one hub cannot swallow the namespace.
* **Rule propagation** — a security rule configured on one file is
  automatically applied to its strong correlates (the paper's rule-based
  access example), transitively up to a hop limit.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.farmer import Farmer

__all__ = ["ReplicaGroups", "build_replica_groups", "SecurityRulePropagator"]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent
        if x not in parent:
            parent[x] = x
            self._size[x] = 1
            return x
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def group_size(self, x: int) -> int:
        return self._size[self.find(x)]

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True


@dataclass(frozen=True, slots=True)
class ReplicaGroups:
    """The grouping result: fid → group id, and the member lists."""

    group_of: dict[int, int]
    members: dict[int, tuple[int, ...]]

    @property
    def n_groups(self) -> int:
        """Number of replica groups."""
        return len(self.members)

    def group_members(self, fid: int) -> tuple[int, ...]:
        """All files sharing ``fid``'s replica group (including itself)."""
        return self.members[self.group_of[fid]]


def build_replica_groups(
    farmer: Farmer,
    fids: Iterable[int],
    min_strength: float = 0.5,
    max_group_size: int = 16,
) -> ReplicaGroups:
    """Union strongly correlated files into bounded replica groups.

    Edges are taken from the Correlator Lists (already validity-filtered)
    and additionally gated by ``min_strength`` (strictly greater, matching
    the paper's ``e > max_strength`` convention); stronger edges are
    merged first so the cap keeps the strongest structure.
    """
    if max_group_size < 1:
        raise ValueError("max_group_size must be >= 1")
    uf = _UnionFind()
    fid_list = list(fids)
    for fid in fid_list:
        uf.find(fid)
    edges: list[tuple[float, int, int]] = []
    for fid in fid_list:
        for entry in farmer.correlators(fid):
            if entry.degree > min_strength:
                edges.append((entry.degree, fid, entry.fid))
    edges.sort(key=lambda e: (-e[0], e[1], e[2]))
    for _, a, b in edges:
        if uf.group_size(a) + uf.group_size(b) <= max_group_size:
            uf.union(a, b)
    group_of: dict[int, int] = {}
    buckets: dict[int, list[int]] = {}
    for fid in fid_list:
        root = uf.find(fid)
        group_of[fid] = root
        buckets.setdefault(root, []).append(fid)
    members = {root: tuple(sorted(ms)) for root, ms in buckets.items()}
    return ReplicaGroups(group_of=group_of, members=members)


@dataclass
class SecurityRulePropagator:
    """Propagates rule assignments along strong correlations."""

    farmer: Farmer
    min_strength: float = 0.6
    max_hops: int = 1
    _rules: dict[int, set[str]] = field(default_factory=dict)

    def assign(self, fid: int, rule: str) -> set[int]:
        """Assign ``rule`` to ``fid`` and its strong correlates.

        Returns every fid the rule now covers due to this assignment.
        """
        covered: set[int] = set()
        frontier = {fid}
        for _ in range(self.max_hops + 1):
            next_frontier: set[int] = set()
            for f in frontier:
                if f in covered:
                    continue
                covered.add(f)
                self._rules.setdefault(f, set()).add(rule)
                for entry in self.farmer.correlators(f):
                    if entry.degree >= self.min_strength and entry.fid not in covered:
                        next_frontier.add(entry.fid)
            frontier = next_frontier
            if not frontier:
                break
        return covered

    def rules_of(self, fid: int) -> set[str]:
        """Rules currently attached to ``fid`` (copy)."""
        return set(self._rules.get(fid, ()))
