"""FARMER-enabled file data layout (paper §4.2).

Small correlated files are merged into contiguous groups on the OSD so a
batched access becomes one sequential I/O instead of scattered random
reads. Per the paper's caveat, only read-only files are grouped (mutable
files would make group maintenance complex); everything else is placed in
arrival order.

The planner walks files in a given order; for each yet-unplaced read-only
file it forms a group from the file plus the strongly correlated heads of
its Correlator List (unplaced, read-only) and places the group
contiguously. :func:`evaluate_layout` then replays batched reads and
reports the seek/latency contrast against arrival-order placement.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.farmer import Farmer
from repro.storage.osd import ObjectStorageDevice

__all__ = ["LayoutPlan", "plan_correlation_layout", "plan_arrival_layout", "evaluate_layout", "LayoutEvaluation"]


@dataclass(frozen=True, slots=True)
class LayoutPlan:
    """Placement result: groups in placement order."""

    groups: tuple[tuple[int, ...], ...]

    @property
    def n_groups(self) -> int:
        """Number of placement groups."""
        return len(self.groups)

    def placement_order(self) -> list[int]:
        """Flat fid order as placed on the device."""
        return [fid for group in self.groups for fid in group]


def plan_arrival_layout(fids: Sequence[int]) -> LayoutPlan:
    """Baseline: every file its own group, in first-access order."""
    seen: set[int] = set()
    groups = []
    for fid in fids:
        if fid not in seen:
            seen.add(fid)
            groups.append((fid,))
    return LayoutPlan(groups=tuple(groups))


def plan_correlation_layout(
    fids: Sequence[int],
    farmer: Farmer,
    is_read_only: Callable[[int], bool],
    group_limit: int = 8,
) -> LayoutPlan:
    """Group read-only files with their strongest correlates.

    Files are visited in first-access order. A read-only, unplaced file
    seeds a group; its Correlator List is walked head-first and unplaced
    read-only correlates join until ``group_limit``. Mutable files are
    placed alone (the paper's restriction).
    """
    if group_limit < 1:
        raise ValueError("group_limit must be >= 1")
    placed: set[int] = set()
    groups: list[tuple[int, ...]] = []
    for fid in fids:
        if fid in placed:
            continue
        if not is_read_only(fid):
            placed.add(fid)
            groups.append((fid,))
            continue
        group = [fid]
        placed.add(fid)
        for entry in farmer.correlators(fid):
            if len(group) >= group_limit:
                break
            cand = entry.fid
            if cand in placed or not is_read_only(cand):
                continue
            group.append(cand)
            placed.add(cand)
        groups.append(tuple(group))
    return LayoutPlan(groups=tuple(groups))


@dataclass(frozen=True, slots=True)
class LayoutEvaluation:
    """Batched-read cost of one layout."""

    n_batches: int
    total_seeks: int
    total_latency_ns: int
    mean_seeks_per_batch: float

    @property
    def mean_latency_ms(self) -> float:
        """Mean per-batch latency in milliseconds."""
        if self.n_batches == 0:
            return float("nan")
        return self.total_latency_ns / self.n_batches / 1e6


def evaluate_layout(
    plan: LayoutPlan,
    batches: Sequence[Sequence[int]],
    sizes: dict[int, int],
    osd: ObjectStorageDevice | None = None,
) -> LayoutEvaluation:
    """Place ``plan`` on a fresh OSD and replay batched reads.

    ``batches`` are the correlated access sets (e.g. a file plus its
    prefetch group); ``sizes`` maps fid → byte size (minimum 1KB applied).
    """
    device = osd if osd is not None else ObjectStorageDevice()
    for group in plan.groups:
        for fid in group:
            device.place(fid, max(1024, sizes.get(fid, 1024)))
    total_seeks = 0
    total_latency = 0
    n = 0
    for batch in batches:
        known = [fid for fid in batch if device.is_placed(fid)]
        if not known:
            continue
        cost = device.read_batch(known)
        total_seeks += cost.n_seeks
        total_latency += cost.latency_ns
        n += 1
    return LayoutEvaluation(
        n_batches=n,
        total_seeks=total_seeks,
        total_latency_ns=total_latency,
        mean_seeks_per_batch=(total_seeks / n) if n else float("nan"),
    )
