"""Baseline predictors from the paper's related-work section.

All implement the :class:`~repro.baselines.base.Predictor` protocol and
are registered by name for the experiment harness:

======================  =============================================
name                    algorithm
======================  =============================================
``noop``                no prefetching (LRU comparator)
``last_successor``      Last Successor (LS)
``first_successor``     First Successor (FS)
``stable_successor``    LS with switch hysteresis
``recent_popularity``   best-j-of-k (Amer et al.)
``probability_graph``   Griffioen–Appleton lookahead graph
``sd_graph``            SEER sequence-proximity distance
``nexus``               Gu et al., CCGRID'06 (the paper's comparator)
``pbs``                 program-conditioned LS (Yeh et al.)
``puls``                program+user-conditioned LS (Yeh et al.)
======================  =============================================
"""

from repro.baselines.base import (
    Predictor,
    make_predictor,
    observe_all,
    predictor_names,
    register_predictor,
)
from repro.baselines.last_successor import (
    FirstSuccessor,
    LastSuccessor,
    StableSuccessor,
)
from repro.baselines.nexus import Nexus
from repro.baselines.noop import NoopPredictor
from repro.baselines.pbs import ProgramBasedSuccessor, ProgramUserLastSuccessor
from repro.baselines.probability_graph import ProbabilityGraph
from repro.baselines.recent_popularity import RecentPopularity
from repro.baselines.sd_graph import SDGraph

register_predictor("noop", NoopPredictor)
register_predictor("last_successor", LastSuccessor)
register_predictor("first_successor", FirstSuccessor)
register_predictor("stable_successor", StableSuccessor)
register_predictor("recent_popularity", RecentPopularity)
register_predictor("probability_graph", ProbabilityGraph)
register_predictor("sd_graph", SDGraph)
register_predictor("nexus", Nexus)
register_predictor("pbs", ProgramBasedSuccessor)
register_predictor("puls", ProgramUserLastSuccessor)

__all__ = [
    "Predictor",
    "make_predictor",
    "observe_all",
    "predictor_names",
    "register_predictor",
    "FirstSuccessor",
    "LastSuccessor",
    "StableSuccessor",
    "Nexus",
    "NoopPredictor",
    "ProgramBasedSuccessor",
    "ProgramUserLastSuccessor",
    "ProbabilityGraph",
    "RecentPopularity",
    "SDGraph",
]
