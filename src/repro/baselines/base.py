"""Common interface for file-access predictors.

Every predictor — FARMER itself, Nexus, and the classical baselines the
related-work section discusses — implements the same two-method protocol
so the metadata-server simulator and the experiment harness can swap them
freely:

* ``observe(record)``: learn from one request (online);
* ``predict(fid, k)``: up to ``k`` files likely to follow ``fid``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.traces.record import TraceRecord

__all__ = ["Predictor", "register_predictor", "make_predictor", "predictor_names"]


@runtime_checkable
class Predictor(Protocol):
    """The predictor protocol (structural — no inheritance required)."""

    def observe(self, record: TraceRecord) -> None:
        """Learn from one request."""
        ...  # pragma: no cover - protocol stub

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """Up to ``k`` predicted follower fids, most likely first."""
        ...  # pragma: no cover - protocol stub


_REGISTRY: dict[str, Callable[..., Predictor]] = {}


def register_predictor(name: str, factory: Callable[..., Predictor]) -> None:
    """Register a predictor factory under a stable name."""
    if name in _REGISTRY:
        raise ConfigError(f"predictor {name!r} already registered")
    _REGISTRY[name] = factory


def make_predictor(name: str, **kwargs) -> Predictor:
    """Instantiate a registered predictor by name.

    Raises:
        ConfigError: for an unknown name.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown predictor {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def predictor_names() -> list[str]:
    """All registered predictor names."""
    return sorted(_REGISTRY)


def observe_all(predictor: Predictor, records: Iterable[TraceRecord]) -> Predictor:
    """Feed a whole trace through a predictor (returns it for chaining)."""
    for record in records:
        predictor.observe(record)
    return predictor
