"""Successor-table predictors: Last Successor, First Successor, and the
Stable Successor variant.

These are the classical one-slot predictors the related-work section
cites: LS predicts that the file which followed A last time will follow
again; FS freezes the very first observed successor; Stable Successor
only switches after the same new successor is seen ``patience`` times in
a row (a simplified form of Amer's noise-resistant variants).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.record import TraceRecord

__all__ = ["LastSuccessor", "FirstSuccessor", "StableSuccessor"]


class _SuccessorTable:
    """Shared machinery: track the previous request's fid."""

    def __init__(self) -> None:
        self._prev: int | None = None
        self._table: dict[int, int] = {}

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """The single stored successor (k is accepted for protocol parity)."""
        succ = self._table.get(fid)
        return [succ] if succ is not None and k >= 1 else []


class LastSuccessor(_SuccessorTable):
    """Predict the most recently observed successor of each file."""

    def observe(self, record: TraceRecord) -> None:
        """Update the predecessor's slot to this request's file."""
        fid = record.fid
        if self._prev is not None and self._prev != fid:
            self._table[self._prev] = fid
        self._prev = fid


class FirstSuccessor(_SuccessorTable):
    """Predict the first successor ever observed (never changes)."""

    def observe(self, record: TraceRecord) -> None:
        """Record the successor only if the slot is still empty."""
        fid = record.fid
        if self._prev is not None and self._prev != fid:
            self._table.setdefault(self._prev, fid)
        self._prev = fid


@dataclass
class _Candidate:
    fid: int
    streak: int


class StableSuccessor(_SuccessorTable):
    """Last-successor with hysteresis: switch only after ``patience``
    consecutive observations of the same new successor."""

    def __init__(self, patience: int = 2) -> None:
        super().__init__()
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self._pending: dict[int, _Candidate] = {}

    def observe(self, record: TraceRecord) -> None:
        """Advance the hysteresis state machine for the predecessor."""
        fid = record.fid
        prev = self._prev
        self._prev = fid
        if prev is None or prev == fid:
            return
        current = self._table.get(prev)
        if current is None:
            self._table[prev] = fid
            return
        if current == fid:
            self._pending.pop(prev, None)
            return
        cand = self._pending.get(prev)
        if cand is None or cand.fid != fid:
            self._pending[prev] = _Candidate(fid=fid, streak=1)
            return
        cand.streak += 1
        if cand.streak >= self.patience:
            self._table[prev] = fid
            del self._pending[prev]
