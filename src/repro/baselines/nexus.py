"""Nexus — Gu, Zhu, Jiang & Wang, CCGRID 2006.

The state-of-the-art metadata prefetcher the paper compares against: a
directed weighted graph built with a look-ahead window and *linear
decremented assignment* edge weights, predicting the top-k successors by
edge weight. Nexus deliberately prefetches aggressively (larger groups,
no semantic filtering) — the paper's analysis (§6) attributes its cache
pollution to exactly that, and §7 notes Nexus is the p = 0 special case
of FARMER.

We reuse the same :class:`~repro.graph.correlation_graph.CorrelationGraph`
substrate FARMER builds on, so the comparison isolates the *policy*
difference (semantics + filtering vs none), not implementation details.
"""

from __future__ import annotations

from repro.graph.correlation_graph import CorrelationGraph
from repro.graph.lda import lda_weight
from repro.traces.record import TraceRecord

__all__ = ["Nexus"]


class Nexus:
    """Weighted-graph-based aggressive metadata prefetcher."""

    def __init__(
        self,
        window: int = 4,
        decrement: float = 0.1,
        successor_capacity: int = 32,
        group_size: int = 5,
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size
        self.graph = CorrelationGraph(
            window=window,
            decrement=decrement,
            successor_capacity=successor_capacity,
            weight_fn=lda_weight,
        )

    def observe(self, record: TraceRecord) -> None:
        """Feed one access into the weighted graph (attributes ignored)."""
        self.graph.observe(record.fid)

    def predict(self, fid: int, k: int | None = None) -> list[int]:
        """Top-``k`` successors by LDA edge weight (no thresholding).

        ``k`` defaults to the configured aggressive group size.
        """
        if k is None:
            k = self.group_size
        successors = self.graph.successors(fid)
        if not successors:
            return []
        ranked = sorted(
            successors.items(), key=lambda kv: (-kv[1].weighted_count, kv[0])
        )
        return [dst for dst, _ in ranked[:k]]

    def edge_weight(self, src: int, dst: int) -> float:
        """Raw LDA-weighted edge count (diagnostics/tests)."""
        edge = self.graph.successors(src).get(dst)
        return edge.weighted_count if edge is not None else 0.0

    def approx_bytes(self) -> int:
        """Graph footprint (memory-overhead comparisons)."""
        return self.graph.approx_bytes()
