"""The no-prefetch predictor: observes nothing, predicts nothing.

Pairing this with the metadata-server simulator yields the paper's LRU
comparator — a plain LRU cache with no prefetching at all.
"""

from __future__ import annotations

from repro.traces.record import TraceRecord

__all__ = ["NoopPredictor"]


class NoopPredictor:
    """Predicts nothing; the LRU-only baseline."""

    def observe(self, record: TraceRecord) -> None:
        """Ignore the request."""

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """Always empty."""
        return []
