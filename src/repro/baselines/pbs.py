"""Program- and user-conditioned last-successor predictors.

PBS (Program-Based Successor) and PULS (Program- and User-based Last
Successor) — Yeh, Long & Brandt, ISPASS'01 — condition the classic
last-successor table on *who* is accessing: PBS keeps one successor slot
per (file, program) and PULS per (file, program, user). The paper points
out these are special cases of FARMER where only the process (or
process+user) attribute is exploited.

The trace schema carries pids rather than program names; a pid is the
program identity a 2001-era tracer would see, and the paper's own
Table 5 columns use pid for "Process" as well.
"""

from __future__ import annotations

from repro.traces.record import TraceRecord

__all__ = ["ProgramBasedSuccessor", "ProgramUserLastSuccessor"]


class _ConditionedLastSuccessor:
    """Last-successor table keyed by (fid, condition)."""

    def __init__(self) -> None:
        self._prev: dict[tuple, int] = {}  # condition -> previous fid
        self._table: dict[tuple, int] = {}  # (fid, *condition) -> successor
        self._last_condition: dict[int, tuple] = {}  # fid -> condition last seen

    def _condition(self, record: TraceRecord) -> tuple:
        raise NotImplementedError

    def observe(self, record: TraceRecord) -> None:
        """Update the per-condition successor chain."""
        fid = record.fid
        cond = self._condition(record)
        prev = self._prev.get(cond)
        if prev is not None and prev != fid:
            self._table[(prev, *cond)] = fid
        self._prev[cond] = fid
        self._last_condition[fid] = cond

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """Successor under the condition this file was last seen in."""
        cond = self._last_condition.get(fid)
        if cond is None or k < 1:
            return []
        succ = self._table.get((fid, *cond))
        return [succ] if succ is not None else []


class ProgramBasedSuccessor(_ConditionedLastSuccessor):
    """PBS: last successor conditioned on the accessing process."""

    def _condition(self, record: TraceRecord) -> tuple:
        return (record.pid,)


class ProgramUserLastSuccessor(_ConditionedLastSuccessor):
    """PULS: last successor conditioned on (process, user)."""

    def _condition(self, record: TraceRecord) -> tuple:
        return (record.pid, record.uid)
