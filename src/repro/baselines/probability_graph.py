"""Probability Graph — Griffioen & Appleton, USENIX Summer '94.

A directed graph counts, for each file, how often every other file was
opened within a look-ahead window after it (*uniform* weights — this is
the key contrast with Nexus/FARMER's distance-decremented weights). A
successor is predicted when its estimated chance ``count/total`` exceeds
``min_chance``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.traces.record import TraceRecord

__all__ = ["ProbabilityGraph"]


class ProbabilityGraph:
    """Lookahead-window probability-graph predictor."""

    def __init__(self, window: int = 2, min_chance: float = 0.1) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= min_chance <= 1.0:
            raise ValueError("min_chance must be in [0, 1]")
        self.window = window
        self.min_chance = min_chance
        self._recent: list[int] = []
        self._counts: dict[int, dict[int, int]] = defaultdict(dict)
        self._totals: dict[int, int] = defaultdict(int)

    def observe(self, record: TraceRecord) -> None:
        """Credit this file to every window predecessor with weight 1."""
        fid = record.fid
        seen: set[int] = set()
        for pred in reversed(self._recent):
            if pred == fid or pred in seen:
                continue
            seen.add(pred)
            row = self._counts[pred]
            row[fid] = row.get(fid, 0) + 1
            self._totals[pred] += 1
        self._recent.append(fid)
        if len(self._recent) > self.window:
            self._recent.pop(0)

    def chance(self, src: int, dst: int) -> float:
        """Estimated P(dst follows src within the window)."""
        total = self._totals.get(src, 0)
        if total == 0:
            return 0.0
        return self._counts[src].get(dst, 0) / total

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """Successors with chance >= min_chance, most probable first."""
        total = self._totals.get(fid, 0)
        if total == 0:
            return []
        row = self._counts[fid]
        qualified = [
            (cnt / total, dst) for dst, cnt in row.items() if cnt / total >= self.min_chance
        ]
        qualified.sort(key=lambda t: (-t[0], t[1]))
        return [dst for _, dst in qualified[:k]]
