"""Recent Popularity ("best j of k") prediction — Amer et al., IPCCC'02.

For each file keep the last ``k`` observed successors; predict the one
that appears at least ``j`` times among them (ties broken toward
recency). Robust against occasional noise while still adapting — the
related-work section cites it as the strongest of the classical
single-file predictors.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.traces.record import TraceRecord

__all__ = ["RecentPopularity"]


class RecentPopularity:
    """Best-j-of-k recent-successor predictor."""

    def __init__(self, j: int = 2, k: int = 4) -> None:
        if j < 1 or k < j:
            raise ValueError("need 1 <= j <= k")
        self.j = j
        self.k = k
        self._prev: int | None = None
        self._recent: dict[int, deque[int]] = {}

    def observe(self, record: TraceRecord) -> None:
        """Push this request onto the predecessor's recent-successor queue."""
        fid = record.fid
        if self._prev is not None and self._prev != fid:
            queue = self._recent.get(self._prev)
            if queue is None:
                queue = deque(maxlen=self.k)
                self._recent[self._prev] = queue
            queue.append(fid)
        self._prev = fid

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """Successors meeting the j-of-k bar, most popular first."""
        queue = self._recent.get(fid)
        if not queue:
            return []
        counts = Counter(queue)
        # recency index: later occurrences rank higher on ties
        recency = {f: i for i, f in enumerate(queue)}
        qualified = [f for f, c in counts.items() if c >= self.j]
        qualified.sort(key=lambda f: (-counts[f], -recency[f]))
        return qualified[:k]
