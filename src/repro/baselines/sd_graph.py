"""SD graph (SEER's semantic distance) — Kuenning, 1994.

SEER's "semantic distance" is *sequence-derived*: the distance between
two files is the number of intervening file accesses between their
references; files that are repeatedly referenced close together get a
small average distance and are deemed related. The paper contrasts this
with FARMER precisely because SD never looks at request attributes — it
is access-sequence mining wearing a semantic name.

We implement the standard formulation: for each reference pair within a
horizon, accumulate the observed distance; relatedness of (A, B) is
``1 / (1 + mean_distance)``; prediction returns the closest files.
"""

from __future__ import annotations

from collections import defaultdict

from repro.traces.record import TraceRecord

__all__ = ["SDGraph"]


class SDGraph:
    """Sequence-proximity ("semantic distance") predictor."""

    def __init__(self, horizon: int = 6) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        self._recent: list[int] = []
        self._dist_sum: dict[int, dict[int, float]] = defaultdict(dict)
        self._dist_cnt: dict[int, dict[int, int]] = defaultdict(dict)

    def observe(self, record: TraceRecord) -> None:
        """Record the distance from every file in the horizon to this one."""
        fid = record.fid
        seen: set[int] = set()
        for distance, pred in enumerate(reversed(self._recent), start=1):
            if pred == fid or pred in seen:
                continue
            seen.add(pred)
            sums = self._dist_sum[pred]
            cnts = self._dist_cnt[pred]
            sums[fid] = sums.get(fid, 0.0) + distance
            cnts[fid] = cnts.get(fid, 0) + 1
        self._recent.append(fid)
        if len(self._recent) > self.horizon:
            self._recent.pop(0)

    def relatedness(self, src: int, dst: int) -> float:
        """``1 / (1 + mean distance)`` in (0, 1]; 0.0 if never co-seen."""
        cnts = self._dist_cnt.get(src)
        if not cnts or dst not in cnts:
            return 0.0
        mean = self._dist_sum[src][dst] / cnts[dst]
        return 1.0 / (1.0 + mean)

    def predict(self, fid: int, k: int = 1) -> list[int]:
        """The ``k`` semantically-closest (sequence-closest) files."""
        cnts = self._dist_cnt.get(fid)
        if not cnts:
            return []
        scored = [
            # weight relatedness by evidence count so one-off adjacencies
            # do not outrank repeatedly co-accessed files
            (self.relatedness(fid, dst) * min(1.0, cnts[dst] / 3.0), dst)
            for dst in cnts
        ]
        scored.sort(key=lambda t: (-t[0], t[1]))
        return [dst for _, dst in scored[:k]]
