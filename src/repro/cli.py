"""Command-line entry point: run any paper experiment from the shell.

Usage::

    farmer-repro list
    farmer-repro run fig7 --events 6000 --seeds 1,2,3
    farmer-repro run table2
    farmer-repro all --events 3000 --seeds 1

or equivalently ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="farmer-repro",
        description="FARMER (HPDC 2008) reproduction experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_scale_args(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    _add_scale_args(all_p)
    return parser


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", type=int, default=None, help="trace length (events)"
    )
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated seeds, e.g. 1,2,3",
    )


def _scale_kwargs(args: argparse.Namespace, experiment_id: str) -> dict:
    kwargs = {}
    if experiment_id == "table2":
        return kwargs  # the worked example takes no scale arguments
    if args.events is not None:
        kwargs["n_events"] = args.events
    if args.seeds is not None:
        kwargs["seeds"] = tuple(int(s) for s in args.seeds.split(",") if s)
    return kwargs


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        rows = [
            (exp.experiment_id, exp.paper_artifact, exp.description)
            for exp in EXPERIMENTS.values()
        ]
        print(format_table(("id", "paper artifact", "description"), rows))
        return 0
    if args.command == "run":
        exp = get_experiment(args.experiment)
        t0 = time.perf_counter()
        result = exp.run(**_scale_kwargs(args, exp.experiment_id))
        print(result.render())
        print(f"\n[{exp.experiment_id} finished in {time.perf_counter() - t0:.1f}s]")
        return 0
    if args.command == "all":
        for exp in EXPERIMENTS.values():
            t0 = time.perf_counter()
            result = exp.run(**_scale_kwargs(args, exp.experiment_id))
            print(result.render())
            print(f"\n[{exp.experiment_id} finished in {time.perf_counter() - t0:.1f}s]\n")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
