"""Command-line entry point: run any paper experiment from the shell.

Usage::

    farmer-repro list
    farmer-repro run fig7 --events 6000 --seeds 1,2,3
    farmer-repro run table2
    farmer-repro all --events 3000 --seeds 1
    farmer-repro service --events 20000 --shards 1,2,4,8
    farmer-repro service --shards 4 --router consistent_hash --rebalance 6
    farmer-repro service --shards 4 --mds 4 --routed-prefetch
    farmer-repro serve --shards 4 --replicate --tail /var/log/trace.jsonl
    farmer-repro workload --events 6000
    farmer-repro workload diurnal --shards 4 --json
    farmer-repro storage --tiering correlated --tier-frac 0.1
    farmer-repro storage pipeline --tiering all --json

or equivalently ``python -m repro ...``. The ``service`` subcommand
measures the sharded mining service against the single-miner baseline
(aggregate throughput modeled as records over the slowest shard's
replay — see :mod:`repro.service.harness`), and can additionally
demonstrate shard rebalancing (``--rebalance``) and the cluster-routed
prefetch path (``--mds`` / ``--routed-prefetch``). The ``serve``
subcommand runs the *online* ingestion service instead: trace-tailing
or replay agents in front of a bounded admission queue, a consumer
draining into the shards, and an HTTP query/admin API with live
telemetry (:mod:`repro.online`).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="farmer-repro",
        description="FARMER (HPDC 2008) reproduction experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_scale_args(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    _add_scale_args(all_p)

    svc_p = sub.add_parser(
        "service", help="benchmark the sharded mining service vs one miner"
    )
    svc_p.add_argument(
        "--trace", default="hp", help="synthetic trace profile (default hp)"
    )
    svc_p.add_argument(
        "--events", type=int, default=20_000, help="trace length (events)"
    )
    svc_p.add_argument("--seed", type=int, default=1, help="trace seed")
    svc_p.add_argument(
        "--shards",
        type=str,
        default="1,2,4,8",
        help="comma-separated shard counts, e.g. 1,4",
    )
    svc_p.add_argument(
        "--router",
        choices=("hash", "range", "consistent_hash"),
        default=None,
        help=(
            "namespace partitioning policy (consistent_hash = virtual-node "
            "ring; rebalancing moves only ~1/n of the fids)"
        ),
    )
    svc_p.add_argument(
        "--policy",
        choices=("hash", "range", "consistent_hash"),
        default=None,
        help="deprecated alias of --router",
    )
    svc_p.add_argument(
        "--rebalance",
        type=int,
        default=None,
        metavar="N",
        help=(
            "after the replay, rebalance a mined service to N shards "
            "(migrates only the fids whose owner changed) and report the "
            "migration"
        ),
    )
    svc_p.add_argument(
        "--echo-interval",
        type=int,
        default=0,
        metavar="K",
        help=(
            "batch boundary echoes: drain every K accepted requests instead "
            "of just-in-time (0 = just-in-time, bit-identical to synchronous)"
        ),
    )
    svc_p.add_argument(
        "--idle-drain",
        type=int,
        default=0,
        metavar="G",
        help=(
            "drain an idle shard's echo queue after G accepted requests "
            "without activity on it (0 = off; idle queues then wait for "
            "the shard's next own event or interval expiry)"
        ),
    )
    svc_p.add_argument(
        "--replicate",
        action="store_true",
        help=(
            "keep one warm standby per shard, synced through the migration "
            "seam every --sync-interval accepted requests (enables "
            "--fail-shard)"
        ),
    )
    svc_p.add_argument(
        "--sync-interval",
        type=int,
        default=1024,
        metavar="K",
        help="standby sync cadence in accepted requests (with --replicate)",
    )
    svc_p.add_argument(
        "--fail-shard",
        type=int,
        default=None,
        metavar="I",
        help=(
            "after the replay, kill shard I's private state, promote its "
            "standby, and report recovery time and the loss window "
            "(requires --replicate)"
        ),
    )
    svc_p.add_argument(
        "--auto-rebalance",
        action="store_true",
        help=(
            "after the replay, feed observed per-shard load into "
            "consistent-hash ring weights and rebalance onto them "
            "(reports loads, weights and the migration)"
        ),
    )
    svc_p.add_argument(
        "--mds",
        type=int,
        default=None,
        metavar="N",
        help=(
            "also run the N-server cluster simulation comparing candidate-"
            "drop vs cluster-routed prefetch (see --routed-prefetch)"
        ),
    )
    svc_p.add_argument(
        "--routed-prefetch",
        action="store_true",
        help=(
            "with --mds: additionally run the cluster-routed variant "
            "(cross-server prefetch candidates forwarded to the owning "
            "MDS's queue instead of dropped) and compare hit ratios"
        ),
    )
    svc_p.add_argument(
        "--isolate",
        action="store_true",
        help="strict partition isolation (drop cross-shard boundary edges)",
    )
    svc_p.add_argument(
        "--per-shard-cache",
        action="store_true",
        help="private similarity cache per shard instead of the shared one",
    )
    svc_p.add_argument(
        "--kernel",
        choices=("bulk", "entrywise", "array"),
        default="bulk",
        help=(
            "re-rank kernel: bulk (pure-python one-pass, the default), "
            "entrywise (per-edge reference), or array (vectorized over "
            "numpy; bit-identical output, fastest)"
        ),
    )
    svc_p.add_argument(
        "--freeze",
        type=int,
        default=0,
        help="vector_freeze_threshold (0 = off)",
    )
    svc_p.add_argument(
        "--no-predict",
        action="store_true",
        help="time observe() only (skip the per-request FPA predict)",
    )
    svc_p.add_argument(
        "--parallel",
        type=str,
        default=None,
        metavar="BACKENDS",
        help=(
            "also run the executed-parallel batch-mine wall-clock mode on "
            "these comma-separated backends (thread,process). Note: on a "
            "machine with fewer cores than workers (e.g. a 1-core CI "
            "container) the measured numbers show executor overhead, not "
            "speedup — see docs/benchmarks.md"
        ),
    )
    svc_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for --parallel (default: min(shards, cores))",
    )

    wl_p = sub.add_parser(
        "workload",
        help=(
            "evaluate mining accuracy on the planted-truth scenario "
            "suite: precision@k / recall@k / prefetch-hit headroom"
        ),
    )
    wl_p.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="scenario names (default: all; see `workload --list`)",
    )
    wl_p.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the registered scenarios and exit",
    )
    wl_p.add_argument(
        "--events",
        type=int,
        default=None,
        help="events per scenario (default 6000)",
    )
    wl_p.add_argument("--seed", type=int, default=0, help="scenario seed")
    wl_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="mine through an N-shard ShardedFarmer instead of one Farmer",
    )
    wl_p.add_argument(
        "--online",
        action="store_true",
        help=(
            "drive the stream through the full online ingestion service "
            "(ReplayAgent -> admission queue -> shards) before scoring"
        ),
    )
    wl_p.add_argument(
        "--ks",
        type=str,
        default="1,4",
        help="comma-separated precision/recall cut-offs (default 1,4)",
    )
    wl_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object per scenario instead of the table",
    )

    st_p = sub.add_parser(
        "storage",
        help=(
            "run the tiered-storage placement showdown: fast-tier hit "
            "ratio of lru / lfu / correlated at one tier budget"
        ),
    )
    st_p.add_argument(
        "workload",
        nargs="?",
        default="hp",
        help=(
            "trace profile (hp, ins, ...) or planted-truth scenario name "
            "(default hp)"
        ),
    )
    st_p.add_argument(
        "--tiering",
        choices=("lru", "lfu", "correlated", "all"),
        default="all",
        help="tier policy to run (default: all three, as a showdown)",
    )
    st_p.add_argument(
        "--tier-frac",
        type=float,
        default=0.1,
        dest="tier_frac",
        help="fast-tier capacity as a fraction of each server's objects",
    )
    st_p.add_argument(
        "--tier-k",
        type=int,
        default=4,
        dest="tier_k",
        help="correlators co-promoted per access (correlated policy)",
    )
    st_p.add_argument(
        "--events", type=int, default=2500, help="trace events to replay"
    )
    st_p.add_argument("--seed", type=int, default=1, help="trace seed")
    st_p.add_argument(
        "--mds", type=int, default=4, help="metadata server count"
    )
    st_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object per policy instead of the table",
    )

    serve_p = sub.add_parser(
        "serve",
        help=(
            "run the online ingestion service: bounded-queue admission in "
            "front of the sharded miner, HTTP query/admin API, live "
            "telemetry"
        ),
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind host")
    serve_p.add_argument(
        "--port",
        type=int,
        default=8787,
        help="bind port (0 = ephemeral; the bound port is printed)",
    )
    serve_p.add_argument(
        "--trace",
        default="hp",
        help="trace profile for the attribute set (default hp)",
    )
    serve_p.add_argument(
        "--shards", type=int, default=4, help="miner shard count"
    )
    serve_p.add_argument(
        "--router",
        choices=("hash", "range", "consistent_hash"),
        default="hash",
        help="namespace partitioning policy",
    )
    serve_p.add_argument(
        "--replicate",
        action="store_true",
        help="keep one warm standby per shard (enables failover over the API)",
    )
    serve_p.add_argument(
        "--sync-interval",
        type=int,
        default=1024,
        metavar="K",
        help="standby sync cadence in accepted requests (with --replicate)",
    )
    serve_p.add_argument(
        "--echo-interval",
        type=int,
        default=0,
        metavar="K",
        help="batch boundary echoes every K accepted requests (0 = JIT)",
    )
    serve_p.add_argument(
        "--kernel",
        choices=("bulk", "entrywise", "array"),
        default="bulk",
        help="re-rank kernel",
    )
    serve_p.add_argument(
        "--queue-capacity",
        type=int,
        default=4096,
        help="hard bound of the ingest queue (offers at this depth shed)",
    )
    serve_p.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="records the consumer drains per batch",
    )
    serve_p.add_argument(
        "--echo-watermark",
        type=float,
        default=0.5,
        help=(
            "queue fraction above which admitted records shed their "
            "cross-shard echo (graceful degradation engages first)"
        ),
    )
    serve_p.add_argument(
        "--defer-watermark",
        type=float,
        default=0.9,
        help="queue fraction above which offers defer (source backpressure)",
    )
    serve_p.add_argument(
        "--tail",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "tail a JSONL trace file: records appended by another process "
            "are mined live (the deployment seam)"
        ),
    )
    serve_p.add_argument(
        "--replay-events",
        type=int,
        default=None,
        metavar="N",
        help="replay an N-event synthetic trace through the pipeline",
    )
    serve_p.add_argument(
        "--seed", type=int, default=1, help="synthetic trace seed"
    )
    serve_p.add_argument(
        "--rate",
        type=float,
        default=5000.0,
        help="replay arrival rate (records/s; see --pattern)",
    )
    serve_p.add_argument(
        "--pattern",
        choices=("constant", "bursty", "diurnal"),
        default="constant",
        help=(
            "replay arrival pattern: constant --rate, bursty (5x --rate "
            "bursts at 20%% duty), or diurnal (sinusoid between --rate/5 "
            "and --rate)"
        ),
    )
    serve_p.add_argument(
        "--pace",
        action="store_true",
        help="really sleep the replay ticks (wall-clock arrival replay)",
    )
    serve_p.add_argument(
        "--data-dir",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "durable mode: journal accepted records to a write-ahead "
            "log and checkpoint snapshots under DIR (created if absent); "
            "without it the mined state is memory-only"
        ),
    )
    serve_p.add_argument(
        "--snapshot-interval",
        type=int,
        default=20000,
        metavar="N",
        help=(
            "checkpoint every N consumed records (0 = only on demand "
            "via POST /snapshot and at shutdown; needs --data-dir)"
        ),
    )
    serve_p.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="interval",
        help=(
            "WAL fsync policy: every append, every --fsync-every "
            "appends, or leave flushing to the OS (see docs/durability.md)"
        ),
    )
    serve_p.add_argument(
        "--fsync-every",
        type=int,
        default=64,
        metavar="K",
        help="appends between fsyncs under --fsync interval",
    )
    serve_p.add_argument(
        "--recover",
        action="store_true",
        help=(
            "restore from --data-dir before serving: load the latest "
            "snapshot and replay the WAL tail (required when the data "
            "directory already holds state)"
        ),
    )
    return parser


def _run_service(args: argparse.Namespace) -> int:
    from repro.core.farmer import Farmer
    from repro.experiments.common import farmer_config_for
    from repro.service.harness import compare_single_vs_sharded, replay_single
    from repro.traces.synthetic import generate_trace

    policy = args.router or args.policy or "hash"
    # farmer_config_for picks the trace's attribute set (Table 5): HP/LLNL
    # mine paths, INS/RES fall back to file id + device
    if args.fail_shard is not None and not args.replicate:
        print("--fail-shard requires --replicate", file=sys.stderr)
        return 2
    base = farmer_config_for(
        args.trace,
        shard_policy=policy,
        shared_sim_cache=not args.per_shard_cache,
        cross_shard_edges=not args.isolate,
        vector_freeze_threshold=args.freeze,
        echo_flush_interval=args.echo_interval,
        echo_idle_drain=args.idle_drain,
        replication=args.replicate,
        standby_sync_interval=args.sync_interval,
        rerank_kernel=args.kernel,
    )
    records = generate_trace(args.trace, args.events, seed=args.seed)
    predict = not args.no_predict
    mode = "observe+predict" if predict else "observe"
    single_s = replay_single(Farmer(base), records, predict=predict)
    rows = [
        (
            "1 (baseline)",
            len(records),
            0,
            f"{single_s:.2f}",
            f"{len(records) / single_s:,.0f}",
            "1.00x",
            "-",
        )
    ]
    for n_shards in (int(s) for s in args.shards.split(",") if s):
        if n_shards == 1:
            continue
        cmp_ = compare_single_vs_sharded(
            records,
            base.with_(n_shards=n_shards),
            predict=predict,
            single_elapsed_s=single_s,
        )
        rows.append(
            (
                str(n_shards),
                cmp_.n_records,
                cmp_.n_boundary_echoes,
                f"{cmp_.critical_path_s:.2f}",
                f"{cmp_.aggregate_throughput:,.0f}",
                f"{cmp_.speedup:.2f}x",
                f"{cmp_.cache_hit_rate:.1%}",
            )
        )
    print(
        f"sharded mining service on '{args.trace}' x{args.events} "
        f"(router={policy}, cross_shard_edges={not args.isolate}, "
        f"shared_sim_cache={not args.per_shard_cache}, "
        f"freeze={args.freeze}, echo_interval={args.echo_interval}, "
        f"mode={mode})"
    )
    print(
        format_table(
            (
                "shards",
                "records",
                "echoes",
                "critical path s",
                f"{mode}/s",
                "speedup",
                "cache hit",
            ),
            rows,
        )
    )
    if args.rebalance is not None:
        from repro.service.sharded import ShardedFarmer

        n_before = max(
            (int(s) for s in args.shards.split(",") if s), default=4
        )
        service = ShardedFarmer(base.with_(n_shards=n_before)).mine(records)
        report = service.rebalance(args.rebalance)
        print(
            f"\nrebalance {report.n_shards_before} -> "
            f"{report.n_shards_after} shards ({report.policy}): migrated "
            f"{report.n_migrated}/{report.n_owned} fids "
            f"({report.moved_fraction:.1%}) in {report.elapsed_s * 1e3:.1f}ms "
            f"— only owner-changed fids move; nothing is re-mined"
        )
    if args.fail_shard is not None or args.auto_rebalance:
        from repro.service.sharded import ShardedFarmer

        n_svc = max((int(s) for s in args.shards.split(",") if s), default=4)
        n_svc = max(n_svc, 2)  # failover/rebalance need a real partition
        service = ShardedFarmer(base.with_(n_shards=n_svc)).mine(records)
        if args.fail_shard is not None:
            index = args.fail_shard % n_svc
            probe = next(
                (r.fid for r in records if service.shard_of(r.fid) == index),
                None,  # a tiny/skewed trace may leave the shard empty
            )
            if probe is not None:
                service.correlators(probe)  # the partition serves pre-failure
            service.fail_shard(index)
            report = service.promote_standby(index)
            if probe is not None:
                service.correlators(probe)  # ...and serves again afterwards
            print(
                f"\nfailover shard {index}/{n_svc}: promoted the warm "
                f"standby in {report.promote_s * 1e3:.2f}ms "
                f"({report.n_nodes_restored} nodes restored to the last "
                f"sync barrier at request {report.synced_at}; loss window "
                f"{report.lag} requests), re-protected in "
                f"{report.reseed_s * 1e3:.1f}ms"
            )
        if args.auto_rebalance:
            auto = service.auto_rebalance()
            loads = ", ".join(f"s{i}:{v:,.0f}" for i, v in enumerate(auto.loads))
            weights = ", ".join(
                f"s{i}:{w:.2f}" for i, w in enumerate(auto.weights)
            )
            print(
                f"\nauto-rebalance on observed load [{loads}] -> ring "
                f"weights [{weights}]: migrated "
                f"{auto.rebalance.n_migrated}/{auto.rebalance.n_owned} fids "
                f"({auto.rebalance.moved_fraction:.1%}) in "
                f"{auto.rebalance.elapsed_s * 1e3:.1f}ms"
            )
    if args.mds is not None:
        from repro.service.sharded import ShardedFarmer
        from repro.storage.cluster import SimulationConfig, run_simulation
        from repro.storage.prefetch import ShardedFarmerPrefetcher

        def cluster_engine():
            return ShardedFarmerPrefetcher(
                ShardedFarmer(base.with_(n_shards=args.mds))
            )

        variants = [("drop", False)]
        if args.routed_prefetch:
            variants.append(("routed", True))
        cluster_rows = []
        for label, routed in variants:
            rep = run_simulation(
                records,
                cluster_engine(),
                SimulationConfig(
                    n_mds=args.mds,
                    cache_capacity=24,
                    routed_prefetch=routed,
                    seed=args.seed,
                ),
            )
            cluster_rows.append(
                (
                    label,
                    f"{rep.hit_ratio:.3f}",
                    rep.prefetch_issued,
                    rep.prefetch_used,
                    rep.prefetch_forwarded,
                    f"{rep.mean_response_ns / 1e3:.1f}",
                )
            )
        print(
            f"\ncluster simulation: {args.mds} metadata servers, one "
            f"co-located miner shard each (cross-server candidates "
            f"{'routed vs dropped' if args.routed_prefetch else 'dropped'})"
        )
        print(
            format_table(
                (
                    "prefetch",
                    "hit ratio",
                    "issued",
                    "used",
                    "forwarded",
                    "mean resp us",
                ),
                cluster_rows,
            )
        )
    if args.parallel:
        import os

        from repro.service.harness import compare_parallel_mine

        backends = tuple(b for b in args.parallel.split(",") if b)
        wall_rows = []
        single_mine_s = None  # measured once; independent of n_shards
        for n_shards in (int(s) for s in args.shards.split(",") if s):
            if n_shards == 1:
                continue
            cmp_ = compare_parallel_mine(
                records,
                base.with_(n_shards=n_shards),
                n_workers=args.workers,
                backends=backends,
                single_mine_s=single_mine_s,
            )
            single_mine_s = cmp_.single_mine_s
            for run in cmp_.runs:
                wall_rows.append(
                    (
                        str(n_shards),
                        run.backend,
                        run.n_workers,
                        f"{cmp_.single_mine_s:.2f}",
                        f"{cmp_.sequential_mine_s:.2f}",
                        f"{run.elapsed_s:.2f}",
                        f"{run.throughput:,.0f}",
                        f"{cmp_.speedup_vs_sequential(run):.2f}x",
                    )
                )
        print(
            "\nexecuted-parallel batch mine (wall clock, not modeled; "
            "sequential = ShardedFarmer.mine on one thread)"
        )
        cores = os.cpu_count() or 1
        if args.workers is not None and cores < args.workers:
            print(
                f"note: this machine has {cores} core(s) for "
                f"{args.workers} requested workers — the parallel numbers "
                f"below measure executor overhead, not speedup (see "
                f"docs/benchmarks.md)"
            )
        print(
            format_table(
                (
                    "shards",
                    "backend",
                    "workers",
                    "single s",
                    "sequential s",
                    "parallel s",
                    "mine/s",
                    "speedup",
                ),
                wall_rows,
            )
        )
    return 0


def _run_workload(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigError
    from repro.workloads import (
        DEFAULT_EVENTS,
        SCENARIO_NAMES,
        evaluate_scenario,
        scenario_descriptions,
    )

    if args.list_scenarios:
        rows = [
            (name, desc) for name, desc in scenario_descriptions().items()
        ]
        print(format_table(("scenario", "description"), rows))
        return 0
    names = tuple(args.scenarios) or SCENARIO_NAMES
    unknown = [n for n in names if n not in SCENARIO_NAMES]
    if unknown:
        print(
            f"unknown scenario(s) {', '.join(unknown)}; expected "
            f"{', '.join(SCENARIO_NAMES)}",
            file=sys.stderr,
        )
        return 2
    try:
        ks = tuple(int(k) for k in args.ks.split(",") if k)
    except ValueError:
        print(f"--ks must be comma-separated integers: {args.ks!r}", file=sys.stderr)
        return 2
    n_events = args.events if args.events is not None else DEFAULT_EVENTS
    reports = []
    for name in names:
        try:
            reports.append(
                evaluate_scenario(
                    name,
                    n_events=n_events,
                    seed=args.seed,
                    ks=ks,
                    n_shards=args.shards,
                    online=args.online,
                )
            )
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.as_json:
        for report in reports:
            print(json.dumps(report.to_dict(), sort_keys=True))
        return 0
    miner = (
        f"online x{args.shards}"
        if args.online
        else (f"sharded x{args.shards}" if args.shards > 1 else "farmer")
    )
    print(
        f"scenario evaluation vs planted truth "
        f"(events={n_events}, seed={args.seed}, miner={miner}; "
        f"headroom = oracle hit rate - mined hit rate, negative when "
        f"mining beats the plant-only oracle)"
    )
    header = ["scenario", "truth", "scored"]
    for k in ks:
        header += [f"p@{k}", f"r@{k}"]
    header += ["oracle", "mined", "headroom"]
    rows = []
    for report in reports:
        row = [
            report.scenario,
            str(report.n_truth_pairs),
            str(report.n_scored_sources),
        ]
        for k in ks:
            m = report.at(k)
            row += [f"{m.precision:.3f}", f"{m.recall:.3f}"]
        row += [
            f"{report.oracle_hit_rate:.3f}",
            f"{report.mined_hit_rate:.3f}",
            f"{report.headroom:+.3f}",
        ]
        rows.append(tuple(row))
    print(format_table(tuple(header), rows))
    return 0


def _run_storage(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigError
    from repro.experiments.common import cached_trace
    from repro.experiments.tiering_experiment import (
        TIER_POLICY_NAMES,
        cached_scenario,
        tiered_report,
    )
    from repro.workloads import SCENARIO_NAMES

    if args.workload in SCENARIO_NAMES:
        records, _ = cached_scenario(args.workload, args.events, args.seed)
        trace = "hp"  # miner attribute set for scenario streams
    else:
        try:
            records = cached_trace(args.workload, args.events, args.seed)
        except (ConfigError, KeyError) as exc:
            print(f"unknown workload {args.workload!r}: {exc}", file=sys.stderr)
            return 2
        trace = args.workload
    policies = (
        TIER_POLICY_NAMES if args.tiering == "all" else (args.tiering,)
    )
    results = []
    for policy in policies:
        try:
            report = tiered_report(
                records,
                policy,
                args.tier_frac,
                n_mds=args.mds,
                tier_k=args.tier_k,
                seed=args.seed,
                trace=trace,
            )
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        results.append((policy, report))
    if args.as_json:
        for policy, r in results:
            print(
                json.dumps(
                    {
                        "workload": args.workload,
                        "policy": policy,
                        "tier_fraction": args.tier_frac,
                        "tier_k": args.tier_k,
                        "n_mds": args.mds,
                        "events": args.events,
                        "seed": args.seed,
                        "fast_hit_ratio": round(r.fast_hit_ratio, 6),
                        "tier_promotions": r.tier_promotions,
                        "tier_co_promotions": r.tier_co_promotions,
                        "tier_demotions": r.tier_demotions,
                        "tier_hints_forwarded": r.tier_hints_forwarded,
                        "mean_response_us": round(r.mean_response_ns / 1e3, 3),
                    },
                    sort_keys=True,
                )
            )
        return 0
    print(
        f"tiered storage showdown on {args.workload!r} "
        f"(events={args.events}, seed={args.seed}, mds={args.mds}, "
        f"tier_frac={args.tier_frac}, tier_k={args.tier_k})"
    )
    rows = [
        (
            policy,
            f"{r.fast_hit_ratio:.3f}",
            str(r.tier_promotions),
            str(r.tier_co_promotions),
            str(r.tier_demotions),
            str(r.tier_hints_forwarded),
            f"{r.mean_response_ns / 1e3:.1f}",
        )
        for policy, r in results
    ]
    print(
        format_table(
            (
                "policy",
                "fast hit",
                "promos",
                "co-promos",
                "demos",
                "hints",
                "mean resp us",
            ),
            rows,
        )
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.experiments.common import farmer_config_for
    from repro.online import (
        AdminApiServer,
        AdmissionPolicy,
        BurstyRate,
        ConstantRate,
        DiurnalRate,
        FileTailAgent,
        OnlineService,
        ReplayAgent,
    )

    config = farmer_config_for(
        args.trace,
        n_shards=args.shards,
        shard_policy=args.router,
        replication=args.replicate,
        standby_sync_interval=args.sync_interval,
        echo_flush_interval=args.echo_interval,
        rerank_kernel=args.kernel,
    )
    policy = AdmissionPolicy(
        capacity=args.queue_capacity,
        echo_watermark=args.echo_watermark,
        defer_watermark=args.defer_watermark,
    )

    durability = None
    service = None
    if args.recover and args.data_dir is None:
        print("--recover requires --data-dir", file=sys.stderr)
        return 2
    if args.data_dir is not None:
        from repro.durability import DurabilityManager

        durability = DurabilityManager(
            args.data_dir, fsync=args.fsync, fsync_every=args.fsync_every
        )
        if args.recover:
            service, recovery = durability.recover(config)
            print(
                f"recovered to seq {recovery.durable_seq} "
                f"(snapshot {recovery.snapshot_seq} + "
                f"{recovery.wal_replayed} WAL records replayed, "
                f"{recovery.wal_discarded_bytes} torn bytes discarded) "
                f"in {recovery.elapsed_s:.2f}s",
                flush=True,
            )
        elif durability.has_state():
            print(
                f"data dir {args.data_dir} already holds state; pass "
                f"--recover to restore it (refusing to fork the "
                f"accepted stream)",
                file=sys.stderr,
            )
            return 2
    online = OnlineService(
        config,
        service=service,
        policy=policy,
        batch_size=args.batch_size,
        durability=durability,
        snapshot_interval=(
            args.snapshot_interval if durability is not None else 0
        ),
    )
    api = AdminApiServer(online, host=args.host, port=args.port)

    # Ctrl-C / SIGTERM land on the same clean path as POST /shutdown:
    # stop agents, drain, final checkpoint, exit 0 — a durable service
    # never discards its tail on an operator-initiated stop
    def _signal_shutdown(signum, frame):
        api.shutdown_event.set()

    try:
        signal.signal(signal.SIGINT, _signal_shutdown)
        signal.signal(signal.SIGTERM, _signal_shutdown)
    except ValueError:  # pragma: no cover - not the main thread
        pass

    agents = []
    agent_threads = []
    if args.tail is not None:
        agents.append(FileTailAgent(args.tail))
    if args.replay_events is not None:
        from repro.traces.synthetic import generate_trace

        records = generate_trace(
            args.trace, args.replay_events, seed=args.seed
        )
        if args.pattern == "bursty":
            pattern = BurstyRate(base=args.rate, burst=args.rate * 5.0)
        elif args.pattern == "diurnal":
            pattern = DiurnalRate(trough=args.rate / 5.0, peak=args.rate)
        else:
            pattern = ConstantRate(args.rate)
        agents.append(ReplayAgent(records, pattern, pace=args.pace))

    with online, api:
        for agent in agents:
            thread = threading.Thread(
                target=agent.run, args=(online,), daemon=True
            )
            thread.start()
            agent_threads.append(thread)
        # the readiness line CI and scripts wait for — keep it stable
        print(f"serving on {api.url}", flush=True)
        print(
            f"  shards={args.shards} router={args.router} "
            f"replicate={args.replicate} queue={args.queue_capacity} "
            f"batch={args.batch_size} "
            f"sources={'tail,' if args.tail else ''}"
            f"{'replay' if args.replay_events else ''}",
            flush=True,
        )
        try:
            api.shutdown_event.wait()
        except KeyboardInterrupt:
            print("interrupted — shutting down", flush=True)
        for agent in agents:
            stop = getattr(agent, "stop", None)
            if stop is not None:
                stop()
        for thread in agent_threads:
            thread.join(timeout=10.0)
        drain = online.drain()
        if durability is not None:
            final = online.checkpoint()
            print(
                f"final snapshot at seq {final.seq} "
                f"({final.bytes_total} bytes in {final.elapsed_s:.2f}s)",
                flush=True,
            )
        stats = online.stats()
    if durability is not None:
        durability.close()
    counters = stats.pipeline
    print(
        f"drained {drain.n_consumed} queued records in "
        f"{drain.elapsed_s:.2f}s; lifetime accepted="
        f"{counters.n_accepted} echo_degraded={counters.n_echo_degraded} "
        f"deferred={counters.n_deferred} shed={counters.n_shed}; "
        f"mined {stats.service.n_observed} requests on "
        f"{stats.service.n_shards} shards "
        f"({stats.service.n_boundary_echoes} boundary echoes, "
        f"{stats.service.n_echoes_shed} echoes shed)",
        flush=True,
    )
    return 0


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", type=int, default=None, help="trace length (events)"
    )
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated seeds, e.g. 1,2,3",
    )


def _scale_kwargs(args: argparse.Namespace, experiment_id: str) -> dict:
    kwargs = {}
    if experiment_id == "table2":
        return kwargs  # the worked example takes no scale arguments
    if args.events is not None:
        kwargs["n_events"] = args.events
    if args.seeds is not None:
        kwargs["seeds"] = tuple(int(s) for s in args.seeds.split(",") if s)
    return kwargs


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        rows = [
            (exp.experiment_id, exp.paper_artifact, exp.description)
            for exp in EXPERIMENTS.values()
        ]
        print(format_table(("id", "paper artifact", "description"), rows))
        return 0
    if args.command == "run":
        exp = get_experiment(args.experiment)
        t0 = time.perf_counter()
        result = exp.run(**_scale_kwargs(args, exp.experiment_id))
        print(result.render())
        print(f"\n[{exp.experiment_id} finished in {time.perf_counter() - t0:.1f}s]")
        return 0
    if args.command == "service":
        return _run_service(args)
    if args.command == "workload":
        return _run_workload(args)
    if args.command == "storage":
        return _run_storage(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "all":
        for exp in EXPERIMENTS.values():
            t0 = time.perf_counter()
            result = exp.run(**_scale_kwargs(args, exp.experiment_id))
            print(result.render())
            print(f"\n[{exp.experiment_id} finished in {time.perf_counter() - t0:.1f}s]\n")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
