"""FARMER core: the paper's primary contribution.

Four stages (Figure 2): Extracting → Constructing → Mining & Evaluating
(CoMiner) → Sorting, wrapped by the :class:`~repro.core.farmer.Farmer`
façade.
"""

from repro.core.cominer import CoMiner, RerankStats
from repro.core.config import DEFAULT_ATTRIBUTES, PATHLESS_ATTRIBUTES, FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer, FarmerStats
from repro.core.simcache import SharedSimilarityCache, SimCacheStats, SimilarityCache
from repro.core.sorter import CorrelationSnapshot, Sorter

__all__ = [
    "CoMiner",
    "RerankStats",
    "DEFAULT_ATTRIBUTES",
    "PATHLESS_ATTRIBUTES",
    "FarmerConfig",
    "GraphConstructor",
    "Extractor",
    "Farmer",
    "FarmerStats",
    "SharedSimilarityCache",
    "SimCacheStats",
    "SimilarityCache",
    "CorrelationSnapshot",
    "Sorter",
]
