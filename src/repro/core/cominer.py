"""Stage 3 — Mining & Evaluating: the CoMiner algorithm (paper §3.2).

For a file ``x`` and each graph successor ``y``:

* semantic distance ``sim(x, y)`` via the configured path algorithm
  (Function 1, IPA by default);
* access frequency ``F(x, y) = N_xy / N_x`` with LDA-weighted ``N_xy``;
* correlation degree ``R(x, y) = sim·p + F·(1 − p)`` (Function 2);

entries with ``R > max_strength`` go into (or re-rank within) the file's
Correlator List; weaker ones are filtered out. This mirrors the paper's
Algorithm 1 pseudo-code.

Incremental hot path (the dirty/lazy contract)
----------------------------------------------

The paper's "reasonable overhead" claim (§4, Table 4) needs per-request
mining to be O(small). Two mechanisms make it so:

* **Versioned similarity cache** — ``sim(x, y)`` depends only on the two
  semantic vectors, which change rarely. :meth:`semantic_distance`
  consults a :class:`~repro.core.simcache.SimilarityCache` keyed by the
  pair's vector versions, so Function 1 reruns only when an endpoint's
  vector truly changed (a stale value is never served — version mismatch
  is a miss by construction).

* **Dirty lists, lazy re-rank** — a request for ``x`` changes the
  denominator of every ``F(x, ·)``, so the whole list of ``x`` is stale;
  instead of re-running Algorithm 1 immediately, ``observe`` calls
  :meth:`mark_dirty` and the full re-rank + stale-edge sweep is deferred
  to the first *query* of the list (:meth:`query` / :meth:`flush_all`).
  Reinforced edges (``pred → x`` for predecessors in the window) only
  move one entry, so they are refreshed eagerly via
  :meth:`reevaluate_edge` — exactly the schedule the eager miner runs,
  which keeps lazy and eager query results identical when queries follow
  the triggering request.

* **Change ticks** — the graph stamps every node with a monotonic
  :meth:`~repro.graph.correlation_graph.CorrelationGraph.change_tick`;
  :meth:`reevaluate` records the tick it ranked at, and
  :meth:`flush_nodes` (the batch-``mine`` path) re-ranks exactly the
  touched nodes whose tick moved since they were last ranked.

One-pass re-rank kernel (``FarmerConfig.rerank_kernel``)
--------------------------------------------------------

``reevaluate`` is the hottest loop in the system, and the default
"bulk" kernel runs it as one measurable pass instead of d independent
``update``/``insort`` calls:

* the source's vector/version and access count are resolved **once**;
* per successor, an *entry stamp* ``(vector-version pair, N_xy, N_x)``
  is compared against the inputs of the last rank — an exact match
  reuses the stored degree outright (both Function 1 and Function 2
  skipped), a version-pair match alone reuses the stored similarity
  (Function 1 skipped, only the frequency blend recomputed);
* remaining successors are answered against the versioned cache exactly
  as the public batch kernel :meth:`semantic_distances` does — src
  vector resolved once, one lookup/compute/store per dst — with the
  loop inlined into the re-rank (property-tested against the public
  method);
* the list is materialised by a single
  :meth:`~repro.graph.correlator_list.CorrelatorList.rebuild` (sort +
  threshold/capacity cut, O(d log d)) instead of d binary insertions.

``rerank_kernel="entrywise"`` keeps the per-entry reference path
(bit-for-bit identical output, property-tested);
``incremental_rerank=False`` disables the stamps. The op counters in
:class:`RerankStats` let benchmarks assert the work reduction instead
of poking internals.

Ranking contract (both kernels): a re-ranked list is a pure function of
the file's *current* successor set — the top-capacity degrees above the
threshold. Stale entries and stale degrees never interact with the
capacity cut.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.core.config import FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.core.simcache import SimCacheStats, SimilarityCache
from repro.errors import ConfigError
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import dpa_similarity, ipa_similarity
from repro.vsm.vector import bag_intersection

try:  # numpy is optional: only the "array" kernel needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = ["CoMiner", "RerankStats"]

# Soft cap on the array kernel's path-pair intersection memo; on
# overflow it is cleared wholesale (values are pure functions of the
# keys, so eviction policy only affects speed).
_PATH_MEMO_CAP = 200_000


class _RankRecord:
    """The array kernel's memo of one source's last full rank.

    Holds the similarity row and the exact inputs it was computed from,
    so the next flush of the same source can reuse Function-1 work
    without any per-pair cache traffic:

    * ``node`` is the live :class:`NodeState` *by identity* — a record
      only ever validates against the very object it was computed from,
      which makes it immune to tick/version coincidences across
      ``pop_node``/``adopt_node`` replacements;
    * ``change_tick`` + ``vec_epoch`` unchanged ⇒ every input of the
      list is provably unchanged ⇒ the whole re-rank is skipped;
    * ``succ_version`` + ``ver_a`` unchanged ⇒ the successor slots are
      aligned with the stored row ⇒ sims are reused wholesale (same
      vector-store epoch) or per-entry by destination version;
    * ``sims is None`` encodes the all-zeros row (``p == 0`` or no
      source vector) without storing it.
    """

    __slots__ = (
        "node",
        "change_tick",
        "succ_version",
        "vec_epoch",
        "ver_a",
        "n_x",
        "ver_b",
        "sims",
        "n_xy",
    )

    def __init__(
        self, node, change_tick, succ_version, vec_epoch, ver_a, n_x,
        ver_b, sims, n_xy,
    ):
        self.node = node
        self.change_tick = change_tick
        self.succ_version = succ_version
        self.vec_epoch = vec_epoch
        self.ver_a = ver_a
        self.n_x = n_x
        self.ver_b = ver_b  # list of dst versions, or None (zeros row)
        self.sims = sims  # list of floats aligned with node slots, or None
        self.n_xy = n_xy  # array('d') copy of succ_weights at rank time


@dataclass(frozen=True, slots=True)
class RerankStats:
    """Operation counters of the re-rank hot path (since construction).

    Attributes:
        n_reevaluations: full Algorithm-1 re-ranks performed.
        entries_scanned: successor entries examined across all re-ranks.
        entries_skipped_unchanged: entries whose stamp matched every
            input — degree reused, Function 1 and Function 2 skipped.
        insort_ops: binary insertions into Correlator Lists (the bulk
            kernel performs none during a re-rank; the eager single-edge
            refresh path still insorts).
    """

    n_reevaluations: int
    entries_scanned: int
    entries_skipped_unchanged: int
    insort_ops: int


class CoMiner:
    """Evaluates correlation degrees and maintains Correlator Lists."""

    def __init__(
        self,
        config: FarmerConfig,
        constructor: GraphConstructor,
        sim_cache: SimilarityCache | None = None,
    ) -> None:
        self.config = config
        self.constructor = constructor
        # ``sim_cache`` may be injected (a SharedSimilarityCache) so all
        # shards of a sharded deployment reuse each other's Function-1 work
        self.sim_cache = (
            sim_cache if sim_cache is not None else SimilarityCache(config.sim_cache_capacity)
        )
        self.owns_sim_cache = sim_cache is None
        self._lists: dict[int, CorrelatorList] = {}
        self._dirty: set[int] = set()
        self._ranked_tick: dict[int, int] = {}
        # src -> dst -> (ver_src, ver_dst, n_xy, n_x, sim, degree): the
        # inputs and outputs of the last rank, pruned to the current
        # successor set on every bulk re-rank
        self._stamps: dict[int, dict[int, tuple]] = {}
        self._bulk = config.rerank_kernel == "bulk"
        self._array = config.rerank_kernel == "array"
        if self._array and _np is None:
            raise ConfigError(
                "rerank_kernel='array' requires numpy, which is not "
                "installed; use the pure-python 'bulk' kernel instead"
            )
        self._incremental = self._bulk and config.incremental_rerank
        # array-kernel state: per-source rank records (see _RankRecord),
        # the bulk kernel's (tick, epoch) whole-list-skip stamps, and the
        # persistent path-pair intersection memo the inlined IPA uses
        self._rank_records: dict[int, _RankRecord] = {}
        self._ranked_epoch: dict[int, int] = {}
        self._path_memo: dict[tuple, float] = {}
        self._n_reevaluations = 0
        self._entries_scanned = 0
        self._entries_skipped = 0

    # ------------------------------------------------------------------
    # degree evaluation
    # ------------------------------------------------------------------

    def semantic_distance(self, src: int, dst: int) -> float:
        """``sim(src, dst)`` from the stored semantic vectors (0 if unknown).

        Served from the versioned cache when both endpoints' vectors are
        unchanged since the pair was last evaluated.
        """
        vectors, versions = self.constructor.vectors.maps()
        va = vectors.get(src)
        if va is None:
            return 0.0
        vb = vectors.get(dst)
        if vb is None:
            return 0.0
        ver_a = versions[src]
        ver_b = versions[dst]
        cached = self.sim_cache.lookup(src, dst, ver_a, ver_b)
        if cached is not None:
            return cached
        config = self.config
        value = (
            ipa_similarity(va, vb, config.path_mode)
            if config.path_method == "ipa"
            else dpa_similarity(va, vb)
        )
        self.sim_cache.store(src, dst, ver_a, ver_b, value)
        return value

    def semantic_distances(self, src: int, dsts) -> list[float]:
        """Batch Function 1: ``sim(src, dst)`` for every dst, in order.

        ``src``'s vector and version are resolved once and the whole
        set is answered against the versioned cache in one pass (each
        miss computed and stored). :meth:`_reevaluate_bulk` inlines this
        same consult loop on the hot path; the equivalence tests pin the
        two against each other.
        """
        vectors, versions = self.constructor.vectors.maps()
        va = vectors.get(src)
        if va is None:
            return [0.0 for _ in dsts]
        ver_a = versions[src]
        cache = self.sim_cache
        lookup, put = cache.lookup, cache.store
        ipa = self.config.path_method == "ipa"
        mode = self.config.path_mode
        out: list[float] = []
        for dst in dsts:
            vb = vectors.get(dst)
            if vb is None:
                out.append(0.0)
                continue
            ver_b = versions[dst]
            value = lookup(src, dst, ver_a, ver_b)
            if value is None:
                value = (
                    ipa_similarity(va, vb, mode) if ipa else dpa_similarity(va, vb)
                )
                put(src, dst, ver_a, ver_b, value)
            out.append(value)
        return out

    def correlation_degree(self, src: int, dst: int) -> float:
        """Function 2: ``R = sim·p + F·(1−p)``."""
        p = self.config.weight_p
        sim = self.semantic_distance(src, dst) if p > 0.0 else 0.0
        freq = self.constructor.graph.frequency(src, dst) if p < 1.0 else 0.0
        return sim * p + freq * (1.0 - p)

    def sim_cache_stats(self) -> SimCacheStats:
        """Similarity-cache counters (misses = Function-1 computations)."""
        return self.sim_cache.stats()

    # ------------------------------------------------------------------
    # list maintenance
    # ------------------------------------------------------------------

    def _list_for(self, fid: int) -> CorrelatorList:
        lst = self._lists.get(fid)
        if lst is None:
            lst = CorrelatorList(
                threshold=self.config.max_strength,
                capacity=self.config.correlator_capacity,
            )
            self._lists[fid] = lst
        return lst

    def reevaluate(self, src: int) -> CorrelatorList:
        """Re-run Algorithm 1 for ``src``: evaluate every graph successor,
        filter by the validity threshold, keep the list sorted. Entries
        whose edge the graph has evicted are dropped (the stale-edge
        sweep falls out of ranking over the current successor set).
        Clears the dirty flag and records the graph tick ranked at."""
        if self._bulk:
            return self._reevaluate_bulk(src)
        if self._array:
            self._flush_array((src,))
            return self._lists[src]
        return self._reevaluate_entrywise(src)

    def _reevaluate_bulk(self, src: int) -> CorrelatorList:
        """One-pass kernel: stamps skip unchanged successors, the
        remaining similarities are answered exactly as
        :meth:`semantic_distances` would (src vector/version resolved
        once, cache consulted per dst — inlined to keep the loop flat),
        and the list is materialised by a single sort/cut rebuild.

        Stamps are recorded from a file's first *re*-rank on: a one-shot
        batch ranks every file exactly once, and allocating stamps it
        will never read is measurable at that scale.
        """
        constructor = self.constructor
        store = constructor.vectors
        node = constructor.graph.node_map().get(src)
        if node is not None:
            succ_fids = node.succ_fids
            succ_weights = node.succ_weights
            n_x = node.access_count
            tick = node.change_tick
        else:
            succ_fids = succ_weights = ()
            n_x = 0
            tick = 0
        d = len(succ_fids)
        if self._incremental:
            last_epoch = self._ranked_epoch.get(src)
            if (
                last_epoch is not None
                and last_epoch == store.epoch()
                and self._ranked_tick.get(src) == tick
                and src in self._lists
            ):
                # node tick and vector epoch both unchanged since the
                # last rank: every input of the list is provably the
                # same, skip the candidate scan outright (counters
                # advance as if scanned, preserving cross-kernel parity)
                self._n_reevaluations += 1
                self._entries_scanned += d
                self._entries_skipped += d
                self._dirty.discard(src)
                return self._lists[src]
        lst = self._list_for(src)
        self._n_reevaluations += 1
        self._entries_scanned += d
        config = self.config
        p = config.weight_p
        q = 1.0 - p
        use_sim = p > 0.0
        use_freq = p < 1.0
        vectors, versions = store.maps()
        va = vectors.get(src)
        ver_a = versions[src] if va is not None else 0
        cache = self.sim_cache
        lookup, put = cache.lookup, cache.store
        ipa = config.path_method == "ipa"
        mode = config.path_mode
        stamps = self._stamps.get(src) if self._incremental else None
        record_stamps = self._incremental and (
            stamps is not None or src in self._ranked_tick
        )
        new_stamps: dict[int, tuple] = {}
        candidates: list[tuple[int, float]] = []
        skipped = 0
        for dst, n_xy in zip(succ_fids, succ_weights):
            ver_b = versions.get(dst, 0)
            sim = None
            if stamps is not None:
                st = stamps.get(dst)
                if st is not None and st[0] == ver_a and st[1] == ver_b:
                    if st[2] == n_xy and st[3] == n_x:
                        # every input unchanged since the last rank:
                        # reuse the degree, skip Functions 1 and 2
                        skipped += 1
                        candidates.append((dst, st[5]))
                        new_stamps[dst] = st
                        continue
                    sim = st[4]  # vectors unchanged: Function 1 skipped
            if sim is None:
                if not use_sim or va is None:
                    sim = 0.0
                else:
                    vb = vectors.get(dst)
                    if vb is None:
                        sim = 0.0
                    else:
                        sim = lookup(src, dst, ver_a, ver_b)
                        if sim is None:
                            sim = (
                                ipa_similarity(va, vb, mode)
                                if ipa
                                else dpa_similarity(va, vb)
                            )
                            put(src, dst, ver_a, ver_b, sim)
            if use_freq and n_x:
                freq = n_xy / n_x
                if freq > 1.0:
                    freq = 1.0
            else:
                freq = 0.0
            degree = sim * p + freq * q
            candidates.append((dst, degree))
            if record_stamps:
                new_stamps[dst] = (ver_a, ver_b, n_xy, n_x, sim, degree)
        lst.rebuild(candidates)
        if record_stamps and new_stamps:
            self._stamps[src] = new_stamps
        elif stamps is not None and not new_stamps:
            self._stamps.pop(src, None)
        self._entries_skipped += skipped
        self._dirty.discard(src)
        self._ranked_tick[src] = tick
        if self._incremental:
            self._ranked_epoch[src] = store.epoch()
        return lst

    def _reevaluate_entrywise(self, src: int) -> CorrelatorList:
        """Reference kernel: clear, then offer every successor through
        ``CorrelatorList.update`` (one binary insertion each). Output is
        bit-for-bit identical to the bulk kernel — both rank the current
        successor set from scratch — which the property tests pin."""
        successors = self.constructor.graph.successors(src)
        lst = self._list_for(src)
        self._n_reevaluations += 1
        self._entries_scanned += len(successors)
        for fid in [e.fid for e in lst.entries()]:
            lst.discard(fid)
        for dst in successors:
            lst.update(dst, self.correlation_degree(src, dst))
        self._dirty.discard(src)
        self._ranked_tick[src] = self.constructor.graph.change_tick(src)
        return lst

    def _flush_array(self, fids, out=None):
        """The "array" kernel: rank every given source in one vectorized
        batch (Algorithm 1 over the union of their successor sets).

        One assembly pass gathers each node's flat successor slices
        (``succ_fids``/``succ_weights`` extend locally-owned buffers — a
        C memcpy each) and the Function-1 similarity row (reused from
        the source's :class:`_RankRecord` when versions allow, else
        computed inline with a persistent path-pair memo); then numpy
        evaluates Function 2 over the whole concatenated batch at once —
        ``R = sim·p + min(N_xy/N_x, 1)·q`` elementwise, with an ``inf``
        divisor encoding the freq=0 cases so the arithmetic (and its
        IEEE rounding) matches the scalar kernels bit-for-bit — and each
        list is materialised by one rebuild over its slice.

        Unlike the scalar kernels this path never touches the shared
        similarity cache: the rank records are its memo (one row per
        source, validated by node identity + versions), which keeps the
        hot loop free of per-pair dict traffic. Counters advance exactly
        as the bulk kernel's would (reevaluations, scanned; a provably
        unchanged list is skipped whole with ``entries_skipped_unchanged``
        advancing by its length).

        When ``out`` is a dict, every flushed source's list is recorded
        in it (the :meth:`flush_nodes_report` contract).
        """
        np = _np
        constructor = self.constructor
        nodes = constructor.graph.node_map()
        store = constructor.vectors
        vectors, versions = store.maps()
        epoch = store.epoch()
        config = self.config
        p = config.weight_p
        q = 1.0 - p
        use_sim = p > 0.0
        use_freq = p < 1.0
        inline_ipa = config.path_method == "ipa" and config.path_mode == "bag"
        if inline_ipa:
            sim_fn = None
        elif config.path_method == "ipa":
            mode = config.path_mode
            sim_fn = lambda a, b: ipa_similarity(a, b, mode)
        else:
            sim_fn = dpa_similarity
        records = self._rank_records
        ranked = self._ranked_tick
        lists = self._lists
        dirty_discard = self._dirty.discard
        vget = vectors.get
        pmemo = self._path_memo
        if len(pmemo) > _PATH_MEMO_CAP:
            pmemo.clear()
        inf = float("inf")

        # assembly buffers: one contiguous batch across all sources
        all_w = array("d")
        all_f = array("q")
        sims: list[float] = []
        sims_append = sims.append
        nx_div: list[float] = []
        lens: list[int] = []
        meta: list[tuple] = []
        n_re = 0
        n_scanned = 0
        n_skipped = 0

        for src in fids:
            node = nodes.get(src)
            d = len(node.succ_fids) if node is not None else 0
            if d == 0:
                lst = self._list_for(src)
                lst.rebuild(())
                n_re += 1
                dirty_discard(src)
                ranked[src] = node.change_tick if node is not None else 0
                records.pop(src, None)
                if out is not None:
                    out[src] = lst
                continue
            tick = node.change_tick
            rec = records.get(src)
            if rec is not None and rec.node is not node:
                # the graph replaced the node object (pop/adopt); the
                # record described a different object's counters
                records.pop(src)
                rec = None
            if (
                rec is not None
                and rec.change_tick == tick
                and rec.vec_epoch == epoch
            ):
                # every input of the list is provably unchanged since
                # its last rank: skip the scan whole (counter parity)
                n_re += 1
                n_scanned += d
                n_skipped += d
                dirty_discard(src)
                ranked[src] = tick
                if out is not None:
                    out[src] = lists[src]
                continue
            n_re += 1
            n_scanned += d
            n_x = node.access_count
            va = vget(src)
            ver_a = versions[src] if va is not None else 0
            succ_fids = node.succ_fids
            succ_w = node.succ_weights
            all_f.extend(succ_fids)
            all_w.extend(succ_w)
            nx_div.append(float(n_x) if (use_freq and n_x) else inf)
            lens.append(d)
            record_it = rec is not None or src in ranked
            ver_b: list | None = None
            zeros = False
            pre_skipped = 0
            if not use_sim or va is None:
                # the all-zeros similarity row (recorded as sims=None)
                sims.extend((0.0,) * d)
                zeros = True
            elif (
                rec is not None
                and rec.succ_version == node.succ_version
                and rec.ver_a == ver_a
                and rec.sims is not None
            ):
                rec_sims = rec.sims
                if rec.vec_epoch == epoch:
                    # no vector anywhere changed since the record: the
                    # whole similarity row is still exact
                    sims.extend(rec_sims)
                    ver_b = rec.ver_b
                    if n_x == rec.n_x:
                        cur = np.frombuffer(succ_w, dtype=np.float64)
                        old = np.frombuffer(rec.n_xy, dtype=np.float64)
                        pre_skipped = int(np.count_nonzero(cur == old))
                else:
                    # some vector moved: reuse sims whose destination
                    # version is unchanged, recompute the rest
                    rec_verb = rec.ver_b
                    rec_nxy = rec.n_xy
                    nx_same = n_x == rec.n_x
                    new_verb: list = []
                    verb_append = new_verb.append
                    for k in range(d):
                        dst = succ_fids[k]
                        vb = vget(dst)
                        if vb is None:
                            nv = 0
                            s = 0.0
                            reused = rec_verb[k] == 0
                        else:
                            nv = versions[dst]
                            if nv == rec_verb[k]:
                                s = rec_sims[k]
                                reused = True
                            else:
                                s = (
                                    self._ipa_bag(va, vb, pmemo)
                                    if inline_ipa
                                    else sim_fn(va, vb)
                                )
                                reused = False
                        verb_append(nv)
                        sims_append(s)
                        if reused and nx_same and succ_w[k] == rec_nxy[k]:
                            pre_skipped += 1
                    ver_b = new_verb
            else:
                # full Function-1 row
                if record_it:
                    ver_b = []
                    verb_append = ver_b.append
                if inline_ipa:
                    na = va.n_ipa
                    sa = va._scalar_set
                    if sa is None:
                        sa = va.scalar_set
                    pa = va.path_ids
                    spa = va.sorted_path if pa else None
                    lpa = len(pa) if pa else 0
                    for dst in succ_fids:
                        vb = vget(dst)
                        if vb is None:
                            sims_append(0.0)
                            if record_it:
                                verb_append(0)
                            continue
                        nb = vb.n_ipa
                        denom = na if na >= nb else nb
                        if denom == 0:
                            s = 0.0
                        else:
                            sb = vb._scalar_set
                            if sb is None:
                                sb = vb.scalar_set
                            hits = float(len(sa & sb))
                            pb = vb.path_ids
                            if pa and pb:
                                key = (spa, vb.sorted_path)
                                h = pmemo.get(key)
                                if h is None:
                                    lpb = len(pb)
                                    h = bag_intersection(spa, key[1]) / (
                                        lpa if lpa >= lpb else lpb
                                    )
                                    pmemo[key] = h
                                hits += h
                            s = hits / denom
                        sims_append(s)
                        if record_it:
                            verb_append(versions[dst])
                else:
                    for dst in succ_fids:
                        vb = vget(dst)
                        if vb is None:
                            sims_append(0.0)
                            if record_it:
                                verb_append(0)
                        else:
                            sims_append(sim_fn(va, vb))
                            if record_it:
                                verb_append(versions[dst])
            meta.append(
                (src, node, tick, d, record_it, ver_a, n_x, ver_b, zeros,
                 pre_skipped)
            )

        if meta:
            # Function 2 over the whole batch. Per entry the arithmetic
            # is (sim*p) + (min(n_xy/n_x, 1.0)*q) in exactly the scalar
            # kernels' operation order, so IEEE rounding agrees; the inf
            # divisor yields +0.0 for the n_x==0 / p==1 cases, matching
            # their freq=0.0 branch bit-for-bit.
            w = np.frombuffer(all_w, dtype=np.float64)
            fid_view = np.frombuffer(all_f, dtype=np.int64)
            sims_arr = np.array(sims, dtype=np.float64)
            divisors = np.repeat(
                np.array(nx_div, dtype=np.float64), np.array(lens)
            )
            freqs = w / divisors
            np.minimum(freqs, 1.0, out=freqs)
            degrees = sims_arr * p
            degrees += freqs * q
            pos = 0
            for (src, node, tick, d, record_it, ver_a, n_x, ver_b, zeros,
                 pre_skipped) in meta:
                end = pos + d
                lst = self._list_for(src)
                if d >= 64 and d > lst.capacity:
                    lst.rebuild_arrays(fid_view[pos:end], degrees[pos:end])
                else:
                    lst.rebuild(zip(node.succ_fids, degrees[pos:end].tolist()))
                if record_it:
                    records[src] = _RankRecord(
                        node,
                        tick,
                        node.succ_version,
                        epoch,
                        ver_a,
                        n_x,
                        ver_b,
                        None if zeros else sims[pos:end],
                        node.succ_weights[:],
                    )
                n_skipped += pre_skipped
                dirty_discard(src)
                ranked[src] = tick
                if out is not None:
                    out[src] = lst
                pos = end
        self._n_reevaluations += n_re
        self._entries_scanned += n_scanned
        self._entries_skipped += n_skipped
        return out

    @staticmethod
    def _ipa_bag(va, vb, pmemo) -> float:
        """One IPA(bag) similarity with the path-pair memo (the cold
        path of the per-entry reuse loop; mirrors ``ipa_similarity``)."""
        na = va.n_ipa
        nb = vb.n_ipa
        denom = na if na >= nb else nb
        if denom == 0:
            return 0.0
        sa = va._scalar_set
        if sa is None:
            sa = va.scalar_set
        sb = vb._scalar_set
        if sb is None:
            sb = vb.scalar_set
        hits = float(len(sa & sb))
        pa = va.path_ids
        pb = vb.path_ids
        if pa and pb:
            key = (va.sorted_path, vb.sorted_path)
            h = pmemo.get(key)
            if h is None:
                lpa = len(pa)
                lpb = len(pb)
                h = bag_intersection(key[0], key[1]) / (
                    lpa if lpa >= lpb else lpb
                )
                pmemo[key] = h
            hits += h
        return hits / denom

    def reevaluate_edge(self, src: int, dst: int) -> None:
        """Refresh a single (src → dst) entry after an edge reinforcement."""
        self._list_for(src).update(dst, self.correlation_degree(src, dst))

    # ------------------------------------------------------------------
    # dirty/lazy protocol
    # ------------------------------------------------------------------

    def mark_dirty(self, fid: int) -> None:
        """Note that ``fid``'s frequency denominators changed; the full
        re-rank is deferred to the first query of the list."""
        self._dirty.add(fid)

    def demote_rank(self, fid: int) -> None:
        """Forget that ``fid`` was ranked: mark it dirty and drop its
        rank stamps, so the next flush or query re-ranks it even though
        the graph tick has not moved.

        The replication barrier uses this to stay invisible: it ranks
        dirty lists mid-stream so the standby ships barrier-exact state,
        but the primary's own schedule must still re-rank them at query
        time — the tick-skip in :meth:`flush_nodes` would otherwise
        serve the barrier-time degrees after later vector updates.
        Per-edge stamps are kept (they validate against live versions,
        so unchanged edges still skip Functions 1 and 2 on the re-rank).
        """
        self._dirty.add(fid)
        self._ranked_tick.pop(fid, None)
        self._ranked_epoch.pop(fid, None)

    def is_dirty(self, fid: int) -> bool:
        """Whether ``fid``'s list awaits its deferred re-rank."""
        return fid in self._dirty

    def n_dirty(self) -> int:
        """Number of lists awaiting a deferred re-rank."""
        return len(self._dirty)

    def dirty_nodes(self) -> list[int]:
        """The fids awaiting a deferred re-rank (a snapshot copy)."""
        return list(self._dirty)

    def query(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid``, re-ranked first if dirty.

        This is the entry point the Sorter (and therefore ``correlators``
        / ``predict``) uses; every result it returns reflects a full
        Algorithm-1 pass over the current graph and vector state.
        """
        if fid in self._dirty:
            return self.reevaluate(fid)
        return self._lists.get(fid)

    def flush_all(self) -> None:
        """Re-rank every dirty list (aggregate queries call this first)."""
        if self._array:
            while self._dirty:
                self._flush_array(sorted(self._dirty))
            return
        while self._dirty:
            self.reevaluate(next(iter(self._dirty)))

    def flush_nodes(self, fids) -> None:
        """Batch-mode flush: re-rank exactly the given nodes, skipping
        any whose graph change tick has not moved since it was last
        ranked (``Farmer.mine`` collects the fids its batch touched and
        defers all list maintenance to one such pass at the end, so
        chunked mining costs O(touched), not O(graph)). The array kernel
        ranks the survivors as one vectorized batch."""
        nodes = self.constructor.graph.node_map()
        ranked = self._ranked_tick
        if self._array:
            todo = []
            append = todo.append
            discard = self._dirty.discard
            for fid in fids:
                node = nodes.get(fid)
                tick = node.change_tick if node is not None else 0
                if ranked.get(fid, 0) != tick:
                    append(fid)
                else:
                    discard(fid)
            if todo:
                self._flush_array(todo)
            return
        for fid in fids:
            node = nodes.get(fid)
            tick = node.change_tick if node is not None else 0
            if ranked.get(fid, 0) != tick:
                self.reevaluate(fid)
            else:
                self._dirty.discard(fid)

    def flush_graph_changes(self) -> None:
        """Full resync: re-rank every node in the graph whose change
        tick moved since it was last ranked. O(graph) — prefer
        :meth:`flush_nodes` when the touched set is known."""
        self.flush_nodes(self.constructor.graph.nodes())
        self._dirty.clear()

    # ------------------------------------------------------------------
    # parallel-runner seam
    # ------------------------------------------------------------------

    def flush_nodes_report(self, fids) -> dict[int, CorrelatorList]:
        """:meth:`flush_nodes` that also returns the re-ranked lists —
        the process-backend worker entry point: the worker flushes a
        pickled snapshot and ships exactly the lists it rebuilt back."""
        graph = self.constructor.graph
        ranked = self._ranked_tick
        out: dict[int, CorrelatorList] = {}
        if self._array:
            todo = []
            for fid in fids:
                if ranked.get(fid, 0) != graph.change_tick(fid):
                    todo.append(fid)
                else:
                    self._dirty.discard(fid)
            if todo:
                self._flush_array(todo, out)
            return out
        for fid in fids:
            if ranked.get(fid, 0) != graph.change_tick(fid):
                out[fid] = self.reevaluate(fid)
            else:
                self._dirty.discard(fid)
        return out

    def adopt_ranked(self, lists: dict[int, CorrelatorList], fids) -> None:
        """Install lists re-ranked elsewhere (a process worker) as if
        :meth:`flush_nodes` over ``fids`` had run here: lists replaced,
        dirty flags cleared, ranked ticks stamped at the current graph
        state. The worker's stamp/cache side-state stays behind — stamps
        are validated against live inputs, so losing them costs a
        recomputation, never correctness."""
        graph = self.constructor.graph
        for fid, lst in lists.items():
            self._lists[fid] = lst
            self._ranked_tick[fid] = graph.change_tick(fid)
            self._ranked_epoch.pop(fid, None)
        for fid in fids:
            self._dirty.discard(fid)

    # ------------------------------------------------------------------
    # migration (the shard-rebalancing seam)
    # ------------------------------------------------------------------

    def extract_state(self, fid: int) -> CorrelatorList | None:
        """Detach everything this miner holds for ``fid`` and return its
        Correlator List (``None`` if the file never grew one).

        Used when a shard rebalance migrates the fid elsewhere: list,
        re-rank stamps, ranked tick and dirty flag all leave with it —
        call :meth:`flush_nodes` (or :meth:`flush_nodes_report`) first
        if the shipped list must be freshly ranked.
        """
        self._dirty.discard(fid)
        self._ranked_tick.pop(fid, None)
        self._stamps.pop(fid, None)
        self._rank_records.pop(fid, None)
        self._ranked_epoch.pop(fid, None)
        return self._lists.pop(fid, None)

    def adopt_migrated(self, fid: int, lst: CorrelatorList, tick: int) -> None:
        """Install a list migrated from another shard as ``fid``'s
        authoritative state: any halo list/stamps/dirty flag this miner
        accumulated for the fid are discarded (the migrated list came
        from the owner), and the ranked tick is pinned to ``tick`` (the
        migrated graph node's change tick) so the next flush re-ranks
        only if the node actually changes again. Stamps are dropped
        rather than shipped — they are validated against live inputs, so
        losing them costs a recomputation, never correctness.
        """
        self._lists[fid] = lst
        self._ranked_tick[fid] = tick
        self._stamps.pop(fid, None)
        self._rank_records.pop(fid, None)
        self._ranked_epoch.pop(fid, None)
        self._dirty.discard(fid)

    # ------------------------------------------------------------------
    # op accounting
    # ------------------------------------------------------------------

    def rerank_stats(self) -> RerankStats:
        """Re-rank op counters (what the perf benchmarks assert on)."""
        return RerankStats(
            n_reevaluations=self._n_reevaluations,
            entries_scanned=self._entries_scanned,
            entries_skipped_unchanged=self._entries_skipped,
            insort_ops=sum(lst.insort_ops for lst in self._lists.values()),
        )

    # ------------------------------------------------------------------
    # views & accounting
    # ------------------------------------------------------------------

    def list_of(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid`` as-is (None if the file has none
        yet; may be awaiting its deferred re-rank — use :meth:`query` for
        the re-ranked view)."""
        return self._lists.get(fid)

    def n_lists(self) -> int:
        """Number of files owning a Correlator List."""
        return len(self._lists)

    def lists(self) -> dict[int, CorrelatorList]:
        """Live view of all lists (read-only use; call :meth:`flush_all`
        first if re-ranked results are required)."""
        return self._lists

    def approx_bytes(self) -> int:
        """Footprint of all Correlator Lists plus the similarity cache
        (only when owned — a shared cache is accounted once by its
        owner), the dirty/ranked-tick bookkeeping and the re-rank
        stamps."""
        return (
            64
            + sum(104 + lst.approx_bytes() for lst in self._lists.values())
            + (self.sim_cache.approx_bytes() if self.owns_sim_cache else 0)
            + 56 * len(self._ranked_tick)
            + 56 * len(self._ranked_epoch)
            + 32 * len(self._dirty)
            + sum(88 + 144 * len(d) for d in self._stamps.values())
            + sum(
                160 + 48 * len(r.n_xy)
                for r in self._rank_records.values()
            )
        )
