"""Stage 3 — Mining & Evaluating: the CoMiner algorithm (paper §3.2).

For a file ``x`` and each graph successor ``y``:

* semantic distance ``sim(x, y)`` via the configured path algorithm
  (Function 1, IPA by default);
* access frequency ``F(x, y) = N_xy / N_x`` with LDA-weighted ``N_xy``;
* correlation degree ``R(x, y) = sim·p + F·(1 − p)`` (Function 2);

entries with ``R > max_strength`` go into (or re-rank within) the file's
Correlator List; weaker ones are filtered out. This mirrors the paper's
Algorithm 1 pseudo-code.

Incremental hot path (the dirty/lazy contract)
----------------------------------------------

The paper's "reasonable overhead" claim (§4, Table 4) needs per-request
mining to be O(small). Two mechanisms make it so:

* **Versioned similarity cache** — ``sim(x, y)`` depends only on the two
  semantic vectors, which change rarely. :meth:`semantic_distance`
  consults a :class:`~repro.core.simcache.SimilarityCache` keyed by the
  pair's vector versions, so Function 1 reruns only when an endpoint's
  vector truly changed (a stale value is never served — version mismatch
  is a miss by construction).

* **Dirty lists, lazy re-rank** — a request for ``x`` changes the
  denominator of every ``F(x, ·)``, so the whole list of ``x`` is stale;
  instead of re-running Algorithm 1 immediately, ``observe`` calls
  :meth:`mark_dirty` and the full re-rank + stale-edge sweep is deferred
  to the first *query* of the list (:meth:`query` / :meth:`flush_all`).
  Reinforced edges (``pred → x`` for predecessors in the window) only
  move one entry, so they are refreshed eagerly via
  :meth:`reevaluate_edge` — exactly the schedule the eager miner runs,
  which keeps lazy and eager query results identical when queries follow
  the triggering request.

* **Change ticks** — the graph stamps every node with a monotonic
  :meth:`~repro.graph.correlation_graph.CorrelationGraph.change_tick`;
  :meth:`reevaluate` records the tick it ranked at, and
  :meth:`flush_nodes` (the batch-``mine`` path) re-ranks exactly the
  touched nodes whose tick moved since they were last ranked.

One-pass re-rank kernel (``FarmerConfig.rerank_kernel``)
--------------------------------------------------------

``reevaluate`` is the hottest loop in the system, and the default
"bulk" kernel runs it as one measurable pass instead of d independent
``update``/``insort`` calls:

* the source's vector/version and access count are resolved **once**;
* per successor, an *entry stamp* ``(vector-version pair, N_xy, N_x)``
  is compared against the inputs of the last rank — an exact match
  reuses the stored degree outright (both Function 1 and Function 2
  skipped), a version-pair match alone reuses the stored similarity
  (Function 1 skipped, only the frequency blend recomputed);
* remaining successors are answered against the versioned cache exactly
  as the public batch kernel :meth:`semantic_distances` does — src
  vector resolved once, one lookup/compute/store per dst — with the
  loop inlined into the re-rank (property-tested against the public
  method);
* the list is materialised by a single
  :meth:`~repro.graph.correlator_list.CorrelatorList.rebuild` (sort +
  threshold/capacity cut, O(d log d)) instead of d binary insertions.

``rerank_kernel="entrywise"`` keeps the per-entry reference path
(bit-for-bit identical output, property-tested);
``incremental_rerank=False`` disables the stamps. The op counters in
:class:`RerankStats` let benchmarks assert the work reduction instead
of poking internals.

Ranking contract (both kernels): a re-ranked list is a pure function of
the file's *current* successor set — the top-capacity degrees above the
threshold. Stale entries and stale degrees never interact with the
capacity cut.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.core.simcache import SimCacheStats, SimilarityCache
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import dpa_similarity, ipa_similarity

__all__ = ["CoMiner", "RerankStats"]


@dataclass(frozen=True, slots=True)
class RerankStats:
    """Operation counters of the re-rank hot path (since construction).

    Attributes:
        n_reevaluations: full Algorithm-1 re-ranks performed.
        entries_scanned: successor entries examined across all re-ranks.
        entries_skipped_unchanged: entries whose stamp matched every
            input — degree reused, Function 1 and Function 2 skipped.
        insort_ops: binary insertions into Correlator Lists (the bulk
            kernel performs none during a re-rank; the eager single-edge
            refresh path still insorts).
    """

    n_reevaluations: int
    entries_scanned: int
    entries_skipped_unchanged: int
    insort_ops: int


class CoMiner:
    """Evaluates correlation degrees and maintains Correlator Lists."""

    def __init__(
        self,
        config: FarmerConfig,
        constructor: GraphConstructor,
        sim_cache: SimilarityCache | None = None,
    ) -> None:
        self.config = config
        self.constructor = constructor
        # ``sim_cache`` may be injected (a SharedSimilarityCache) so all
        # shards of a sharded deployment reuse each other's Function-1 work
        self.sim_cache = (
            sim_cache if sim_cache is not None else SimilarityCache(config.sim_cache_capacity)
        )
        self.owns_sim_cache = sim_cache is None
        self._lists: dict[int, CorrelatorList] = {}
        self._dirty: set[int] = set()
        self._ranked_tick: dict[int, int] = {}
        # src -> dst -> (ver_src, ver_dst, n_xy, n_x, sim, degree): the
        # inputs and outputs of the last rank, pruned to the current
        # successor set on every bulk re-rank
        self._stamps: dict[int, dict[int, tuple]] = {}
        self._bulk = config.rerank_kernel == "bulk"
        self._incremental = self._bulk and config.incremental_rerank
        self._n_reevaluations = 0
        self._entries_scanned = 0
        self._entries_skipped = 0

    # ------------------------------------------------------------------
    # degree evaluation
    # ------------------------------------------------------------------

    def semantic_distance(self, src: int, dst: int) -> float:
        """``sim(src, dst)`` from the stored semantic vectors (0 if unknown).

        Served from the versioned cache when both endpoints' vectors are
        unchanged since the pair was last evaluated.
        """
        vectors, versions = self.constructor.vectors.maps()
        va = vectors.get(src)
        if va is None:
            return 0.0
        vb = vectors.get(dst)
        if vb is None:
            return 0.0
        ver_a = versions[src]
        ver_b = versions[dst]
        cached = self.sim_cache.lookup(src, dst, ver_a, ver_b)
        if cached is not None:
            return cached
        config = self.config
        value = (
            ipa_similarity(va, vb, config.path_mode)
            if config.path_method == "ipa"
            else dpa_similarity(va, vb)
        )
        self.sim_cache.store(src, dst, ver_a, ver_b, value)
        return value

    def semantic_distances(self, src: int, dsts) -> list[float]:
        """Batch Function 1: ``sim(src, dst)`` for every dst, in order.

        ``src``'s vector and version are resolved once and the whole
        set is answered against the versioned cache in one pass (each
        miss computed and stored). :meth:`_reevaluate_bulk` inlines this
        same consult loop on the hot path; the equivalence tests pin the
        two against each other.
        """
        vectors, versions = self.constructor.vectors.maps()
        va = vectors.get(src)
        if va is None:
            return [0.0 for _ in dsts]
        ver_a = versions[src]
        cache = self.sim_cache
        lookup, put = cache.lookup, cache.store
        ipa = self.config.path_method == "ipa"
        mode = self.config.path_mode
        out: list[float] = []
        for dst in dsts:
            vb = vectors.get(dst)
            if vb is None:
                out.append(0.0)
                continue
            ver_b = versions[dst]
            value = lookup(src, dst, ver_a, ver_b)
            if value is None:
                value = (
                    ipa_similarity(va, vb, mode) if ipa else dpa_similarity(va, vb)
                )
                put(src, dst, ver_a, ver_b, value)
            out.append(value)
        return out

    def correlation_degree(self, src: int, dst: int) -> float:
        """Function 2: ``R = sim·p + F·(1−p)``."""
        p = self.config.weight_p
        sim = self.semantic_distance(src, dst) if p > 0.0 else 0.0
        freq = self.constructor.graph.frequency(src, dst) if p < 1.0 else 0.0
        return sim * p + freq * (1.0 - p)

    def sim_cache_stats(self) -> SimCacheStats:
        """Similarity-cache counters (misses = Function-1 computations)."""
        return self.sim_cache.stats()

    # ------------------------------------------------------------------
    # list maintenance
    # ------------------------------------------------------------------

    def _list_for(self, fid: int) -> CorrelatorList:
        lst = self._lists.get(fid)
        if lst is None:
            lst = CorrelatorList(
                threshold=self.config.max_strength,
                capacity=self.config.correlator_capacity,
            )
            self._lists[fid] = lst
        return lst

    def reevaluate(self, src: int) -> CorrelatorList:
        """Re-run Algorithm 1 for ``src``: evaluate every graph successor,
        filter by the validity threshold, keep the list sorted. Entries
        whose edge the graph has evicted are dropped (the stale-edge
        sweep falls out of ranking over the current successor set).
        Clears the dirty flag and records the graph tick ranked at."""
        if self._bulk:
            return self._reevaluate_bulk(src)
        return self._reevaluate_entrywise(src)

    def _reevaluate_bulk(self, src: int) -> CorrelatorList:
        """One-pass kernel: stamps skip unchanged successors, the
        remaining similarities are answered exactly as
        :meth:`semantic_distances` would (src vector/version resolved
        once, cache consulted per dst — inlined to keep the loop flat),
        and the list is materialised by a single sort/cut rebuild.

        Stamps are recorded from a file's first *re*-rank on: a one-shot
        batch ranks every file exactly once, and allocating stamps it
        will never read is measurable at that scale.
        """
        constructor = self.constructor
        node = constructor.graph.node_map().get(src)
        if node is not None:
            successors = node.successors
            n_x = node.access_count
            tick = node.change_tick
        else:
            successors = {}
            n_x = 0
            tick = 0
        lst = self._list_for(src)
        self._n_reevaluations += 1
        self._entries_scanned += len(successors)
        config = self.config
        p = config.weight_p
        q = 1.0 - p
        use_sim = p > 0.0
        use_freq = p < 1.0
        vectors, versions = constructor.vectors.maps()
        va = vectors.get(src)
        ver_a = versions[src] if va is not None else 0
        cache = self.sim_cache
        lookup, put = cache.lookup, cache.store
        ipa = config.path_method == "ipa"
        mode = config.path_mode
        stamps = self._stamps.get(src) if self._incremental else None
        record_stamps = self._incremental and (
            stamps is not None or src in self._ranked_tick
        )
        new_stamps: dict[int, tuple] = {}
        candidates: list[tuple[int, float]] = []
        skipped = 0
        for dst, edge in successors.items():
            n_xy = edge.weighted_count
            ver_b = versions.get(dst, 0)
            sim = None
            if stamps is not None:
                st = stamps.get(dst)
                if st is not None and st[0] == ver_a and st[1] == ver_b:
                    if st[2] == n_xy and st[3] == n_x:
                        # every input unchanged since the last rank:
                        # reuse the degree, skip Functions 1 and 2
                        skipped += 1
                        candidates.append((dst, st[5]))
                        new_stamps[dst] = st
                        continue
                    sim = st[4]  # vectors unchanged: Function 1 skipped
            if sim is None:
                if not use_sim or va is None:
                    sim = 0.0
                else:
                    vb = vectors.get(dst)
                    if vb is None:
                        sim = 0.0
                    else:
                        sim = lookup(src, dst, ver_a, ver_b)
                        if sim is None:
                            sim = (
                                ipa_similarity(va, vb, mode)
                                if ipa
                                else dpa_similarity(va, vb)
                            )
                            put(src, dst, ver_a, ver_b, sim)
            if use_freq and n_x:
                freq = n_xy / n_x
                if freq > 1.0:
                    freq = 1.0
            else:
                freq = 0.0
            degree = sim * p + freq * q
            candidates.append((dst, degree))
            if record_stamps:
                new_stamps[dst] = (ver_a, ver_b, n_xy, n_x, sim, degree)
        lst.rebuild(candidates)
        if record_stamps and new_stamps:
            self._stamps[src] = new_stamps
        elif stamps is not None and not new_stamps:
            self._stamps.pop(src, None)
        self._entries_skipped += skipped
        self._dirty.discard(src)
        self._ranked_tick[src] = tick
        return lst

    def _reevaluate_entrywise(self, src: int) -> CorrelatorList:
        """Reference kernel: clear, then offer every successor through
        ``CorrelatorList.update`` (one binary insertion each). Output is
        bit-for-bit identical to the bulk kernel — both rank the current
        successor set from scratch — which the property tests pin."""
        successors = self.constructor.graph.successors(src)
        lst = self._list_for(src)
        self._n_reevaluations += 1
        self._entries_scanned += len(successors)
        for fid in [e.fid for e in lst.entries()]:
            lst.discard(fid)
        for dst in successors:
            lst.update(dst, self.correlation_degree(src, dst))
        self._dirty.discard(src)
        self._ranked_tick[src] = self.constructor.graph.change_tick(src)
        return lst

    def reevaluate_edge(self, src: int, dst: int) -> None:
        """Refresh a single (src → dst) entry after an edge reinforcement."""
        self._list_for(src).update(dst, self.correlation_degree(src, dst))

    # ------------------------------------------------------------------
    # dirty/lazy protocol
    # ------------------------------------------------------------------

    def mark_dirty(self, fid: int) -> None:
        """Note that ``fid``'s frequency denominators changed; the full
        re-rank is deferred to the first query of the list."""
        self._dirty.add(fid)

    def is_dirty(self, fid: int) -> bool:
        """Whether ``fid``'s list awaits its deferred re-rank."""
        return fid in self._dirty

    def n_dirty(self) -> int:
        """Number of lists awaiting a deferred re-rank."""
        return len(self._dirty)

    def dirty_nodes(self) -> list[int]:
        """The fids awaiting a deferred re-rank (a snapshot copy)."""
        return list(self._dirty)

    def query(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid``, re-ranked first if dirty.

        This is the entry point the Sorter (and therefore ``correlators``
        / ``predict``) uses; every result it returns reflects a full
        Algorithm-1 pass over the current graph and vector state.
        """
        if fid in self._dirty:
            return self.reevaluate(fid)
        return self._lists.get(fid)

    def flush_all(self) -> None:
        """Re-rank every dirty list (aggregate queries call this first)."""
        while self._dirty:
            self.reevaluate(next(iter(self._dirty)))

    def flush_nodes(self, fids) -> None:
        """Batch-mode flush: re-rank exactly the given nodes, skipping
        any whose graph change tick has not moved since it was last
        ranked (``Farmer.mine`` collects the fids its batch touched and
        defers all list maintenance to one such pass at the end, so
        chunked mining costs O(touched), not O(graph))."""
        nodes = self.constructor.graph.node_map()
        ranked = self._ranked_tick
        for fid in fids:
            node = nodes.get(fid)
            tick = node.change_tick if node is not None else 0
            if ranked.get(fid, 0) != tick:
                self.reevaluate(fid)
            else:
                self._dirty.discard(fid)

    def flush_graph_changes(self) -> None:
        """Full resync: re-rank every node in the graph whose change
        tick moved since it was last ranked. O(graph) — prefer
        :meth:`flush_nodes` when the touched set is known."""
        self.flush_nodes(self.constructor.graph.nodes())
        self._dirty.clear()

    # ------------------------------------------------------------------
    # parallel-runner seam
    # ------------------------------------------------------------------

    def flush_nodes_report(self, fids) -> dict[int, CorrelatorList]:
        """:meth:`flush_nodes` that also returns the re-ranked lists —
        the process-backend worker entry point: the worker flushes a
        pickled snapshot and ships exactly the lists it rebuilt back."""
        graph = self.constructor.graph
        ranked = self._ranked_tick
        out: dict[int, CorrelatorList] = {}
        for fid in fids:
            if ranked.get(fid, 0) != graph.change_tick(fid):
                out[fid] = self.reevaluate(fid)
            else:
                self._dirty.discard(fid)
        return out

    def adopt_ranked(self, lists: dict[int, CorrelatorList], fids) -> None:
        """Install lists re-ranked elsewhere (a process worker) as if
        :meth:`flush_nodes` over ``fids`` had run here: lists replaced,
        dirty flags cleared, ranked ticks stamped at the current graph
        state. The worker's stamp/cache side-state stays behind — stamps
        are validated against live inputs, so losing them costs a
        recomputation, never correctness."""
        graph = self.constructor.graph
        for fid, lst in lists.items():
            self._lists[fid] = lst
            self._ranked_tick[fid] = graph.change_tick(fid)
        for fid in fids:
            self._dirty.discard(fid)

    # ------------------------------------------------------------------
    # migration (the shard-rebalancing seam)
    # ------------------------------------------------------------------

    def extract_state(self, fid: int) -> CorrelatorList | None:
        """Detach everything this miner holds for ``fid`` and return its
        Correlator List (``None`` if the file never grew one).

        Used when a shard rebalance migrates the fid elsewhere: list,
        re-rank stamps, ranked tick and dirty flag all leave with it —
        call :meth:`flush_nodes` (or :meth:`flush_nodes_report`) first
        if the shipped list must be freshly ranked.
        """
        self._dirty.discard(fid)
        self._ranked_tick.pop(fid, None)
        self._stamps.pop(fid, None)
        return self._lists.pop(fid, None)

    def adopt_migrated(self, fid: int, lst: CorrelatorList, tick: int) -> None:
        """Install a list migrated from another shard as ``fid``'s
        authoritative state: any halo list/stamps/dirty flag this miner
        accumulated for the fid are discarded (the migrated list came
        from the owner), and the ranked tick is pinned to ``tick`` (the
        migrated graph node's change tick) so the next flush re-ranks
        only if the node actually changes again. Stamps are dropped
        rather than shipped — they are validated against live inputs, so
        losing them costs a recomputation, never correctness.
        """
        self._lists[fid] = lst
        self._ranked_tick[fid] = tick
        self._stamps.pop(fid, None)
        self._dirty.discard(fid)

    # ------------------------------------------------------------------
    # op accounting
    # ------------------------------------------------------------------

    def rerank_stats(self) -> RerankStats:
        """Re-rank op counters (what the perf benchmarks assert on)."""
        return RerankStats(
            n_reevaluations=self._n_reevaluations,
            entries_scanned=self._entries_scanned,
            entries_skipped_unchanged=self._entries_skipped,
            insort_ops=sum(lst.insort_ops for lst in self._lists.values()),
        )

    # ------------------------------------------------------------------
    # views & accounting
    # ------------------------------------------------------------------

    def list_of(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid`` as-is (None if the file has none
        yet; may be awaiting its deferred re-rank — use :meth:`query` for
        the re-ranked view)."""
        return self._lists.get(fid)

    def n_lists(self) -> int:
        """Number of files owning a Correlator List."""
        return len(self._lists)

    def lists(self) -> dict[int, CorrelatorList]:
        """Live view of all lists (read-only use; call :meth:`flush_all`
        first if re-ranked results are required)."""
        return self._lists

    def approx_bytes(self) -> int:
        """Footprint of all Correlator Lists plus the similarity cache
        (only when owned — a shared cache is accounted once by its
        owner), the dirty/ranked-tick bookkeeping and the re-rank
        stamps."""
        return (
            64
            + sum(104 + lst.approx_bytes() for lst in self._lists.values())
            + (self.sim_cache.approx_bytes() if self.owns_sim_cache else 0)
            + 56 * len(self._ranked_tick)
            + 32 * len(self._dirty)
            + sum(88 + 144 * len(d) for d in self._stamps.values())
        )
