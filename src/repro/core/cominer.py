"""Stage 3 — Mining & Evaluating: the CoMiner algorithm (paper §3.2).

For a file ``x`` and each graph successor ``y``:

* semantic distance ``sim(x, y)`` via the configured path algorithm
  (Function 1, IPA by default);
* access frequency ``F(x, y) = N_xy / N_x`` with LDA-weighted ``N_xy``;
* correlation degree ``R(x, y) = sim·p + F·(1 − p)`` (Function 2);

entries with ``R > max_strength`` go into (or re-rank within) the file's
Correlator List; weaker ones are filtered out. This mirrors the paper's
Algorithm 1 pseudo-code, run incrementally per request.
"""

from __future__ import annotations

from repro.core.config import FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import similarity

__all__ = ["CoMiner"]


class CoMiner:
    """Evaluates correlation degrees and maintains Correlator Lists."""

    def __init__(self, config: FarmerConfig, constructor: GraphConstructor) -> None:
        self.config = config
        self.constructor = constructor
        self._lists: dict[int, CorrelatorList] = {}

    # ------------------------------------------------------------------
    # degree evaluation
    # ------------------------------------------------------------------

    def semantic_distance(self, src: int, dst: int) -> float:
        """``sim(src, dst)`` from the stored semantic vectors (0 if unknown)."""
        va = self.constructor.vector_of(src)
        vb = self.constructor.vector_of(dst)
        if va is None or vb is None:
            return 0.0
        return similarity(
            va, vb, method=self.config.path_method, path_mode=self.config.path_mode
        )

    def correlation_degree(self, src: int, dst: int) -> float:
        """Function 2: ``R = sim·p + F·(1−p)``."""
        p = self.config.weight_p
        sim = self.semantic_distance(src, dst) if p > 0.0 else 0.0
        freq = self.constructor.graph.frequency(src, dst) if p < 1.0 else 0.0
        return sim * p + freq * (1.0 - p)

    # ------------------------------------------------------------------
    # list maintenance
    # ------------------------------------------------------------------

    def _list_for(self, fid: int) -> CorrelatorList:
        lst = self._lists.get(fid)
        if lst is None:
            lst = CorrelatorList(
                threshold=self.config.max_strength,
                capacity=self.config.correlator_capacity,
            )
            self._lists[fid] = lst
        return lst

    def reevaluate(self, src: int) -> CorrelatorList:
        """Re-run Algorithm 1 for ``src``: evaluate every graph successor,
        filter by the validity threshold, keep the list sorted."""
        successors = self.constructor.graph.successors(src)
        lst = self._list_for(src)
        # drop list entries whose edge the graph has evicted
        stale = [e.fid for e in lst.entries() if e.fid not in successors]
        for fid in stale:
            lst.discard(fid)
        for dst in successors:
            lst.update(dst, self.correlation_degree(src, dst))
        return lst

    def reevaluate_edge(self, src: int, dst: int) -> None:
        """Refresh a single (src → dst) entry after an edge reinforcement."""
        self._list_for(src).update(dst, self.correlation_degree(src, dst))

    def list_of(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid`` (None if the file has none yet)."""
        return self._lists.get(fid)

    def n_lists(self) -> int:
        """Number of files owning a Correlator List."""
        return len(self._lists)

    def lists(self) -> dict[int, CorrelatorList]:
        """Live view of all lists (read-only use)."""
        return self._lists

    def approx_bytes(self) -> int:
        """Footprint of all Correlator Lists."""
        return 64 + sum(104 + lst.approx_bytes() for lst in self._lists.values())
