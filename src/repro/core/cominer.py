"""Stage 3 — Mining & Evaluating: the CoMiner algorithm (paper §3.2).

For a file ``x`` and each graph successor ``y``:

* semantic distance ``sim(x, y)`` via the configured path algorithm
  (Function 1, IPA by default);
* access frequency ``F(x, y) = N_xy / N_x`` with LDA-weighted ``N_xy``;
* correlation degree ``R(x, y) = sim·p + F·(1 − p)`` (Function 2);

entries with ``R > max_strength`` go into (or re-rank within) the file's
Correlator List; weaker ones are filtered out. This mirrors the paper's
Algorithm 1 pseudo-code.

Incremental hot path (the dirty/lazy contract)
----------------------------------------------

The paper's "reasonable overhead" claim (§4, Table 4) needs per-request
mining to be O(small). Two mechanisms make it so:

* **Versioned similarity cache** — ``sim(x, y)`` depends only on the two
  semantic vectors, which change rarely. :meth:`semantic_distance`
  consults a :class:`~repro.core.simcache.SimilarityCache` keyed by the
  pair's vector versions, so Function 1 reruns only when an endpoint's
  vector truly changed (a stale value is never served — version mismatch
  is a miss by construction).

* **Dirty lists, lazy re-rank** — a request for ``x`` changes the
  denominator of every ``F(x, ·)``, so the whole list of ``x`` is stale;
  instead of re-running Algorithm 1 immediately, ``observe`` calls
  :meth:`mark_dirty` and the full re-rank + stale-edge sweep is deferred
  to the first *query* of the list (:meth:`query` / :meth:`flush_all`).
  Reinforced edges (``pred → x`` for predecessors in the window) only
  move one entry, so they are refreshed eagerly via
  :meth:`reevaluate_edge` — exactly the schedule the eager miner runs,
  which keeps lazy and eager query results identical when queries follow
  the triggering request.

* **Change ticks** — the graph stamps every node with a monotonic
  :meth:`~repro.graph.correlation_graph.CorrelationGraph.change_tick`;
  :meth:`reevaluate` records the tick it ranked at, and
  :meth:`flush_nodes` (the batch-``mine`` path) re-ranks exactly the
  touched nodes whose tick moved since they were last ranked.
"""

from __future__ import annotations

from repro.core.config import FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.core.simcache import SimCacheStats, SimilarityCache
from repro.graph.correlator_list import CorrelatorList
from repro.vsm.similarity import similarity

__all__ = ["CoMiner"]


class CoMiner:
    """Evaluates correlation degrees and maintains Correlator Lists."""

    def __init__(
        self,
        config: FarmerConfig,
        constructor: GraphConstructor,
        sim_cache: SimilarityCache | None = None,
    ) -> None:
        self.config = config
        self.constructor = constructor
        # ``sim_cache`` may be injected (a SharedSimilarityCache) so all
        # shards of a sharded deployment reuse each other's Function-1 work
        self.sim_cache = (
            sim_cache if sim_cache is not None else SimilarityCache(config.sim_cache_capacity)
        )
        self.owns_sim_cache = sim_cache is None
        self._lists: dict[int, CorrelatorList] = {}
        self._dirty: set[int] = set()
        self._ranked_tick: dict[int, int] = {}

    # ------------------------------------------------------------------
    # degree evaluation
    # ------------------------------------------------------------------

    def semantic_distance(self, src: int, dst: int) -> float:
        """``sim(src, dst)`` from the stored semantic vectors (0 if unknown).

        Served from the versioned cache when both endpoints' vectors are
        unchanged since the pair was last evaluated.
        """
        constructor = self.constructor
        va = constructor.vector_of(src)
        vb = constructor.vector_of(dst)
        if va is None or vb is None:
            return 0.0
        ver_a = constructor.vector_version(src)
        ver_b = constructor.vector_version(dst)
        cached = self.sim_cache.lookup(src, dst, ver_a, ver_b)
        if cached is not None:
            return cached
        value = similarity(
            va, vb, method=self.config.path_method, path_mode=self.config.path_mode
        )
        self.sim_cache.store(src, dst, ver_a, ver_b, value)
        return value

    def correlation_degree(self, src: int, dst: int) -> float:
        """Function 2: ``R = sim·p + F·(1−p)``."""
        p = self.config.weight_p
        sim = self.semantic_distance(src, dst) if p > 0.0 else 0.0
        freq = self.constructor.graph.frequency(src, dst) if p < 1.0 else 0.0
        return sim * p + freq * (1.0 - p)

    def sim_cache_stats(self) -> SimCacheStats:
        """Similarity-cache counters (misses = Function-1 computations)."""
        return self.sim_cache.stats()

    # ------------------------------------------------------------------
    # list maintenance
    # ------------------------------------------------------------------

    def _list_for(self, fid: int) -> CorrelatorList:
        lst = self._lists.get(fid)
        if lst is None:
            lst = CorrelatorList(
                threshold=self.config.max_strength,
                capacity=self.config.correlator_capacity,
            )
            self._lists[fid] = lst
        return lst

    def reevaluate(self, src: int) -> CorrelatorList:
        """Re-run Algorithm 1 for ``src``: evaluate every graph successor,
        filter by the validity threshold, keep the list sorted. Also the
        stale-edge sweep: entries whose edge the graph has evicted are
        dropped. Clears the dirty flag and records the graph tick ranked
        at."""
        successors = self.constructor.graph.successors(src)
        lst = self._list_for(src)
        # drop list entries whose edge the graph has evicted
        stale = [e.fid for e in lst.entries() if e.fid not in successors]
        for fid in stale:
            lst.discard(fid)
        for dst in successors:
            lst.update(dst, self.correlation_degree(src, dst))
        self._dirty.discard(src)
        self._ranked_tick[src] = self.constructor.graph.change_tick(src)
        return lst

    def reevaluate_edge(self, src: int, dst: int) -> None:
        """Refresh a single (src → dst) entry after an edge reinforcement."""
        self._list_for(src).update(dst, self.correlation_degree(src, dst))

    # ------------------------------------------------------------------
    # dirty/lazy protocol
    # ------------------------------------------------------------------

    def mark_dirty(self, fid: int) -> None:
        """Note that ``fid``'s frequency denominators changed; the full
        re-rank is deferred to the first query of the list."""
        self._dirty.add(fid)

    def is_dirty(self, fid: int) -> bool:
        """Whether ``fid``'s list awaits its deferred re-rank."""
        return fid in self._dirty

    def n_dirty(self) -> int:
        """Number of lists awaiting a deferred re-rank."""
        return len(self._dirty)

    def dirty_nodes(self) -> list[int]:
        """The fids awaiting a deferred re-rank (a snapshot copy)."""
        return list(self._dirty)

    def query(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid``, re-ranked first if dirty.

        This is the entry point the Sorter (and therefore ``correlators``
        / ``predict``) uses; every result it returns reflects a full
        Algorithm-1 pass over the current graph and vector state.
        """
        if fid in self._dirty:
            return self.reevaluate(fid)
        return self._lists.get(fid)

    def flush_all(self) -> None:
        """Re-rank every dirty list (aggregate queries call this first)."""
        while self._dirty:
            self.reevaluate(next(iter(self._dirty)))

    def flush_nodes(self, fids) -> None:
        """Batch-mode flush: re-rank exactly the given nodes, skipping
        any whose graph change tick has not moved since it was last
        ranked (``Farmer.mine`` collects the fids its batch touched and
        defers all list maintenance to one such pass at the end, so
        chunked mining costs O(touched), not O(graph))."""
        graph = self.constructor.graph
        ranked = self._ranked_tick
        for fid in fids:
            if ranked.get(fid, 0) != graph.change_tick(fid):
                self.reevaluate(fid)
            else:
                self._dirty.discard(fid)

    def flush_graph_changes(self) -> None:
        """Full resync: re-rank every node in the graph whose change
        tick moved since it was last ranked. O(graph) — prefer
        :meth:`flush_nodes` when the touched set is known."""
        self.flush_nodes(self.constructor.graph.nodes())
        self._dirty.clear()

    # ------------------------------------------------------------------
    # views & accounting
    # ------------------------------------------------------------------

    def list_of(self, fid: int) -> CorrelatorList | None:
        """The Correlator List of ``fid`` as-is (None if the file has none
        yet; may be awaiting its deferred re-rank — use :meth:`query` for
        the re-ranked view)."""
        return self._lists.get(fid)

    def n_lists(self) -> int:
        """Number of files owning a Correlator List."""
        return len(self._lists)

    def lists(self) -> dict[int, CorrelatorList]:
        """Live view of all lists (read-only use; call :meth:`flush_all`
        first if re-ranked results are required)."""
        return self._lists

    def approx_bytes(self) -> int:
        """Footprint of all Correlator Lists plus the similarity cache
        (only when owned — a shared cache is accounted once by its
        owner) and the dirty/ranked-tick bookkeeping."""
        return (
            64
            + sum(104 + lst.approx_bytes() for lst in self._lists.values())
            + (self.sim_cache.approx_bytes() if self.owns_sim_cache else 0)
            + 56 * len(self._ranked_tick)
            + 32 * len(self._dirty)
        )
