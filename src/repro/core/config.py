"""FARMER configuration (every §3 knob in one validated object)."""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.traces.record import ATTRIBUTE_NAMES

__all__ = ["FarmerConfig", "DEFAULT_ATTRIBUTES", "PATHLESS_ATTRIBUTES"]

# The paper's HP-trace attribute set (Table 5 left) and the INS/RES set
# (Table 5 right: File ID + device stand in for the missing path).
DEFAULT_ATTRIBUTES: tuple[str, ...] = ("user", "process", "host", "path")
PATHLESS_ATTRIBUTES: tuple[str, ...] = ("user", "process", "host", "file", "dev")


@dataclass(frozen=True, slots=True)
class FarmerConfig:
    """All tunables of the FARMER model.

    Attributes:
        weight_p: the Function 2 blend — weight of semantic distance
            (paper default 0.7; p=0 reduces FARMER to Nexus).
        max_strength: validity threshold; correlations with degree at or
            below it are filtered out (paper operating point 0.4).
        window: look-ahead window for successor edges.
        lda_decrement: LDA weight decrement per unit distance (§3.2.2).
        weight_schedule: "lda" or "uniform" (ablation).
        attributes: semantic attributes fed into vectors (Table 5 rows).
        path_method: "ipa" (paper's choice) or "dpa".
        path_mode: directory-similarity mode, "bag" (paper's arithmetic)
            or "prefix".
        sv_policy: how a file's semantic vector tracks its requests —
            "merge" (default: accumulate up to ``merge_cap`` recent
            distinct values per attribute, the VSM document-vector
            reading), "latest" (most recent request only) or "first"
            (§3.2.3 notes attributes are rarely modified). "merge" is
            essential for files shared across users/processes: a shared
            library's vector must overlap with every program that links
            it, not only the last one.
        merge_cap: distinct recent values kept per attribute under the
            "merge" policy.
        successor_capacity: max retained successors per graph node.
        correlator_capacity: max entries per Correlator List.
        prefetch_k: how many correlates the FPA prefetcher requests.
        op_filter: if set, only these operations are mined.
        sim_cache_capacity: max (pair → similarity) entries kept in the
            versioned similarity cache; 0 disables caching (every
            Function-1 evaluation is recomputed, the eager baseline).
        lazy_reevaluation: if True (default), ``observe()`` only marks
            the requested file's Correlator List dirty and refreshes the
            reinforced edges; the full Algorithm-1 re-rank runs on the
            first query of a dirty list. If False, every request re-runs
            Algorithm 1 immediately (the paper's literal per-request
            schedule; used as the equivalence reference in tests).
        rerank_kernel: how the full Algorithm-1 re-rank materialises a
            Correlator List — "bulk" (default: one-pass candidate
            evaluation + a single sort/threshold/capacity cut via
            ``CorrelatorList.rebuild``), "entrywise" (offer every
            successor through ``CorrelatorList.update``, a binary
            insertion each — the reference path the equivalence tests
            compare against), or "array" (batch-vectorized: Function-1
            and Function-2 evaluated with numpy over every candidate of
            every flushed list at once, reading the graph's flat
            successor arrays directly; requires numpy and raises
            ``ConfigError`` without it). All three produce bit-identical
            lists.
        incremental_rerank: if True (default), the re-rank keeps a
            ``(vector-version pair, N_xy, N_x)`` stamp per Correlator
            entry and skips both Function 1 and Function 2 for
            successors whose inputs are unchanged since the last rank —
            the incremental path that only touches the delta. False
            recomputes every degree on every re-rank (the reference
            schedule; results are bit-identical either way). With the
            "bulk" kernel the stamps also enable a whole-list skip:
            when a list's node tick and the vector-store epoch both
            match its last rank, the candidate scan is skipped outright
            (``RerankStats.entries_skipped_unchanged`` still advances).
            The "array" kernel keeps its own per-source rank records
            (similarity rows keyed by vector versions) independent of
            this flag; "entrywise" ignores it.
        vector_freeze_threshold: if > 0, a file's semantic vector is
            frozen (updates ignored, version stops bumping) once it has
            changed this many times — the vector-stability heuristic. A
            merged vector that survived N rewrites has saturated on the
            file's sharing set, and freezing it turns almost every
            Function-1 evaluation into a similarity-cache hit. 0 (the
            default) disables freezing: every request can still reshape
            the vector, the paper's literal reading.
        n_shards: how many independent miner shards a
            :class:`~repro.service.ShardedFarmer` partitions the fid
            namespace across (1 = plain single-miner FARMER).
        shard_policy: namespace partitioning policy for the service
            router — "hash" (fid modulo, matches the HUSt cluster's MDS
            partitioning), "range" (contiguous fid blocks, preserves
            directory locality) or "consistent_hash" (a virtual-node
            hash ring: changing the shard count moves only ~1/n of the
            namespace, which is what makes ``ShardedFarmer.rebalance``
            a minority migration instead of a full re-mine).
        router_virtual_nodes: ring points per shard for the
            "consistent_hash" policy (more points = smoother load
            spread, larger routing table; ignored by other policies).
        router_seed: deterministic seed for consistent-hash ring
            placement. The ring hashes with a seeded SplitMix64 mix, so
            two processes (or a remote client) reconstructing the
            router from config route identically regardless of
            ``PYTHONHASHSEED``.
        echo_flush_interval: boundary-echo delivery schedule. Echoes
            are always accumulated in per-destination-shard queues
            rather than delivered synchronously with the triggering
            request. 0 (default) drains a shard's queue just in time —
            before the shard's next owned observation and before any
            query routed to it — which is bit-for-bit equivalent to
            the synchronous schedule (property-tested). A positive
            value drains every ``echo_flush_interval`` accepted
            requests instead (plus at every batch-``mine`` ingest
            barrier and before queries), trading echo-edge window
            fidelity for batching: an echo processed late attaches to
            the destination shard's *current* window, so echoed-edge
            LDA distances become approximate. Only meaningful under
            ``lazy_reevaluation``; the eager schedule always delivers
            echoes synchronously (it is the paper-literal reference).
        echo_idle_drain: live drain trigger for idle shards. A
            destination shard's echo queue normally waits for the
            shard's next owned request or query (just-in-time mode) or
            for the next interval expiry (batched mode) — an *idle*
            shard's queue can therefore sit undelivered indefinitely.
            With ``echo_idle_drain=G > 0``, a shard whose queue is
            non-empty and which has seen no activity (owned observation
            or drain) for G accepted requests elsewhere has its queue
            drained proactively. 0 (default) disables the trigger.
            Under ``echo_flush_interval=0`` the early drain is
            bit-identical to just-in-time delivery (nothing can have
            landed on the idle destination in between); under a
            positive interval it is one more drain point of the
            already-approximate batched schedule.
        replication: if True, a :class:`~repro.service.ShardedFarmer`
            keeps one warm standby per primary shard
            (:mod:`repro.service.replication`), synced through the
            shard-migration seam every ``standby_sync_interval``
            accepted requests. ``fail_shard(i)`` / ``promote_standby(i)``
            then make shard failover a first-class operation: the
            promoted standby serves exactly what the failed primary
            served at the last sync barrier. False (default) keeps the
            service unreplicated (no standby memory, no sync work).
        standby_sync_interval: accepted requests between standby sync
            barriers (only meaningful with ``replication=True``). At a
            barrier every primary's changed graph nodes and
            freshly-ranked Correlator Lists are copied to its standby;
            a smaller interval narrows the failover loss window at the
            cost of more sync work.
        shared_sim_cache: if True (default), all shards of a
            ``ShardedFarmer`` share one thread-safe versioned similarity
            cache (safe because shards also share the vector store, so
            version keys are namespace-global); if False each shard
            keeps a private cache (strict shard independence).
        cross_shard_edges: if True (default), a request whose immediate
            predecessor in the service-level stream lives on a different
            shard (a *boundary request*) is observed by both owner
            shards, so adjacent inter-shard correlations are mined
            instead of silently dropped. False gives strict partition
            isolation: each shard sees exactly its own substream.
    """

    weight_p: float = 0.7
    max_strength: float = 0.4
    window: int = 4
    lda_decrement: float = 0.1
    weight_schedule: str = "lda"
    attributes: tuple[str, ...] = DEFAULT_ATTRIBUTES
    path_method: str = "ipa"
    path_mode: str = "bag"
    sv_policy: str = "merge"
    merge_cap: int = 6
    successor_capacity: int = 32
    correlator_capacity: int = 16
    prefetch_k: int = 4
    op_filter: tuple[str, ...] | None = None
    sim_cache_capacity: int = 65536
    lazy_reevaluation: bool = True
    rerank_kernel: str = "bulk"
    incremental_rerank: bool = True
    vector_freeze_threshold: int = 0
    n_shards: int = 1
    shard_policy: str = "hash"
    router_virtual_nodes: int = 64
    router_seed: int = 0
    echo_flush_interval: int = 0
    echo_idle_drain: int = 0
    replication: bool = False
    standby_sync_interval: int = 1024
    shared_sim_cache: bool = True
    cross_shard_edges: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight_p <= 1.0:
            raise ConfigError("weight_p must be in [0, 1]")
        if not 0.0 <= self.max_strength <= 1.0:
            raise ConfigError("max_strength must be in [0, 1]")
        if self.window < 1:
            raise ConfigError("window must be >= 1")
        if not 0.0 <= self.lda_decrement <= 1.0:
            raise ConfigError("lda_decrement must be in [0, 1]")
        if self.weight_schedule not in ("lda", "uniform"):
            raise ConfigError(f"unknown weight schedule {self.weight_schedule!r}")
        if not self.attributes:
            raise ConfigError("at least one semantic attribute is required")
        for attr in self.attributes:
            if attr not in ATTRIBUTE_NAMES:
                raise ConfigError(
                    f"unknown attribute {attr!r}; valid: {ATTRIBUTE_NAMES}"
                )
        if self.path_method not in ("ipa", "dpa"):
            raise ConfigError(f"unknown path method {self.path_method!r}")
        if self.path_mode not in ("bag", "prefix"):
            raise ConfigError(f"unknown path mode {self.path_mode!r}")
        if self.sv_policy not in ("merge", "latest", "first"):
            raise ConfigError(f"unknown sv policy {self.sv_policy!r}")
        if self.merge_cap < 1:
            raise ConfigError("merge_cap must be >= 1")
        if self.successor_capacity < 1:
            raise ConfigError("successor_capacity must be >= 1")
        if self.correlator_capacity < 1:
            raise ConfigError("correlator_capacity must be >= 1")
        if self.prefetch_k < 0:
            raise ConfigError("prefetch_k must be >= 0")
        if self.sim_cache_capacity < 0:
            raise ConfigError("sim_cache_capacity must be >= 0")
        if self.rerank_kernel not in ("bulk", "entrywise", "array"):
            raise ConfigError(f"unknown rerank kernel {self.rerank_kernel!r}")
        if (
            self.rerank_kernel == "array"
            and importlib.util.find_spec("numpy") is None
        ):
            raise ConfigError(
                "rerank_kernel='array' requires numpy, which is not "
                "installed; use the pure-python 'bulk' kernel instead"
            )
        if self.vector_freeze_threshold < 0:
            raise ConfigError("vector_freeze_threshold must be >= 0")
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if self.shard_policy not in ("hash", "range", "consistent_hash"):
            raise ConfigError(f"unknown shard policy {self.shard_policy!r}")
        if self.router_virtual_nodes < 1:
            raise ConfigError("router_virtual_nodes must be >= 1")
        if self.echo_flush_interval < 0:
            raise ConfigError("echo_flush_interval must be >= 0")
        if self.echo_idle_drain < 0:
            raise ConfigError("echo_idle_drain must be >= 0")
        if self.standby_sync_interval < 1:
            raise ConfigError("standby_sync_interval must be >= 1")

    def with_(self, **changes) -> "FarmerConfig":
        """Functional update (re-validates)."""
        return replace(self, **changes)

    def as_nexus(self) -> "FarmerConfig":
        """The paper's reduction: p=0 and no semantic filtering ≙ Nexus."""
        return self.with_(weight_p=0.0, max_strength=0.0)
