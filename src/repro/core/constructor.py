"""Stage 2 — Constructing: maintain the correlation graph and the
per-file semantic vectors.

The constructor feeds accesses into the sliding-window
:class:`~repro.graph.correlation_graph.CorrelationGraph` and delegates
semantic-vector maintenance to the policy-driven
:class:`~repro.core.vector_store.VectorStore`.
"""

from __future__ import annotations

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.vector_store import VectorStore
from repro.graph.correlation_graph import CorrelationGraph
from repro.graph.lda import weight_schedule
from repro.traces.record import TraceRecord
from repro.vsm.vector import SemanticVector

__all__ = ["GraphConstructor"]


class GraphConstructor:
    """Owns the graph and the semantic-vector store."""

    def __init__(
        self,
        config: FarmerConfig,
        extractor: Extractor,
        vectors: VectorStore | None = None,
    ) -> None:
        self.config = config
        self.extractor = extractor
        self.graph = CorrelationGraph(
            window=config.window,
            decrement=config.lda_decrement,
            successor_capacity=config.successor_capacity,
            weight_fn=weight_schedule(config.weight_schedule),
        )
        # ``vectors`` may be injected so miner shards can share one
        # namespace-global store (what keys the shared similarity cache)
        self.vectors = vectors if vectors is not None else VectorStore(config, extractor)
        self.owns_vectors = vectors is None

    def observe(self, record: TraceRecord) -> tuple[int, list[int]]:
        """Feed one request.

        Returns ``(fid, touched_predecessors)`` — the predecessors whose
        edge toward ``fid`` was just reinforced; the miner re-evaluates
        exactly those plus the requested file itself.
        """
        fid = record.fid
        self.vectors.update(record)
        touched = self.graph.observe(fid)
        return fid, touched

    def observe_graph(self, record: TraceRecord) -> tuple[int, list[int]]:
        """Feed one request into the graph only, skipping the vector
        update — the boundary-echo path, where the record's owner shard
        has already folded it into the shared vector store."""
        fid = record.fid
        touched = self.graph.observe(fid)
        return fid, touched

    def vector_of(self, fid: int) -> SemanticVector | None:
        """Semantic vector currently representing ``fid`` (None if unseen)."""
        return self.vectors.get(fid)

    def vector_version(self, fid: int) -> int:
        """Version of ``fid``'s vector (0 if unseen; bumps on real change)."""
        return self.vectors.version_of(fid)

    def n_vectors(self) -> int:
        """Number of files with a stored vector."""
        return len(self.vectors)

    def approx_bytes(self) -> int:
        """Graph + vector-store footprint (the store only when owned —
        a shared store is accounted once by its owner)."""
        bytes_ = self.graph.approx_bytes()
        if self.owns_vectors:
            bytes_ += self.vectors.approx_bytes()
        return bytes_
