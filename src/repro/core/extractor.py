"""Stage 1 — Extracting: request → semantic vector.

The extractor pulls the configured semantic attributes off each trace
record and interns them into a :class:`~repro.vsm.vector.SemanticVector`.
It is the only component that looks at raw attribute values; everything
downstream sees interned ids. Absent attributes (e.g. ``path`` on an
INS/RES record) are skipped, mirroring the paper's observation that
path-less traces simply expose less semantic signal.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.traces.record import TraceRecord, attribute_value
from repro.vsm.path import tokenize_path
from repro.vsm.vector import SemanticVector
from repro.vsm.vocabulary import Vocabulary

__all__ = ["Extractor"]


class Extractor:
    """Builds semantic vectors for trace records.

    The extractor owns (or shares) a :class:`Vocabulary`; two extractors
    sharing one vocabulary produce comparable vectors.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        vocabulary: Vocabulary | None = None,
    ) -> None:
        self.attributes = tuple(attributes)
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._wants_path = "path" in self.attributes
        self._scalar_attrs = tuple(a for a in self.attributes if a != "path")

    def extract(self, record: TraceRecord) -> SemanticVector:
        """Semantic vector of one request."""
        vocab = self.vocabulary
        scalars = []
        for attr in self._scalar_attrs:
            value = attribute_value(record, attr)
            if value is None:
                continue
            scalars.append(vocab.scalar_token(attr, value))
        path_ids: tuple[int, ...] | None = None
        if self._wants_path and record.path is not None:
            path_ids = vocab.path_components(tokenize_path(record.path))
        return SemanticVector(scalar_ids=tuple(sorted(scalars)), path_ids=path_ids)

    def approx_bytes(self) -> int:
        """Vocabulary footprint (the extractor itself is tiny)."""
        return self.vocabulary.approx_bytes()
