"""The FARMER façade: the four-stage pipeline behind one object.

Typical use::

    from repro import Farmer, FarmerConfig, generate_trace

    farmer = Farmer(FarmerConfig(weight_p=0.7, max_strength=0.4))
    farmer.mine(generate_trace("hp", 20_000, seed=1))
    for entry in farmer.correlators(fid):
        print(entry.fid, entry.degree)

``observe`` is the online entry point (one request at a time — this is
what the metadata-server simulator drives); ``mine`` is the batch
convenience. ``predict`` returns the prefetch candidates the paper's FPA
issues: the head of the (already threshold-filtered) Correlator List.

Lazy mining contract (``FarmerConfig.lazy_reevaluation``, default on)
---------------------------------------------------------------------

``observe`` does only the O(window) work a request strictly requires:
it updates the graph and vectors, eagerly refreshes the entries for the
just-reinforced predecessor edges, and *marks the requested file's
Correlator List dirty* instead of re-running Algorithm 1. The full
re-rank + stale-edge sweep happens on the first query of a dirty list
(``correlators`` / ``predict`` / ``snapshot`` / ``sorter``), backed by a
versioned similarity cache so Function 1 only reruns for pairs whose
vectors actually changed. Query results therefore always reflect a full
Algorithm-1 pass; when queries follow the triggering request (the FPA
pattern) they are bit-identical to the eager schedule, and between a
request and the next query of some *other* file the lazy path serves
strictly fresher degrees than eager would.

``mine`` goes further: during the batch no list maintenance runs at all;
one tick-driven flush at the end re-ranks exactly the files the batch
touched. Note the scope of the equivalence guarantee: batch-mined lists
are ranked against the *end-of-batch* graph and vector state, whereas
the eager schedule freezes each list at the file's last request — so
after ``mine`` the two can legitimately differ (the lazy result is the
fresher of the two). With ``lazy_reevaluation=False`` both entry points
fall back to the paper's literal schedule (Algorithm 1 on every
request).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.cominer import CoMiner, RerankStats
from repro.core.config import FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.core.extractor import Extractor
from repro.core.simcache import SimCacheStats, SimilarityCache
from repro.core.sorter import CorrelationSnapshot, Sorter
from repro.core.vector_store import VectorStore
from repro.graph.correlator_list import CorrelatorEntry
from repro.traces.record import TraceRecord
from repro.vsm.vocabulary import Vocabulary

__all__ = ["Farmer", "FarmerStats"]


@dataclass(frozen=True, slots=True)
class FarmerStats:
    """Size/footprint summary of a FARMER instance."""

    n_observed: int
    n_files: int
    n_edges: int
    n_lists: int
    n_entries: int
    vocabulary_size: int
    memory_bytes: int
    sim_cache: SimCacheStats
    rerank: RerankStats

    @property
    def memory_megabytes(self) -> float:
        """Footprint in MB (10^6 bytes, as Table 4 reports)."""
        return self.memory_bytes / 1e6


class Farmer:
    """File Access coRrelation Mining and Evaluation Reference model.

    The keyword-only parameters inject components that a
    :class:`~repro.service.ShardedFarmer` shares across its shards (one
    vocabulary, one namespace-global vector store, one versioned
    similarity cache); a stand-alone Farmer owns private instances and
    behaves exactly as before.
    """

    def __init__(
        self,
        config: FarmerConfig | None = None,
        *,
        vocabulary: Vocabulary | None = None,
        vector_store: VectorStore | None = None,
        sim_cache: SimilarityCache | None = None,
    ) -> None:
        self.config = config if config is not None else FarmerConfig()
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self.owns_vocabulary = vocabulary is None
        self.extractor = Extractor(self.config.attributes, self.vocabulary)
        self.constructor = GraphConstructor(
            self.config, self.extractor, vectors=vector_store
        )
        self.miner = CoMiner(self.config, self.constructor, sim_cache=sim_cache)
        self.sorter = Sorter(self.miner)
        self._n_observed = 0

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Feed one request through all four stages."""
        if (
            self.config.op_filter is not None
            and record.op not in self.config.op_filter
        ):
            return
        fid, touched = self.constructor.observe(record)
        # the freshly-reinforced incoming edges…
        for pred in touched:
            self.miner.reevaluate_edge(pred, fid)
        if self.config.lazy_reevaluation:
            # …Algorithm 1 over the requested file's own successors is
            # deferred to the first query of the (now dirty) list.
            self.miner.mark_dirty(fid)
        else:
            # …and Algorithm 1 over the requested file's own successors.
            self.miner.reevaluate(fid)
        self._n_observed += 1

    def observe_echo(self, record: TraceRecord) -> None:
        """Observe a boundary request echoed from another shard.

        Two costs of :meth:`observe` are shed. The vector update is
        skipped outright — the record's owner shard has already folded
        it into the shared vector store this Farmer was constructed
        with. And under lazy re-evaluation the reinforced predecessor
        lists are only marked dirty rather than eagerly refreshed: the
        eager refresh exists to match the eager schedule bit-for-bit,
        but echoed edges have no single-miner counterpart to match, and
        the predecessors' next query re-ranks their whole list anyway.
        """
        if (
            self.config.op_filter is not None
            and record.op not in self.config.op_filter
        ):
            return
        fid, touched = self.constructor.observe_graph(record)
        if self.config.lazy_reevaluation:
            for pred in touched:
                self.miner.mark_dirty(pred)
            self.miner.mark_dirty(fid)
        else:
            for pred in touched:
                self.miner.reevaluate_edge(pred, fid)
            self.miner.reevaluate(fid)
        self._n_observed += 1

    def mine(self, records: Iterable[TraceRecord]) -> "Farmer":
        """Batch-mine a trace; returns self for chaining.

        Under lazy re-evaluation this is the fast path: list maintenance
        is deferred entirely during the batch and a single tick-driven
        flush at the end re-ranks every file whose graph state changed.
        """
        if not self.config.lazy_reevaluation:
            for record in records:
                self.observe(record)
            return self
        self.miner.flush_nodes(sorted(self.ingest(records)))
        return self

    def ingest(self, records: Iterable[TraceRecord]) -> set[int]:
        """The ingest half of :meth:`mine` (echo-free streams): feed
        graph and vectors only, deferring every flush; returns the
        touched fids.

        Runs as two batch passes — all vector folds, then all graph
        observations — which is equivalent to the interleaved per-record
        order (the two stores share no state), and lets each store use
        its hoisted batch path (:meth:`VectorStore.update_batch` defers
        merged-vector builds; :meth:`CorrelationGraph.observe_batch`
        walks the window over the batch list itself).
        """
        op_filter = self.config.op_filter
        if op_filter is None:
            if not isinstance(records, list):
                records = list(records)
        else:
            records = [r for r in records if r.op in op_filter]
        constructor = self.constructor
        constructor.vectors.update_batch(records)
        changed = constructor.graph.observe_batch([r.fid for r in records])
        self._n_observed += len(records)
        return changed

    def mine_mixed(
        self, records: Iterable[tuple[TraceRecord, bool]]
    ) -> "Farmer":
        """Batch-mine a substream of ``(record, is_echo)`` pairs — the
        sharded service's per-shard batch path. Echo records run the
        graph-only schedule of :meth:`observe_echo` (their owner shard
        maintains the shared vector store; re-updating here would
        perturb its merge-recency and, under the "latest" policy, let
        substream processing order override global record order).
        """
        if not self.config.lazy_reevaluation:
            for record, is_echo in records:
                if is_echo:
                    self.observe_echo(record)
                else:
                    self.observe(record)
            return self
        self.miner.flush_nodes(sorted(self.ingest_mixed(records)))
        return self

    def ingest_mixed(
        self, records: Iterable[tuple[TraceRecord, bool]]
    ) -> set[int]:
        """The ingest half of :meth:`mine_mixed`: feed graph and vectors
        only, deferring every flush; returns the touched fids. The
        sharded service ingests *all* shards' substreams before flushing
        any of them, so cross-shard Correlator entries rank against the
        fully-updated shared vector store rather than whichever prefix
        happened to be ingested first.

        Echoes skip the vector pass, so splitting into one vector batch
        (owned records, stream order) and one graph batch (all records,
        stream order) preserves per-record semantics exactly."""
        op_filter = self.config.op_filter
        pairs = [
            (r, e)
            for r, e in records
            if op_filter is None or r.op in op_filter
        ]
        constructor = self.constructor
        constructor.vectors.update_batch([r for r, e in pairs if not e])
        changed = constructor.graph.observe_batch([r.fid for r, _ in pairs])
        self._n_observed += len(pairs)
        return changed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n_observed(self) -> int:
        """Requests this miner accepted (cheap; ``stats()`` aggregates)."""
        return self._n_observed

    def correlators(self, fid: int) -> list[CorrelatorEntry]:
        """Valid correlates of ``fid``, strongest first."""
        return self.sorter.correlators(fid)

    def predict(self, fid: int, k: int | None = None) -> list[int]:
        """Prefetch candidates for a request of ``fid`` (FPA's query)."""
        if k is None:
            k = self.config.prefetch_k
        return [e.fid for e in self.sorter.top(fid, k)]

    def correlation_degree(self, src: int, dst: int) -> float:
        """Current ``R(src, dst)`` (Function 2), 0.0 for unseen pairs."""
        return self.miner.correlation_degree(src, dst)

    def semantic_distance(self, src: int, dst: int) -> float:
        """Current ``sim(src, dst)`` (Function 1), 0.0 for unseen files."""
        return self.miner.semantic_distance(src, dst)

    def access_frequency(self, src: int, dst: int) -> float:
        """Current ``F(src, dst)``, 0.0 for unseen pairs."""
        return self.constructor.graph.frequency(src, dst)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def snapshot(self) -> CorrelationSnapshot:
        """Aggregate Correlator-List statistics."""
        return self.sorter.snapshot()

    def memory_bytes(self) -> int:
        """FARMER's additional footprint: vocabulary + graph + vectors +
        Correlator Lists (the quantity Table 4 reports). Injected shared
        components are accounted by their owner, not here."""
        return (
            (self.vocabulary.approx_bytes() if self.owns_vocabulary else 0)
            + self.constructor.approx_bytes()
            + self.miner.approx_bytes()
        )

    def sim_cache_stats(self) -> SimCacheStats:
        """Similarity-cache counters (hit rate, Function-1 recomputes).

        The supported surface for benchmarks and experiments — no need
        to reach into ``miner.sim_cache`` internals. Note that under a
        shared cache these counters aggregate every sharing shard.
        """
        return self.miner.sim_cache_stats()

    def rerank_stats(self) -> RerankStats:
        """Re-rank op counters (re-evaluations, entries scanned/skipped,
        insort ops) — the supported surface for op-count assertions."""
        return self.miner.rerank_stats()

    def stats(self) -> FarmerStats:
        """Full size/footprint summary."""
        snap = self.snapshot()
        return FarmerStats(
            n_observed=self._n_observed,
            n_files=self.constructor.graph.n_nodes(),
            n_edges=self.constructor.graph.n_edges(),
            n_lists=snap.n_lists,
            n_entries=snap.n_entries,
            vocabulary_size=len(self.vocabulary),
            memory_bytes=self.memory_bytes(),
            sim_cache=self.sim_cache_stats(),
            rerank=self.rerank_stats(),
        )
