"""Versioned similarity cache for the CoMiner hot path.

Function 1 (``sim(x, y)``) is a pure function of the two files' semantic
vectors, and vectors only change when a file's attributes change — yet the
eager miner recomputes it for every graph successor on every request. The
cache stores each pair's similarity together with the *vector versions*
it was computed from (see :meth:`repro.core.vector_store.VectorStore.
version_of`); a lookup hits only when both endpoints' versions still
match, so a stale value is never served, without any explicit
invalidation traffic.

``sim`` is symmetric, so entries are keyed on the unordered pair.
Capacity is bounded with LRU eviction; :class:`SimCacheStats` exposes
hits/misses/stale/evictions so benchmarks can report the hit rate.
A capacity of 0 disables caching entirely (every lookup is a miss and
nothing is stored) — useful as the eager baseline in benchmarks.

:class:`SharedSimilarityCache` is the multi-shard variant: one instance
serves every shard of a :class:`~repro.service.ShardedFarmer` behind a
lock. Version keys make the sharing safe — the service keeps a single
namespace-global :class:`~repro.core.vector_store.VectorStore`, so a
``(pair, versions)`` entry stored by one shard is exact for every other
shard, and a shard whose endpoint moved on simply misses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["SimilarityCache", "SharedSimilarityCache", "SimCacheStats"]


@dataclass(frozen=True, slots=True)
class SimCacheStats:
    """Counters of one :class:`SimilarityCache` (since construction)."""

    hits: int
    misses: int
    stale: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class SimilarityCache:
    """Bounded LRU cache of ``sim(x, y)`` keyed by vector versions.

    A miss is counted whenever the caller must recompute Function 1 —
    either the pair is absent, or it is present but one endpoint's vector
    version moved on (counted separately as ``stale``, and also a miss).
    """

    __slots__ = ("capacity", "_entries", "_hits", "_misses", "_stale", "_evictions")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 0:
            raise ConfigError("similarity cache capacity must be >= 0")
        self.capacity = capacity
        # (lo, hi) fid pair -> (lo_version, hi_version, sim value); a
        # plain insertion-ordered dict doubles as the LRU queue (refresh
        # = delete + reinsert), measurably cheaper than OrderedDict on
        # the store-heavy batch-flush path
        self._entries: dict[tuple[int, int], tuple[int, int, float]] = {}
        self._hits = 0
        self._misses = 0
        self._stale = 0
        self._evictions = 0

    def lookup(self, a: int, b: int, ver_a: int, ver_b: int) -> float | None:
        """Cached ``sim(a, b)`` if computed from exactly these versions."""
        if a > b:
            a, b = b, a
            ver_a, ver_b = ver_b, ver_a
        key = (a, b)
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        if entry[0] != ver_a or entry[1] != ver_b:
            self._misses += 1
            self._stale += 1
            return None
        self._hits += 1
        del self._entries[key]  # LRU refresh: move to the young end
        self._entries[key] = entry
        return entry[2]

    def store(self, a: int, b: int, ver_a: int, ver_b: int, value: float) -> None:
        """Record ``sim(a, b)`` as computed from the given versions."""
        if self.capacity == 0:
            return
        if a > b:
            a, b = b, a
            ver_a, ver_b = ver_b, ver_a
        key = (a, b)
        entries = self._entries
        if key in entries:
            del entries[key]  # reinsert at the young end
            entries[key] = (ver_a, ver_b, value)
            return
        entries[key] = (ver_a, ver_b, value)
        if len(entries) > self.capacity:
            entries.pop(next(iter(entries)))
            self._evictions += 1

    def stats(self) -> SimCacheStats:
        """Snapshot of the counters."""
        return SimCacheStats(
            hits=self._hits,
            misses=self._misses,
            stale=self._stale,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def approx_bytes(self) -> int:
        """Approximate resident size (key tuple + value tuple per entry)."""
        return 96 + 160 * len(self._entries)


class SharedSimilarityCache(SimilarityCache):
    """A :class:`SimilarityCache` safe to share across miner shards.

    Every public operation takes an internal lock, so concurrent shards
    (threads today; the seam for multi-process shards tomorrow) can
    lookup/store without corrupting the LRU order or the counters. The
    single-shard hot path stays on the unlocked base class.
    """

    __slots__ = ("_lock",)

    def __init__(self, capacity: int = 65536) -> None:
        super().__init__(capacity)
        self._lock = threading.Lock()

    def lookup(self, a: int, b: int, ver_a: int, ver_b: int) -> float | None:
        with self._lock:
            return super().lookup(a, b, ver_a, ver_b)

    def store(self, a: int, b: int, ver_a: int, ver_b: int, value: float) -> None:
        with self._lock:
            super().store(a, b, ver_a, ver_b, value)

    def stats(self) -> SimCacheStats:
        with self._lock:
            return super().stats()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def approx_bytes(self) -> int:
        with self._lock:
            return super().approx_bytes()

    def __getstate__(self):
        # snapshot for the process-backend runner: entries and counters
        # travel, the lock is recreated on unpickle
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": dict(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "stale": self._stale,
                "evictions": self._evictions,
            }

    def __setstate__(self, state) -> None:
        self.capacity = state["capacity"]
        self._entries = dict(state["entries"])
        self._hits = state["hits"]
        self._misses = state["misses"]
        self._stale = state["stale"]
        self._evictions = state["evictions"]
        self._lock = threading.Lock()
