"""Stage 4 — Sorting: ordered access to the mined correlations.

The Correlator Lists are kept sorted incrementally by
:class:`~repro.graph.correlator_list.CorrelatorList`; this stage exposes
the sorted views plus aggregate statistics (used by Table 4's memory
accounting and by the examples). It exists as its own component to keep
the stage structure of the paper's Figure 2 recognisable in the code.

Under lazy re-evaluation the Sorter is also the flush point: per-file
views go through :meth:`CoMiner.query` (re-ranking the list if dirty)
and aggregate views flush every dirty list first, so callers always see
fully re-ranked results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cominer import CoMiner
from repro.graph.correlator_list import CorrelatorEntry

__all__ = ["Sorter", "CorrelationSnapshot"]


@dataclass(frozen=True, slots=True)
class CorrelationSnapshot:
    """Aggregate statistics over all Correlator Lists."""

    n_lists: int
    n_entries: int
    mean_length: float
    max_length: int
    mean_top_degree: float


class Sorter:
    """Sorted-view layer over the miner's Correlator Lists."""

    def __init__(self, miner: CoMiner) -> None:
        self._miner = miner

    def correlators(self, fid: int) -> list[CorrelatorEntry]:
        """All valid correlates of ``fid``, strongest first."""
        lst = self._miner.query(fid)
        return lst.entries() if lst is not None else []

    def top(self, fid: int, k: int) -> list[CorrelatorEntry]:
        """The ``k`` strongest correlates of ``fid``."""
        lst = self._miner.query(fid)
        return lst.top(k) if lst is not None else []

    def strongest_pairs(self, n: int = 10) -> list[tuple[int, CorrelatorEntry]]:
        """The globally strongest (file, correlate) pairs (reporting)."""
        self._miner.flush_all()
        pairs: list[tuple[int, CorrelatorEntry]] = []
        for fid, lst in self._miner.lists().items():
            head = lst.top(1)
            if head:
                pairs.append((fid, head[0]))
        pairs.sort(key=lambda item: -item[1].degree)
        return pairs[:n]

    def snapshot(self) -> CorrelationSnapshot:
        """Aggregate statistics of the current mining state.

        Lists are folded in fid order so the float means are a pure
        function of the list contents, not of dict insertion history —
        this keeps a sharded service's owned-list snapshot comparable
        bit-for-bit across shard layouts (see ``ShardedFarmer.snapshot``
        and ``rebalance``).
        """
        self._miner.flush_all()
        table = self._miner.lists()
        lists = [table[fid] for fid in sorted(table) if len(table[fid]) > 0]
        if not lists:
            return CorrelationSnapshot(0, 0, 0.0, 0, 0.0)
        lengths = [len(lst) for lst in lists]
        tops = [lst.top(1)[0].degree for lst in lists]
        return CorrelationSnapshot(
            n_lists=len(lists),
            n_entries=sum(lengths),
            mean_length=sum(lengths) / len(lists),
            max_length=max(lengths),
            mean_top_degree=sum(tops) / len(tops),
        )
