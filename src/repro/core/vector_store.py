"""Per-file semantic-vector maintenance policies.

A file's semantic vector must summarise *who touches it*. Three policies:

* ``latest`` — snapshot of the most recent request. Cheap, but on files
  shared across users/processes (libraries, course material, parallel
  shared inputs) the snapshot thrashes: the vector only ever matches the
  last requester's context.
* ``first`` — frozen at the first request (the paper's "attributes are
  rarely modified" reading).
* ``merge`` — the VSM document-vector reading and our default: keep up to
  ``merge_cap`` recent *distinct* values per attribute, so a shared
  library's vector overlaps every program currently linking it while a
  private file's vector stays a single context. The cap bounds memory and
  ages out stale contexts LRU-style.

Every file's vector carries a monotonically increasing *version*, bumped
only when an update actually changes the vector. Versions are what the
similarity cache keys its entries on: as long as both endpoints' versions
are unchanged, a cached ``sim(x, y)`` is exact and need not be recomputed.

Vector-stability heuristic (``FarmerConfig.vector_freeze_threshold``)
---------------------------------------------------------------------

Under the "merge" policy a hot shared file's vector is rewritten dozens
of times early in a trace while its sharing set is still being
discovered, and every rewrite invalidates all of the file's cached
similarities. Once a vector has survived ``vector_freeze_threshold``
rewrites it has effectively saturated — the distinct users/processes/
hosts that touch the file have been seen — so further updates are
dropped and the version stops bumping, which turns the similarity cache
from ~6% to >80% hit rate on the synthetic HP trace. The threshold is
off (0) by default: freezing trades a little adaptivity (a file whose
sharing set genuinely changes late keeps its saturated vector) for a
large reduction in Function-1 recomputation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.traces.record import TraceRecord, attribute_getter
from repro.vsm.path import tokenize_path
from repro.vsm.vector import SemanticVector

__all__ = ["VectorStore", "ThreadSafeVectorStore"]


class _MergeState:
    """Recent distinct values per attribute for one file (LRU per attr).

    Buckets map raw value → interned token id, so rebuilding the merged
    vector never re-interns: the ids were resolved when the value
    entered the bucket; ``path_ids`` caches the interned components of
    ``path`` for the same reason.
    """

    __slots__ = ("values", "path", "path_ids")

    def __init__(self) -> None:
        self.values: dict[str, OrderedDict] = {}
        self.path: str | None = None
        self.path_ids: tuple[int, ...] | None = None


class VectorStore:
    """fid → semantic vector, maintained under the configured policy."""

    def __init__(self, config: FarmerConfig, extractor: Extractor) -> None:
        self.config = config
        self.extractor = extractor
        self._vectors: dict[int, SemanticVector] = {}
        self._versions: dict[int, int] = {}
        self._epoch = 0
        self._merge: dict[int, _MergeState] = {}
        # path string -> interned component ids; paths repeat across the
        # namespace, so tokenisation+interning is paid once per path
        self._path_ids: dict[str, tuple[int, ...]] = {}
        self._scalar_attrs = tuple(a for a in config.attributes if a != "path")
        self._wants_path = "path" in config.attributes
        # per-record hot-path constants, resolved once
        self._getters = tuple(
            (attr, attribute_getter(attr)) for attr in self._scalar_attrs
        )
        self._policy = config.sv_policy
        self._merge_cap = config.merge_cap
        self._freeze_threshold = config.vector_freeze_threshold

    def _store(self, fid: int, vector: SemanticVector) -> None:
        """Install a vector, bumping the version only on a real change."""
        if self._vectors.get(fid) != vector:
            self._vectors[fid] = vector
            self._versions[fid] = self._versions.get(fid, 0) + 1
            self._epoch += 1

    def _store_changed(self, fid: int, vector: SemanticVector) -> None:
        """Install a vector the caller knows differs from the stored one
        (merge-state change implies a different id set, so the equality
        probe of :meth:`_store` would always say "changed")."""
        self._vectors[fid] = vector
        self._versions[fid] = self._versions.get(fid, 0) + 1
        self._epoch += 1

    def is_frozen(self, fid: int) -> bool:
        """Whether ``fid``'s vector has saturated and no longer updates."""
        threshold = self.config.vector_freeze_threshold
        return threshold > 0 and self._versions.get(fid, 0) >= threshold

    def update(self, record: TraceRecord) -> None:
        """Fold one request into the file's vector."""
        fid = record.fid
        threshold = self._freeze_threshold
        if threshold > 0 and self._versions.get(fid, 0) >= threshold:
            return
        policy = self._policy
        if policy == "first":
            if fid not in self._vectors:
                self._store(fid, self.extractor.extract(record))
            return
        if policy == "latest":
            self._store(fid, self.extractor.extract(record))
            return
        # merge policy
        state = self._merge.get(fid)
        if state is None:
            state = _MergeState()
            self._merge[fid] = state
        cap = self._merge_cap
        vocab = self.extractor.vocabulary
        values = state.values
        changed = False
        for attr, getter in self._getters:
            value = getter(record)
            if value is None:
                continue
            bucket = values.get(attr)
            if bucket is None:
                bucket = OrderedDict()
                values[attr] = bucket
            if value in bucket:
                # recency refresh only — the merged vector is built from
                # the bucket's key *set*, so no rebuild is needed
                bucket.move_to_end(value)
            else:
                changed = True
                bucket[value] = vocab.scalar_token(attr, value)
                if len(bucket) > cap:
                    bucket.popitem(last=False)
        path_changed = False
        if self._wants_path and record.path is not None and record.path != state.path:
            state.path = record.path
            state.path_ids = self._resolve_path_ids(record.path)
            path_changed = True
        # fast path: a request that repeats an already-known context
        # leaves every bucket's key set and the path untouched, so the
        # merged vector is bit-identical — skip the rebuild entirely
        # (the common case once a file's sharing set has been seen).
        if changed and not path_changed and fid in self._vectors:
            # a bucket gained an id it lacked (ids are attr-namespaced and
            # unique), so the new vector provably differs — no eq probe
            self._store_changed(fid, self._build_merged(state))
        elif changed or path_changed or fid not in self._vectors:
            # a changed path *string* can still tokenise to the same ids,
            # so this path keeps the equality probe
            self._store(fid, self._build_merged(state))

    def update_batch(self, records) -> None:
        """Fold a whole batch of requests, deferring merged-vector builds.

        Semantically identical to calling :meth:`update` per record —
        same final vectors, same per-file *version trajectory* (the
        freeze threshold and the similarity cache key on versions, so
        the trajectory is part of the contract) — but under the "merge"
        policy the actual :class:`~repro.vsm.vector.SemanticVector`
        construction is deferred: a version bump is provable from the
        bucket fold alone (a bucket gaining a namespaced id it lacked
        guarantees a different vector), so a file touched k times in the
        batch is rebuilt once at the end instead of k times. The one
        case that needs the stored vector mid-batch — a changed path
        *string* with unchanged buckets, whose new ids may tokenise
        equal — materialises the pending build first and keeps the
        equality probe. Deferred builds are flushed before returning,
        so no stale vector is ever visible outside this call.
        """
        policy = self._policy
        if policy != "merge":
            # "first"/"latest" build straight from the record (extract
            # *is* the build — no rebuild redundancy to defer)
            for record in records:
                self.update(record)
            return
        threshold = self._freeze_threshold
        versions = self._versions
        vectors = self._vectors
        merge = self._merge
        cap = self._merge_cap
        vocab = self.extractor.vocabulary
        getters = self._getters
        wants_path = self._wants_path
        pending: set[int] = set()
        for record in records:
            fid = record.fid
            if threshold > 0 and versions.get(fid, 0) >= threshold:
                continue
            state = merge.get(fid)
            if state is None:
                state = _MergeState()
                merge[fid] = state
            values = state.values
            changed = False
            for attr, getter in getters:
                value = getter(record)
                if value is None:
                    continue
                bucket = values.get(attr)
                if bucket is None:
                    bucket = OrderedDict()
                    values[attr] = bucket
                if value in bucket:
                    bucket.move_to_end(value)
                else:
                    changed = True
                    bucket[value] = vocab.scalar_token(attr, value)
                    if len(bucket) > cap:
                        bucket.popitem(last=False)
            new_path = record.path if wants_path else None
            path_changed = new_path is not None and new_path != state.path
            known = fid in vectors or fid in pending
            if not changed and path_changed and known:
                # the only branch whose bump decision needs the stored
                # vector (new path ids may tokenise equal): settle any
                # pending build first — this record left the buckets
                # untouched, so the pre-fold vector is still current
                if fid in pending:
                    vectors[fid] = self._build_merged(state)
                    pending.discard(fid)
                state.path = new_path
                state.path_ids = self._resolve_path_ids(new_path)
                self._store(fid, self._build_merged(state))
            else:
                if path_changed:
                    state.path = new_path
                    state.path_ids = self._resolve_path_ids(new_path)
                if changed or path_changed or not known:
                    # provable bump: a bucket gained an id it lacked, or
                    # the fid is new (first store always bumps) — defer
                    # the build, count the version now
                    versions[fid] = versions.get(fid, 0) + 1
                    self._epoch += 1
                    pending.add(fid)
        for fid in pending:
            vectors[fid] = self._build_merged(merge[fid])

    def _build_merged(self, state: _MergeState) -> SemanticVector:
        scalars: list[int] = []
        for bucket in state.values.values():
            scalars.extend(bucket.values())
        # unsorted on purpose: SemanticVector normalises once in
        # __post_init__, so sorting here would sort twice
        return SemanticVector(scalar_ids=tuple(scalars), path_ids=state.path_ids)

    def _resolve_path_ids(self, path: str) -> tuple[int, ...]:
        ids = self._path_ids.get(path)
        if ids is None:
            ids = self.extractor.vocabulary.path_components(tokenize_path(path))
            self._path_ids[path] = ids
        return ids

    def get(self, fid: int) -> SemanticVector | None:
        """Current vector of ``fid`` (None if never seen)."""
        return self._vectors.get(fid)

    def version_of(self, fid: int) -> int:
        """Version of ``fid``'s vector: 0 if unseen, then +1 per change."""
        return self._versions.get(fid, 0)

    def epoch(self) -> int:
        """Monotonic store-wide change counter: bumps once per version
        bump anywhere in the store, so a consumer holding the epoch it
        last read at can tell in O(1) whether *any* vector changed —
        the array kernel's whole-batch similarity-reuse gate."""
        return self._epoch

    def maps(self) -> tuple[dict[int, SemanticVector], dict[int, int]]:
        """The live ``(fid → vector, fid → version)`` dicts — the bulk
        re-rank kernel's read view. Treat strictly as read-only; writes
        go through :meth:`update`."""
        return self._vectors, self._versions

    def __len__(self) -> int:
        return len(self._vectors)

    def approx_bytes(self) -> int:
        """Vector store footprint (merge state and version table included)."""
        total = 64 + sum(104 + v.approx_bytes() for v in self._vectors.values())
        total += 56 * len(self._versions)
        for state in self._merge.values():
            total += 64
            for bucket in state.values.values():
                total += 48 + 56 * len(bucket)
            if state.path is not None:
                total += len(state.path)
        total += sum(160 + len(p) for p in self._path_ids)
        return total


class ThreadSafeVectorStore(VectorStore):
    """A :class:`VectorStore` whose writes are safe under parallel ingest.

    The sharded service routes every record to its fid's owner shard and
    the echo path skips vector updates, so concurrent shards write
    *disjoint* fid keys — the lock's job is to serialise the underlying
    dict/merge-state mutations, not to arbitrate per-fid races (there are
    none by construction). Reads (``get`` / ``version_of`` /
    ``resolve``) stay lock-free: they are single dict lookups, and the
    parallel runner's flush phase only runs after an ingest barrier, so
    flush-time reads never race a write.

    Instances are picklable (the process-backend runner ships a snapshot
    to each worker); the lock is recreated on unpickle.
    """

    def __init__(self, config: FarmerConfig, extractor: Extractor) -> None:
        super().__init__(config, extractor)
        self._lock = threading.Lock()

    def update(self, record: TraceRecord) -> None:
        with self._lock:
            super().update(record)

    def update_batch(self, records) -> None:
        with self._lock:
            super().update_batch(records)

    def approx_bytes(self) -> int:
        with self._lock:
            return super().approx_bytes()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_getters"]  # lambdas; re-resolved from attr names
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._getters = tuple(
            (attr, attribute_getter(attr)) for attr in self._scalar_attrs
        )
        self._lock = threading.Lock()
