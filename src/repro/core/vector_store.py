"""Per-file semantic-vector maintenance policies.

A file's semantic vector must summarise *who touches it*. Three policies:

* ``latest`` — snapshot of the most recent request. Cheap, but on files
  shared across users/processes (libraries, course material, parallel
  shared inputs) the snapshot thrashes: the vector only ever matches the
  last requester's context.
* ``first`` — frozen at the first request (the paper's "attributes are
  rarely modified" reading).
* ``merge`` — the VSM document-vector reading and our default: keep up to
  ``merge_cap`` recent *distinct* values per attribute, so a shared
  library's vector overlaps every program currently linking it while a
  private file's vector stays a single context. The cap bounds memory and
  ages out stale contexts LRU-style.

Every file's vector carries a monotonically increasing *version*, bumped
only when an update actually changes the vector. Versions are what the
similarity cache keys its entries on: as long as both endpoints' versions
are unchanged, a cached ``sim(x, y)`` is exact and need not be recomputed.

Vector-stability heuristic (``FarmerConfig.vector_freeze_threshold``)
---------------------------------------------------------------------

Under the "merge" policy a hot shared file's vector is rewritten dozens
of times early in a trace while its sharing set is still being
discovered, and every rewrite invalidates all of the file's cached
similarities. Once a vector has survived ``vector_freeze_threshold``
rewrites it has effectively saturated — the distinct users/processes/
hosts that touch the file have been seen — so further updates are
dropped and the version stops bumping, which turns the similarity cache
from ~6% to >80% hit rate on the synthetic HP trace. The threshold is
off (0) by default: freezing trades a little adaptivity (a file whose
sharing set genuinely changes late keeps its saturated vector) for a
large reduction in Function-1 recomputation.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.traces.record import TraceRecord, attribute_value
from repro.vsm.path import tokenize_path
from repro.vsm.vector import SemanticVector

__all__ = ["VectorStore"]


class _MergeState:
    """Recent distinct values per attribute for one file (LRU per attr)."""

    __slots__ = ("values", "path")

    def __init__(self) -> None:
        self.values: dict[str, OrderedDict] = {}
        self.path: str | None = None


class VectorStore:
    """fid → semantic vector, maintained under the configured policy."""

    def __init__(self, config: FarmerConfig, extractor: Extractor) -> None:
        self.config = config
        self.extractor = extractor
        self._vectors: dict[int, SemanticVector] = {}
        self._versions: dict[int, int] = {}
        self._merge: dict[int, _MergeState] = {}
        self._scalar_attrs = tuple(a for a in config.attributes if a != "path")
        self._wants_path = "path" in config.attributes

    def _store(self, fid: int, vector: SemanticVector) -> None:
        """Install a vector, bumping the version only on a real change."""
        if self._vectors.get(fid) != vector:
            self._vectors[fid] = vector
            self._versions[fid] = self._versions.get(fid, 0) + 1

    def is_frozen(self, fid: int) -> bool:
        """Whether ``fid``'s vector has saturated and no longer updates."""
        threshold = self.config.vector_freeze_threshold
        return threshold > 0 and self._versions.get(fid, 0) >= threshold

    def update(self, record: TraceRecord) -> None:
        """Fold one request into the file's vector."""
        fid = record.fid
        if self.is_frozen(fid):
            return
        policy = self.config.sv_policy
        if policy == "first":
            if fid not in self._vectors:
                self._store(fid, self.extractor.extract(record))
            return
        if policy == "latest":
            self._store(fid, self.extractor.extract(record))
            return
        # merge policy
        state = self._merge.get(fid)
        if state is None:
            state = _MergeState()
            self._merge[fid] = state
        cap = self.config.merge_cap
        for attr in self._scalar_attrs:
            value = attribute_value(record, attr)
            if value is None:
                continue
            bucket = state.values.get(attr)
            if bucket is None:
                bucket = OrderedDict()
                state.values[attr] = bucket
            if value in bucket:
                bucket.move_to_end(value)
            else:
                bucket[value] = True
                if len(bucket) > cap:
                    bucket.popitem(last=False)
        if self._wants_path and record.path is not None:
            state.path = record.path
        self._store(fid, self._build_merged(state))

    def _build_merged(self, state: _MergeState) -> SemanticVector:
        vocab = self.extractor.vocabulary
        scalars: list[int] = []
        for attr, bucket in state.values.items():
            for value in bucket:
                scalars.append(vocab.scalar_token(attr, value))
        path_ids = (
            vocab.path_components(tokenize_path(state.path))
            if state.path is not None
            else None
        )
        return SemanticVector(scalar_ids=tuple(sorted(scalars)), path_ids=path_ids)

    def get(self, fid: int) -> SemanticVector | None:
        """Current vector of ``fid`` (None if never seen)."""
        return self._vectors.get(fid)

    def version_of(self, fid: int) -> int:
        """Version of ``fid``'s vector: 0 if unseen, then +1 per change."""
        return self._versions.get(fid, 0)

    def __len__(self) -> int:
        return len(self._vectors)

    def approx_bytes(self) -> int:
        """Vector store footprint (merge state and version table included)."""
        total = 64 + sum(104 + v.approx_bytes() for v in self._vectors.values())
        total += 56 * len(self._versions)
        for state in self._merge.values():
            total += 64
            for bucket in state.values.values():
                total += 48 + 56 * len(bucket)
            if state.path is not None:
                total += len(state.path)
        return total
