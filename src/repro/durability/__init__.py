"""Durability for the online service: snapshots + write-ahead recovery.

The package makes ``repro serve`` crash-consistent: accepted requests
are journaled to a CRC-framed write-ahead log *before* they are queued
for mining, periodic snapshots capture the sharded miner's full state
at drain barriers, and :meth:`DurabilityManager.recover
<repro.durability.manager.DurabilityManager.recover>` rebuilds a
service that answers queries bit-identically to one that never crashed
at the last durable barrier. See ``docs/durability.md`` for the file
formats, the fsync trade-offs and the recovery semantics.
"""

from repro.durability.manager import (
    DurabilityManager,
    DurabilityStats,
    RecoveryReport,
)
from repro.durability.snapshot import (
    SnapshotReport,
    latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.durability.wal import FSYNC_POLICIES, WalStats, WriteAheadLog

__all__ = [
    "FSYNC_POLICIES",
    "DurabilityManager",
    "DurabilityStats",
    "RecoveryReport",
    "SnapshotReport",
    "WalStats",
    "WriteAheadLog",
    "latest_snapshot",
    "load_snapshot",
    "write_snapshot",
]
