"""The durability manager: one data directory, one recovery story.

:class:`DurabilityManager` owns a data directory laid out as::

    <data_dir>/wal/        segmented write-ahead log (wal-<seq>.log)
    <data_dir>/snapshots/  sealed snapshots (snap-<seq>/), newest wins

and exposes the three verbs the online service needs:

* :meth:`log_accepted` — journal one admitted record (called by the
  ingest pipeline *before* the record is enqueued, so mined state is
  always a prefix of the log);
* :meth:`checkpoint` — write a snapshot at a drain barrier, rotate the
  WAL at the barrier sequence, prune segments and old snapshots the
  barrier covers;
* :meth:`recover` — load the latest valid snapshot (or start empty),
  verify its manifest against the booting config, replay the WAL tail
  through :meth:`ShardedFarmer.ingest_stream
  <repro.service.sharded.ShardedFarmer.ingest_stream>`, and hand back
  a service that answers queries bit-identically to one that never
  crashed (property-tested in ``tests/durability``).

``base_consumed`` bridges the restart: the restored service's
accepted-stream position is ``snapshot seq + records replayed``, and
every subsequent barrier sequence is ``base_consumed + the pipeline's
consumed count``.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import FarmerConfig
from repro.durability.snapshot import (
    SnapshotReport,
    latest_snapshot,
    load_snapshot,
    read_manifest,
    snapshot_seq,
    verify_config,
    write_snapshot,
)
from repro.durability.wal import WalStats, WriteAheadLog
from repro.errors import PersistenceError
from repro.service.sharded import ShardedFarmer

__all__ = ["DurabilityManager", "DurabilityStats", "RecoveryReport"]

_REPLAY_CHUNK = 1024


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What one :meth:`DurabilityManager.recover` call reconstructed.

    Attributes:
        snapshot_seq: accepted-stream position of the restored snapshot
            (0 when no snapshot existed and recovery started empty).
        snapshot_path: the restored snapshot directory (None if empty).
        wal_replayed: WAL records replayed on top of the snapshot.
        wal_discarded_bytes: torn-tail bytes truncated at WAL open (the
            record being appended when the process died).
        durable_seq: accepted-stream position after replay — the barrier
            the recovered service is bit-identical to.
        elapsed_s: wall-clock recovery cost (load + replay).
    """

    snapshot_seq: int
    snapshot_path: str | None
    wal_replayed: int
    wal_discarded_bytes: int
    durable_seq: int
    elapsed_s: float


@dataclass(frozen=True, slots=True)
class DurabilityStats:
    """Operational rollup served inside ``/stats`` under ``durability``.

    Attributes:
        data_dir: the managed data directory.
        wal: live WAL counters (appends, fsyncs, segments, torn bytes).
        n_snapshots: checkpoints written by this process.
        last_snapshot_seq: accepted-stream position of the newest
            snapshot barrier (0 before the first).
        snapshot_bytes: bytes written by the newest checkpoint.
        snapshot_elapsed_s: write cost of the newest checkpoint.
        recovery: how this process booted (None for a fresh start
            without ``recover()``).
    """

    data_dir: str
    wal: WalStats
    n_snapshots: int
    last_snapshot_seq: int
    snapshot_bytes: int
    snapshot_elapsed_s: float
    recovery: RecoveryReport | None = field(default=None)


class DurabilityManager:
    """Snapshots + WAL over one data directory (see module docstring).

    ``snapshot_keep`` bounds disk growth: after a checkpoint seals, all
    but the newest ``snapshot_keep`` snapshots are deleted along with
    every WAL segment the newest barrier covers.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 64,
        snapshot_keep: int = 2,
        telemetry=None,
    ) -> None:
        if snapshot_keep <= 0:
            raise PersistenceError(
                "DurabilityManager needs snapshot_keep > 0"
            )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_dir = self.data_dir / "snapshots"
        self.snapshot_dir.mkdir(exist_ok=True)
        self.wal = WriteAheadLog(
            self.data_dir / "wal", fsync=fsync, fsync_every=fsync_every
        )
        self.snapshot_keep = snapshot_keep
        self.telemetry = telemetry
        self.base_consumed = 0
        self.n_snapshots = 0
        self.last_snapshot_bytes = 0
        self.last_snapshot_elapsed_s = 0.0
        self.recovery: RecoveryReport | None = None
        newest = latest_snapshot(self.snapshot_dir)
        self.last_snapshot_seq = (
            snapshot_seq(newest) if newest is not None else 0
        )

    def has_state(self) -> bool:
        """Whether the data directory holds any prior state (used by
        the CLI to refuse a non-``--recover`` boot over existing data,
        which would silently fork the accepted stream)."""
        return (
            self.wal.next_seq > 0
            or latest_snapshot(self.snapshot_dir) is not None
        )

    # -- journal -------------------------------------------------------

    def log_accepted(self, record, allow_echo: bool) -> int:
        """Journal one admitted record; returns its sequence number."""
        start = time.perf_counter()
        seq = self.wal.append(record, allow_echo)
        if self.telemetry is not None:
            self.telemetry.observe_latency(
                "wal_append", time.perf_counter() - start
            )
            self.telemetry.incr("wal.appends")
        return seq

    # -- checkpoint ----------------------------------------------------

    def checkpoint(self, service: ShardedFarmer, seq: int) -> SnapshotReport:
        """Snapshot ``service`` as of accepted sequence ``seq``, then
        rotate the WAL at the barrier and prune what the barrier covers.

        The caller holds the service quiescent at ``seq`` (the online
        layer drains under its serial lock first).
        """
        report = write_snapshot(self.snapshot_dir, service, seq)
        if not report.unchanged:
            self.n_snapshots += 1
            self.last_snapshot_bytes = report.bytes_total
            self.last_snapshot_elapsed_s = report.elapsed_s
            self.last_snapshot_seq = seq
            self.wal.rotate()
            retained = self._prune_snapshots()
            # keep WAL segments back to the OLDEST retained snapshot:
            # if the newest turns out damaged, recovery falls back to
            # the previous barrier and still finds its tail on disk
            self.wal.prune(snapshot_seq(retained[0]))
            if self.telemetry is not None:
                self.telemetry.incr("snapshot.count")
                self.telemetry.incr("snapshot.bytes", report.bytes_total)
                self.telemetry.observe_latency("snapshot", report.elapsed_s)
        return report

    def _prune_snapshots(self) -> list[Path]:
        """Delete all but the newest ``snapshot_keep`` snapshots;
        returns the retained directories, oldest first."""
        sealed = sorted(
            (
                path
                for path in self.snapshot_dir.iterdir()
                if path.is_dir()
                and path.name.startswith("snap-")
                and not path.name.endswith(".tmp")
            ),
            key=snapshot_seq,
        )
        for stale in sealed[: -self.snapshot_keep]:
            shutil.rmtree(stale, ignore_errors=True)
        return sealed[-self.snapshot_keep :]

    # -- recovery ------------------------------------------------------

    def recover(
        self, config: FarmerConfig
    ) -> tuple[ShardedFarmer, RecoveryReport]:
        """Reconstruct the service at its last durable barrier.

        Loads the newest valid snapshot (verifying its manifest against
        ``config`` — a mismatch raises :class:`~repro.errors.
        SnapshotMismatchError` naming the differing fields), then
        replays the WAL tail in chunks through the ordinary ingest
        seam. With no snapshot, the entire log replays into a fresh
        service. Sets :attr:`base_consumed` to the durable sequence so
        subsequent barriers continue the accepted-stream numbering.
        """
        start = time.perf_counter()
        newest = latest_snapshot(self.snapshot_dir)
        if newest is not None:
            manifest = read_manifest(newest)
            verify_config(manifest, config)
            service = load_snapshot(newest)
            from_seq = manifest["seq"]
        else:
            service = ShardedFarmer(config)
            from_seq = 0
        replayed = 0
        chunk: list[tuple] = []
        for _seq, record, allow_echo in self.wal.replay(from_seq):
            chunk.append((record, allow_echo))
            if len(chunk) >= _REPLAY_CHUNK:
                service.ingest_stream(chunk)
                replayed += len(chunk)
                chunk = []
                if self.telemetry is not None:
                    self.telemetry.incr("recovery.replayed", _REPLAY_CHUNK)
        if chunk:
            service.ingest_stream(chunk)
            replayed += len(chunk)
            if self.telemetry is not None:
                self.telemetry.incr("recovery.replayed", len(chunk))
        durable_seq = from_seq + replayed
        if durable_seq != self.wal.next_seq:
            raise PersistenceError(
                f"recovery replayed to seq {durable_seq} but the WAL "
                f"ends at {self.wal.next_seq} — snapshot and log "
                f"disagree; the data directory is inconsistent"
            )
        self.base_consumed = durable_seq
        self.recovery = RecoveryReport(
            snapshot_seq=from_seq,
            snapshot_path=str(newest) if newest is not None else None,
            wal_replayed=replayed,
            wal_discarded_bytes=self.wal.discarded_bytes,
            durable_seq=durable_seq,
            elapsed_s=time.perf_counter() - start,
        )
        return service, self.recovery

    # -- stats ---------------------------------------------------------

    def stats(self) -> DurabilityStats:
        """Operational rollup (see :class:`DurabilityStats`)."""
        return DurabilityStats(
            data_dir=str(self.data_dir),
            wal=self.wal.stats(),
            n_snapshots=self.n_snapshots,
            last_snapshot_seq=self.last_snapshot_seq,
            snapshot_bytes=self.last_snapshot_bytes,
            snapshot_elapsed_s=self.last_snapshot_elapsed_s,
            recovery=self.recovery,
        )

    def close(self) -> None:
        """Flush and close the WAL."""
        self.wal.close()
