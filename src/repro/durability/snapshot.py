"""Crash-consistent snapshots of a :class:`ShardedFarmer`.

A snapshot is a *faithful* capture of the service's full mining state —
graph nodes, Correlator Lists, dirty marks, rank records, sliding
windows, echo queues, standby replicas, every counter — not a rank at
the barrier. That distinction is the whole correctness story: the lazy
re-evaluation schedule defers ranking to query time, so a snapshot that
ranked lists "to clean them up" would freeze them at snapshot-time
vector state and diverge from a never-crashed service once more records
arrive (exactly the bug the standby-sync ``demote_rank`` dance avoids).
Restoring a faithful capture and replaying the WAL tail through the
ordinary ingest seam reproduces the never-crashed state bit for bit.

Shared stores are externalized
------------------------------

One service holds namespace-global stores (vocabulary, vector store,
similarity cache) shared by every shard *by identity*. Pickling each
shard naively would duplicate them per shard and sever the sharing on
restore. Instead the stores are written once to ``shared.pkl`` and
every other blob references them through pickle persistent IDs
(:class:`pickle.Pickler.persistent_id` /
:class:`pickle.Unpickler.persistent_load`); the restore path loads the
stores first and resolves the IDs back to the single live objects. The
service blob additionally externalizes the shard Farmers (restored from
their own files) and the service itself (the replicator holds a back
reference), so warm standbys come back armed at their pickled barrier.

Atomicity
---------

A snapshot is written to ``snap-<seq>.tmp/``, every file fsynced, the
manifest (with per-file CRCs) written last, and the directory renamed
to ``snap-<seq>`` — a crash mid-snapshot leaves a ``.tmp`` directory
that recovery ignores. :func:`latest_snapshot` picks the
highest-sequence directory whose manifest and CRCs check out, so a
damaged snapshot falls back to the previous one (whose WAL segments are
only pruned after the *next* barrier seals).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.config import FarmerConfig
from repro.errors import PersistenceError, SnapshotMismatchError
from repro.service.sharded import ShardedFarmer

__all__ = [
    "SnapshotReport",
    "latest_snapshot",
    "load_snapshot",
    "read_manifest",
    "snapshot_seq",
    "verify_config",
    "write_snapshot",
]

MANIFEST_FORMAT = 1
_SNAP_PREFIX = "snap-"
_TMP_SUFFIX = ".tmp"

# persistent-ID tokens for the objects shared across blobs by identity
_VOCAB = "vocabulary"
_VECTORS = "vector_store"
_SIM_CACHE = "sim_cache"
_EXTRACTOR = "extractor"
_SERVICE = "service"
# fields of the service whose values are serialized in their own blobs
_EXTERNAL_FIELDS = (_VOCAB, _VECTORS, _SIM_CACHE, _EXTRACTOR)


def _snap_name(seq: int) -> str:
    return f"{_SNAP_PREFIX}{seq:012d}"


def snapshot_seq(path: Path) -> int:
    """The WAL sequence number a snapshot directory captures."""
    return int(path.name[len(_SNAP_PREFIX) :])


class _ExternalizingPickler(pickle.Pickler):
    """Pickler that replaces known shared objects with persistent IDs."""

    def __init__(self, file, external: dict[int, str]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._external = external

    def persistent_id(self, obj):
        """Token for a registered shared object; None pickles inline."""
        return self._external.get(id(obj))


class _ResolvingUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent IDs to live shared objects."""

    def __init__(self, file, resolve: dict[str, object]) -> None:
        super().__init__(file)
        self._resolve = resolve

    def persistent_load(self, pid):
        """The live shared object a snapshot token refers to."""
        try:
            return self._resolve[pid]
        except KeyError:
            raise PersistenceError(
                f"snapshot references unknown shared object {pid!r} "
                f"(snapshot format mismatch?)"
            ) from None


def _dump(path: Path, obj, external: dict[int, str]) -> dict:
    with open(path, "wb") as fh:
        _ExternalizingPickler(fh, external).dump(obj)
        fh.flush()
        os.fsync(fh.fileno())
    data = path.read_bytes()
    return {"bytes": len(data), "crc32": zlib.crc32(data)}


def _load(path: Path, resolve: dict[str, object]):
    with open(path, "rb") as fh:
        return _ResolvingUnpickler(fh, resolve).load()


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def config_fingerprint(config: FarmerConfig) -> dict:
    """JSON-normalized view of a config (tuples become lists) — what the
    manifest stores and recovery compares against the booting config."""
    return json.loads(json.dumps(asdict(config)))


@dataclass(frozen=True, slots=True)
class SnapshotReport:
    """What one snapshot barrier wrote.

    Attributes:
        seq: the accepted-stream sequence number the snapshot captures
            (every record with a lower sequence is inside it).
        path: the sealed snapshot directory.
        n_shards: shard blobs written.
        bytes_total: total bytes across all snapshot files.
        elapsed_s: wall-clock write cost (the ingest stall window).
        unchanged: True when a snapshot at ``seq`` already existed and
            nothing was written (no records accepted since the last
            barrier).
    """

    seq: int
    path: str
    n_shards: int
    bytes_total: int
    elapsed_s: float
    unchanged: bool = False


def write_snapshot(
    directory: str | Path, service: ShardedFarmer, seq: int
) -> SnapshotReport:
    """Capture ``service``'s full state as of WAL sequence ``seq``.

    The caller must hold the service quiescent (the online layer runs
    this under its ingest-serial and service locks, after a drain).
    """
    start = time.perf_counter()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / _snap_name(seq)
    if final.exists():
        return SnapshotReport(
            seq=seq,
            path=str(final),
            n_shards=len(service.shards),
            bytes_total=0,
            elapsed_s=time.perf_counter() - start,
            unchanged=True,
        )
    tmp = directory / (_snap_name(seq) + _TMP_SUFFIX)
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)

    files: dict[str, dict] = {}
    shared = {
        _VOCAB: service.vocabulary,
        _VECTORS: service.vector_store,
        _SIM_CACHE: service.sim_cache,
        _EXTRACTOR: service.extractor,
    }
    files["shared.pkl"] = _dump(tmp / "shared.pkl", shared, external={})

    external = {
        id(obj): token
        for token, obj in shared.items()
        if obj is not None
    }
    for index, shard in enumerate(service.shards):
        files[f"shard-{index}.pkl"] = _dump(
            tmp / f"shard-{index}.pkl", shard, external
        )

    service_external = dict(external)
    service_external[id(service)] = _SERVICE
    for index, shard in enumerate(service.shards):
        service_external[id(shard)] = f"shard:{index}"
    state = {
        key: value
        for key, value in vars(service).items()
        if key not in _EXTERNAL_FIELDS
    }
    files["service.pkl"] = _dump(
        tmp / "service.pkl", state, service_external
    )

    manifest = {
        "format": MANIFEST_FORMAT,
        "seq": seq,
        "n_shards": len(service.shards),
        "config": config_fingerprint(service.config),
        "files": files,
        "created_at": time.time(),
    }
    manifest_path = tmp / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    with open(manifest_path, "rb") as fh:
        os.fsync(fh.fileno())
    _fsync_dir(tmp)
    tmp.rename(final)
    _fsync_dir(directory)
    return SnapshotReport(
        seq=seq,
        path=str(final),
        n_shards=len(service.shards),
        bytes_total=sum(entry["bytes"] for entry in files.values()),
        elapsed_s=time.perf_counter() - start,
    )


def read_manifest(path: Path) -> dict | None:
    """Parse and CRC-verify a snapshot directory's manifest.

    Returns None when the directory is not a usable snapshot (missing
    or unparsable manifest, missing files, CRC mismatch) — the caller
    falls back to an older snapshot.
    """
    manifest_path = path / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if manifest.get("format") != MANIFEST_FORMAT:
        return None
    for name, entry in manifest.get("files", {}).items():
        try:
            data = (path / name).read_bytes()
        except OSError:
            return None
        if len(data) != entry["bytes"] or zlib.crc32(data) != entry["crc32"]:
            return None
    return manifest


def latest_snapshot(directory: str | Path) -> Path | None:
    """The highest-sequence *valid* snapshot directory, or None.

    ``.tmp`` directories (a crash mid-snapshot) and snapshots whose
    manifest or CRCs fail are skipped — damage falls back to the
    previous barrier rather than refusing recovery outright.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        (
            path
            for path in directory.iterdir()
            if path.is_dir()
            and path.name.startswith(_SNAP_PREFIX)
            and not path.name.endswith(_TMP_SUFFIX)
        ),
        key=snapshot_seq,
        reverse=True,
    )
    for path in candidates:
        if read_manifest(path) is not None:
            return path
    return None


def verify_config(manifest: dict, config: FarmerConfig) -> None:
    """Refuse a restore into a differently-configured service.

    Raises:
        SnapshotMismatchError: naming every differing field, so the
            operator can boot with the matching flags or discard the
            data directory.
    """
    stored = manifest.get("config", {})
    booting = config_fingerprint(config)
    differing = [
        f"{key}: snapshot={stored.get(key)!r} boot={booting.get(key)!r}"
        for key in sorted(set(stored) | set(booting))
        if stored.get(key) != booting.get(key)
    ]
    if differing:
        raise SnapshotMismatchError(
            "snapshot manifest disagrees with the booting configuration "
            "— refusing to restore state into a different topology. "
            "Differing fields: " + "; ".join(differing)
        )


def load_snapshot(path: str | Path) -> ShardedFarmer:
    """Reconstruct the :class:`ShardedFarmer` a snapshot captured.

    The shared stores come back first; every shard blob and the service
    blob resolve their persistent IDs against them, so the restored
    service shares its stores across shards by identity exactly as the
    captured one did (standby replicas included).
    """
    path = Path(path)
    manifest = read_manifest(path)
    if manifest is None:
        raise PersistenceError(
            f"snapshot {path} is missing or corrupt (manifest/CRC check "
            f"failed)"
        )
    shared = _load(path / "shared.pkl", resolve={})
    service = ShardedFarmer.__new__(ShardedFarmer)
    resolve: dict[str, object] = dict(shared)
    resolve[_SERVICE] = service
    for index in range(manifest["n_shards"]):
        resolve[f"shard:{index}"] = _load(
            path / f"shard-{index}.pkl", resolve
        )
    # the service blob's ``shards`` tuple holds persistent IDs, so the
    # update below re-links the very objects restored above
    state = _load(path / "service.pkl", resolve)
    service.__dict__.update(state)
    for token in _EXTERNAL_FIELDS:
        setattr(service, token, shared[token])
    return service
