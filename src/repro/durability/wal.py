"""Append-only write-ahead log of accepted ingest requests.

The WAL sits *behind* admission control: :meth:`IngestPipeline.offer
<repro.online.pipeline.IngestPipeline.offer>` journals a record the
moment it is accepted — before it is enqueued for the consumer — so at
every instant the mined state of the service is a prefix of the log.
That single ordering rule is what makes a SIGKILL recoverable: replaying
the log tail from the last snapshot barrier through
:meth:`ShardedFarmer.ingest_stream
<repro.service.sharded.ShardedFarmer.ingest_stream>` re-mines exactly
the accepted stream, in the accepted order, with the accepted
``allow_echo`` flags.

On-disk format
--------------

A log is a directory of **segments** named ``wal-<seq>.log`` where
``<seq>`` is the sequence number of the segment's first record.
Each record is one CRC-framed entry::

    [u32 payload length][u32 crc32(payload)][payload bytes]

with the payload the compact JSON ``[allow_echo, record-dict]`` (the
same dict :func:`repro.traces.io.record_to_dict` writes to JSONL trace
files). Length-prefixed framing means a torn write — the process died
mid-``append`` — is detectable as a short or CRC-failing frame at the
physical end of the last segment; :class:`WriteAheadLog` truncates it
at open and reports the discarded byte count. A bad frame anywhere
*else* (valid data follows it) is real corruption and raises
:class:`~repro.errors.WalCorruptError` — replay must never silently
skip accepted records.

Fsync policy
------------

``fsync="always"`` fsyncs every append (no accepted record is ever
lost, at a per-record fsync cost); ``"interval"`` fsyncs every
``fsync_every`` appends (bounded loss window, near-batch throughput);
``"never"`` leaves flushing to the OS (contents survive a process kill
— the buffers are flushed to the page cache on every append — but not a
host power loss). ``docs/durability.md`` quantifies the trade.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigError, WalCorruptError
from repro.traces.io import record_from_dict, record_to_dict
from repro.traces.record import TraceRecord

__all__ = ["FSYNC_POLICIES", "WalStats", "WriteAheadLog"]

FSYNC_POLICIES = ("always", "interval", "never")

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{seq:012d}{_SEGMENT_SUFFIX}"


def _segment_base(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


def _encode(record: TraceRecord, allow_echo: bool) -> bytes:
    payload = json.dumps(
        [1 if allow_echo else 0, record_to_dict(record)],
        separators=(",", ":"),
    ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_segment(path: Path) -> tuple[int, int, int]:
    """Walk one segment's frames.

    Returns ``(n_records, valid_bytes, total_bytes)`` — a torn or
    corrupt tail shows up as ``valid_bytes < total_bytes`` (the caller
    decides whether that is an expected torn write or real corruption).
    """
    data = path.read_bytes()
    offset = 0
    n_records = 0
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if end > len(data):
            break  # short frame: the payload was cut off
        payload = data[offset + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            break  # torn payload bytes
        offset = end
        n_records += 1
    return n_records, offset, len(data)


@dataclass(frozen=True, slots=True)
class WalStats:
    """Operational accounting of one :class:`WriteAheadLog`.

    Attributes:
        next_seq: sequence number the next accepted record will get
            (equals the count of records ever logged, across rotations).
        n_segments: segment files currently on disk.
        n_appends: records appended by *this* process (excludes records
            recovered from disk at open).
        bytes_written: frame bytes appended by this process.
        n_fsyncs: fsync calls issued by this process.
        discarded_bytes: torn-tail bytes truncated when the log was
            opened (0 after a clean shutdown).
        fsync: the configured fsync policy.
    """

    next_seq: int
    n_segments: int
    n_appends: int
    bytes_written: int
    n_fsyncs: int
    discarded_bytes: int
    fsync: str


class WriteAheadLog:
    """CRC-framed segmented log of ``(record, allow_echo)`` entries.

    Opening a directory scans every segment in order, truncates a torn
    tail on the *last* segment (counting the discarded bytes), and
    refuses mid-log corruption with :class:`~repro.errors.
    WalCorruptError`. Appends are thread-safe; :meth:`rotate` (called at
    snapshot barriers) seals the active segment so :meth:`prune` can
    delete segments wholly covered by a snapshot.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 64,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigError(
                f"WriteAheadLog fsync policy must be one of "
                f"{FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_every <= 0:
            raise ConfigError("WriteAheadLog needs fsync_every > 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_every = fsync_every
        self._lock = threading.Lock()
        self._n_appends = 0
        self._bytes_written = 0
        self._n_fsyncs = 0
        self._since_fsync = 0
        self.discarded_bytes = 0
        self._segments = self._recover_segments()
        base = self._segments[-1] if self._segments else 0
        n_records, _, _ = (
            _scan_segment(self._segment_path(base)) if self._segments else (0, 0, 0)
        )
        self._next_seq = base + n_records
        self._active = open(  # noqa: SIM115 - held for the log's lifetime
            self._segment_path(base)
            if self._segments
            else self._start_segment(base),
            "ab",
        )

    # -- open-time recovery --------------------------------------------

    def _segment_path(self, base: int) -> Path:
        return self.directory / _segment_name(base)

    def _start_segment(self, base: int) -> Path:
        path = self._segment_path(base)
        path.touch()
        self._segments.append(base)
        return path

    def _recover_segments(self) -> list[int]:
        bases = sorted(
            _segment_base(path)
            for path in self.directory.glob(
                f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"
            )
        )
        for position, base in enumerate(bases):
            path = self._segment_path(base)
            n_records, valid, total = _scan_segment(path)
            is_last = position == len(bases) - 1
            if valid < total:
                if not is_last:
                    raise WalCorruptError(
                        f"WAL segment {path.name} is corrupt at byte "
                        f"{valid} but later segments exist — records "
                        f"would be lost mid-log; refusing to open"
                    )
                # torn tail of the final segment: the append in flight
                # when the process died — truncate to the last complete
                # record and account for what was cut
                with open(path, "ab") as fh:
                    fh.truncate(valid)
                self.discarded_bytes = total - valid
            if not is_last and bases[position + 1] != base + n_records:
                raise WalCorruptError(
                    f"WAL segment {path.name} holds {n_records} records "
                    f"but the next segment starts at seq "
                    f"{bases[position + 1]} — a segment is missing or "
                    f"truncated; refusing to open"
                )
        return bases

    # -- producer side -------------------------------------------------

    def append(self, record: TraceRecord, allow_echo: bool) -> int:
        """Durably journal one accepted record; returns its sequence
        number (0-based position in the accepted stream)."""
        frame = _encode(record, allow_echo)
        with self._lock:
            seq = self._next_seq
            self._active.write(frame)
            self._active.flush()
            self._n_appends += 1
            self._bytes_written += len(frame)
            self._since_fsync += 1
            if self.fsync == "always" or (
                self.fsync == "interval"
                and self._since_fsync >= self.fsync_every
            ):
                os.fsync(self._active.fileno())
                self._n_fsyncs += 1
                self._since_fsync = 0
            self._next_seq = seq + 1
        return seq

    def sync(self) -> None:
        """Force an fsync of the active segment (barrier seam)."""
        with self._lock:
            self._active.flush()
            os.fsync(self._active.fileno())
            self._n_fsyncs += 1
            self._since_fsync = 0

    def rotate(self) -> int:
        """Seal the active segment and start a fresh one at the current
        sequence number (snapshot barriers call this so :meth:`prune`
        can later delete everything the snapshot covers). Returns the
        new segment's base sequence number."""
        with self._lock:
            self._active.flush()
            os.fsync(self._active.fileno())
            self._n_fsyncs += 1
            self._since_fsync = 0
            self._active.close()
            base = self._next_seq
            if self._segments and self._segments[-1] == base:
                # the active segment is still empty; keep it
                self._active = open(self._segment_path(base), "ab")
                return base
            self._active = open(self._start_segment(base), "ab")
            return base

    def prune(self, upto_seq: int) -> int:
        """Delete sealed segments whose records all precede ``upto_seq``
        (i.e. are covered by a snapshot). Returns segments deleted."""
        removed = 0
        with self._lock:
            while len(self._segments) > 1:
                base, next_base = self._segments[0], self._segments[1]
                if next_base > upto_seq:
                    break
                self._segment_path(base).unlink()
                self._segments.pop(0)
                removed += 1
        return removed

    def close(self) -> None:
        """Flush, fsync and close the active segment."""
        with self._lock:
            if not self._active.closed:
                self._active.flush()
                os.fsync(self._active.fileno())
                self._active.close()

    # -- consumer side -------------------------------------------------

    def replay(
        self, from_seq: int = 0
    ) -> Iterator[tuple[int, TraceRecord, bool]]:
        """Yield ``(seq, record, allow_echo)`` for every logged record
        with ``seq >= from_seq``, in append order."""
        with self._lock:
            self._active.flush()
            segments = list(self._segments)
        for base in segments:
            path = self._segment_path(base)
            data = path.read_bytes()
            offset = 0
            seq = base
            while offset + _FRAME.size <= len(data):
                length, crc = _FRAME.unpack_from(data, offset)
                end = offset + _FRAME.size + length
                if end > len(data):
                    break  # unflushed/torn tail of the live segment
                payload = data[offset + _FRAME.size : end]
                if zlib.crc32(payload) != crc:
                    break
                if seq >= from_seq:
                    allow_echo, record_dict = json.loads(
                        payload.decode("utf-8")
                    )
                    yield seq, record_from_dict(record_dict), bool(allow_echo)
                offset = end
                seq += 1

    @property
    def next_seq(self) -> int:
        """Sequence number the next append will get."""
        with self._lock:
            return self._next_seq

    def stats(self) -> WalStats:
        """Operational counters (see :class:`WalStats`)."""
        with self._lock:
            return WalStats(
                next_seq=self._next_seq,
                n_segments=len(self._segments),
                n_appends=self._n_appends,
                bytes_written=self._bytes_written,
                n_fsyncs=self._n_fsyncs,
                discarded_bytes=self.discarded_bytes,
                fsync=self.fsync,
            )
