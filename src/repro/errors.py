"""Exception hierarchy for the FARMER reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of ``repro`` with a single ``except`` clause
while still being able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration object failed validation.

    Raised eagerly at construction time (e.g. a weight outside ``[0, 1]``,
    a non-positive cache capacity) so misconfiguration never silently
    corrupts an experiment.
    """


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed.

    Carries the offending line number when available so bad traces can be
    located quickly.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state.

    This always indicates a bug (e.g. completing a request that was never
    issued), never a user error, and is therefore loud by design.
    """


class KVStoreError(ReproError):
    """An operation on the Berkeley-DB-substitute key/value store failed."""


class ReplicationError(ReproError):
    """A shard replication/failover operation was misused.

    Raised when failover entry points are driven outside their contract
    (failing a shard with replication disabled, promoting a shard that
    is not failed, double-failing an already-failed shard) — these are
    caller errors, never data loss.
    """


class ShardFailedError(ReproError):
    """A request was routed to a failed shard.

    The shard's partition is unavailable between ``fail_shard(i)`` and
    ``promote_standby(i)``; requests and queries owned by other shards
    keep working. Carries the shard index so a client can trigger the
    promotion.
    """

    def __init__(self, shard: int) -> None:
        super().__init__(
            f"shard {shard} is failed; call promote_standby({shard}) "
            f"to restore its partition from the warm standby"
        )
        self.shard = shard


class PersistenceError(ReproError):
    """Base class for durability failures (snapshots and the WAL).

    Everything the :mod:`repro.durability` layer refuses — corrupt
    files, mismatched manifests, misused recovery entry points — derives
    from this class, so a serving layer can treat "the disk state is not
    usable" as one failure class while still discriminating below.
    """


class WalCorruptError(PersistenceError):
    """The write-ahead log is damaged somewhere other than its tail.

    A torn *tail* (the record being appended when the process died) is
    expected and silently truncated at open; a bad CRC or frame in the
    *middle* of the log — with intact records after it — means records
    would be silently skipped on replay, so recovery refuses instead.
    """


class SnapshotMismatchError(PersistenceError):
    """A snapshot manifest disagrees with the booting configuration.

    Restoring a snapshot into a service with a different shard count,
    router or kernel would serve answers from a topology that never
    existed; recovery refuses and names the differing fields so the
    operator can boot with the matching flags (or discard the data dir).
    """


class UnknownExperimentError(ReproError):
    """An experiment id was requested that the registry does not know."""
