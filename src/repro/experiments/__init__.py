"""Experiment harness: one module per table/figure of the paper's
evaluation plus prose-claim ablations. See DESIGN.md §4 for the index
and EXPERIMENTS.md for measured-vs-paper results."""

from repro.experiments.common import (
    DEFAULT_EVENTS,
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
)

__all__ = [
    "DEFAULT_EVENTS",
    "DEFAULT_SEEDS",
    "Experiment",
    "ExperimentResult",
]
