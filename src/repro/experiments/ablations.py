"""Ablations of the design choices the paper argues for in prose.

* ``ablation_dpa_ipa`` — §3.2.1: IPA should beat DPA because deep paths
  drown the other attributes under DPA (the executable/library case).
* ``ablation_lda`` — §3.2.2: LDA distance weighting should beat uniform
  window weighting (successor importance decays with distance).
* ``ablation_queue`` — §4.1: the dual priority queue should protect
  demand latency against prefetch load compared with a single FIFO (we
  approximate the FIFO by disabling the priority pop: prefetches are
  modelled as demand-priority work by shrinking the prefetch queue to
  zero and issuing no prefetches vs the dual-queue run; the measured
  quantity is demand wait time under equal prefetch volume).
* ``ablation_sv_policy`` — the vector-maintenance policy ("merge" vs
  "latest" vs "first"); shared files need merged contexts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    mean,
    simulate,
)

__all__ = [
    "run_dpa_ipa",
    "run_lda",
    "run_sv_policy",
    "EXPERIMENT_DPA_IPA",
    "EXPERIMENT_LDA",
    "EXPERIMENT_SV_POLICY",
]


def run_dpa_ipa(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = ("hp", "llnl"),
) -> ExperimentResult:
    """IPA vs DPA on the path-bearing traces."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in traces:
        per_method: dict[str, float] = {}
        for method in ("ipa", "dpa"):
            reports = simulate(
                trace, lambda: make_fpa(trace, path_method=method), n_events, seeds
            )
            per_method[method] = mean([r.hit_ratio for r in reports])
            rows.append((trace, method.upper(), f"{per_method[method] * 100:.2f}%"))
        data[trace] = per_method
    return ExperimentResult(
        experiment_id="ablation_dpa_ipa",
        title="Ablation: Integrated vs Divided Path Algorithm",
        headers=("trace", "path algorithm", "hit ratio"),
        rows=tuple(rows),
        notes=(
            "Paper argument (§3.2.1): DPA lets deep directories dominate "
            "the similarity denominator and under-weights user/process "
            "agreement, so IPA is the better default."
        ),
        data={"matrix": data},
    )


def run_lda(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = ("hp", "res"),
) -> ExperimentResult:
    """LDA vs uniform successor weighting."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in traces:
        per_schedule: dict[str, float] = {}
        for schedule in ("lda", "uniform"):
            reports = simulate(
                trace,
                lambda: make_fpa(trace, weight_schedule=schedule),
                n_events,
                seeds,
            )
            per_schedule[schedule] = mean([r.hit_ratio for r in reports])
            rows.append(
                (trace, schedule, f"{per_schedule[schedule] * 100:.2f}%")
            )
        data[trace] = per_schedule
    return ExperimentResult(
        experiment_id="ablation_lda",
        title="Ablation: LDA vs uniform window weighting",
        headers=("trace", "weight schedule", "hit ratio"),
        rows=tuple(rows),
        notes=(
            "Paper argument (§3.2.2): nearer successors matter more; the "
            "linear decremented assignment encodes that."
        ),
        data={"matrix": data},
    )


def run_sv_policy(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = ("hp", "ins"),
) -> ExperimentResult:
    """Semantic-vector maintenance policy comparison."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in traces:
        per_policy: dict[str, float] = {}
        for policy in ("merge", "latest", "first"):
            reports = simulate(
                trace, lambda: make_fpa(trace, sv_policy=policy), n_events, seeds
            )
            per_policy[policy] = mean([r.hit_ratio for r in reports])
            rows.append((trace, policy, f"{per_policy[policy] * 100:.2f}%"))
        data[trace] = per_policy
    return ExperimentResult(
        experiment_id="ablation_sv_policy",
        title="Ablation: semantic-vector maintenance policy",
        headers=("trace", "sv policy", "hit ratio"),
        rows=tuple(rows),
        notes=(
            "Shared files (libraries, course material) need merged "
            "contexts: a snapshot of only the last requester breaks "
            "similarity to everything the previous requesters will touch."
        ),
        data={"matrix": data},
    )


EXPERIMENT_DPA_IPA = Experiment(
    experiment_id="ablation_dpa_ipa",
    paper_artifact="§3.2.1 argument",
    description="IPA vs DPA path similarity",
    run=run_dpa_ipa,
)

EXPERIMENT_LDA = Experiment(
    experiment_id="ablation_lda",
    paper_artifact="§3.2.2 argument",
    description="LDA vs uniform successor weighting",
    run=run_lda,
)

EXPERIMENT_SV_POLICY = Experiment(
    experiment_id="ablation_sv_policy",
    paper_artifact="design choice",
    description="Semantic-vector policy (merge/latest/first)",
    run=run_sv_policy,
)
