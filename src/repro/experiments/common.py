"""Shared experiment infrastructure.

Every experiment module exposes ``run(scale, seeds) -> ExperimentResult``
— a pure function returning printable rows — plus a module-level
``EXPERIMENT`` descriptor consumed by the registry/CLI/benchmarks. The
per-trace simulator operating points live here so that every figure and
table is measured on the same system configuration (as in the paper,
where one HUSt deployment served all experiments).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import DEFAULT_ATTRIBUTES, PATHLESS_ATTRIBUTES, FarmerConfig
from repro.core.farmer import Farmer
from repro.storage.cluster import SimulationConfig, run_simulation
from repro.storage.metrics import SimulationReport
from repro.storage.prefetch import (
    FarmerPrefetcher,
    NoPrefetcher,
    PredictorPrefetcher,
    PrefetchEngine,
)
from repro.baselines.nexus import Nexus
from repro.traces.record import TraceRecord
from repro.traces.synthetic import generate_trace
from repro.utils.tables import format_table

__all__ = [
    "TRACE_CACHE_CAPACITY",
    "trace_attributes",
    "sim_config_for",
    "farmer_config_for",
    "make_fpa",
    "make_nexus_prefetcher",
    "make_lru",
    "cached_trace",
    "mean",
    "ExperimentResult",
    "Experiment",
    "DEFAULT_EVENTS",
    "DEFAULT_SEEDS",
]

# Per-trace metadata-cache capacity (entries). Chosen so each trace's
# LRU baseline lands in a regime with prefetching headroom while keeping
# the paper's cross-trace ordering (INS most cacheable, RES least).
TRACE_CACHE_CAPACITY: dict[str, int] = {"hp": 72, "ins": 48, "res": 72, "llnl": 32}

# Default experiment scale: big enough for stable shapes, small enough
# that the full suite runs in minutes. Experiments accept overrides.
DEFAULT_EVENTS = 6000
DEFAULT_SEEDS: tuple[int, ...] = (1, 2, 3)


def trace_attributes(trace: str) -> tuple[str, ...]:
    """The paper's attribute set for a trace (Table 5): path-bearing
    traces use {user, process, host, path}; INS/RES use file id + dev."""
    return DEFAULT_ATTRIBUTES if trace in ("hp", "llnl") else PATHLESS_ATTRIBUTES


def sim_config_for(trace: str, **overrides: Any) -> SimulationConfig:
    """The per-trace simulator operating point."""
    kwargs: dict[str, Any] = {"cache_capacity": TRACE_CACHE_CAPACITY[trace]}
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


def farmer_config_for(trace: str, **overrides: Any) -> FarmerConfig:
    """Default FARMER configuration for a trace."""
    kwargs: dict[str, Any] = {"attributes": trace_attributes(trace)}
    kwargs.update(overrides)
    return FarmerConfig(**kwargs)


def make_fpa(trace: str, **config_overrides: Any) -> FarmerPrefetcher:
    """A fresh FPA engine for one simulation run."""
    return FarmerPrefetcher(Farmer(farmer_config_for(trace, **config_overrides)))


def make_nexus_prefetcher(group_size: int = 5) -> PredictorPrefetcher:
    """The Nexus comparator at its published aggressiveness."""
    return PredictorPrefetcher(Nexus(group_size=group_size), k=group_size)


def make_lru() -> NoPrefetcher:
    """The LRU comparator (no prefetching)."""
    return NoPrefetcher()


_TRACE_CACHE: dict[tuple[str, int, int], list[TraceRecord]] = {}


def cached_trace(name: str, n_events: int, seed: int) -> list[TraceRecord]:
    """Generate-or-reuse a trace (experiments share workloads heavily)."""
    key = (name, n_events, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = generate_trace(name, n_events, seed=seed)
        if len(_TRACE_CACHE) > 24:  # bound the cache; traces are big
            _TRACE_CACHE.clear()
        _TRACE_CACHE[key] = trace
    return trace


def simulate(
    trace_name: str,
    prefetcher_factory: Callable[[], PrefetchEngine],
    n_events: int,
    seeds: Sequence[int],
    **sim_overrides: Any,
) -> list[SimulationReport]:
    """One report per seed for a (trace, policy) pair."""
    reports = []
    for seed in seeds:
        records = cached_trace(trace_name, n_events, seed)
        config = sim_config_for(trace_name, seed=seed, **sim_overrides)
        reports.append(run_simulation(records, prefetcher_factory(), config))
    return reports


def mean(values: Sequence[float]) -> float:
    """Plain mean with empty-input NaN."""
    vals = [v for v in values if v == v]
    if not vals:
        return float("nan")
    return sum(vals) / len(vals)


@dataclass(frozen=True)
class ExperimentResult:
    """Printable result of one experiment."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """Paper-style ASCII table plus notes."""
        out = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            out += "\n\n" + self.notes
        return out


@dataclass(frozen=True)
class Experiment:
    """Registry descriptor: id, paper artifact, and the runner."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[..., ExperimentResult]
