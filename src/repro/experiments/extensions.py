"""Extension experiments beyond the paper's tables and figures.

* ``ext_predictors`` — offline next-access accuracy of every related-work
  predictor (§6) plus FARMER itself, isolating prediction quality from
  cache effects.
* ``ext_regression`` — the paper's §7 future-work idea: multiple
  regression of pairwise access frequency on attribute agreement.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.predictor_eval import evaluate_predictors
from repro.analysis.regression import fit_attribute_regression
from repro.baselines import (
    FirstSuccessor,
    LastSuccessor,
    Nexus,
    ProbabilityGraph,
    ProgramBasedSuccessor,
    ProgramUserLastSuccessor,
    RecentPopularity,
    SDGraph,
    StableSuccessor,
)
from repro.core.farmer import Farmer
from repro.experiments.common import (
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    cached_trace,
    farmer_config_for,
    mean,
)

__all__ = ["run_predictors", "run_regression", "EXPERIMENT_PREDICTORS", "EXPERIMENT_REGRESSION"]


def _predictor_suite(trace: str) -> dict:
    return {
        "FARMER": Farmer(farmer_config_for(trace, max_strength=0.0)),
        "Nexus": Nexus(),
        "LastSuccessor": LastSuccessor(),
        "FirstSuccessor": FirstSuccessor(),
        "StableSuccessor": StableSuccessor(),
        "RecentPopularity": RecentPopularity(),
        "ProbabilityGraph": ProbabilityGraph(),
        "SDGraph": SDGraph(),
        "PBS": ProgramBasedSuccessor(),
        "PULS": ProgramUserLastSuccessor(),
    }


def run_predictors(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    trace: str = "hp",
    k: int = 2,
) -> ExperimentResult:
    """Offline hit@k for the full predictor family."""
    accumulated: dict[str, list[float]] = {}
    coverage: dict[str, list[float]] = {}
    for seed in seeds:
        records = cached_trace(trace, n_events, seed)
        scores = evaluate_predictors(records, _predictor_suite(trace), k=k)
        for s in scores:
            accumulated.setdefault(s.name, []).append(s.accuracy)
            coverage.setdefault(s.name, []).append(s.coverage)
    means = {name: mean(vals) for name, vals in accumulated.items()}
    rows = [
        (name, f"{means[name] * 100:.1f}%", f"{mean(coverage[name]) * 100:.1f}%")
        for name in sorted(means, key=lambda n: -means[n])
    ]
    return ExperimentResult(
        experiment_id="ext_predictors",
        title=f"Extension: offline next-access accuracy (hit@{k}, {trace.upper()})",
        headers=("predictor", "accuracy", "coverage"),
        rows=tuple(rows),
        notes=(
            "Accuracy = fraction of offered predictions containing the "
            "next access; coverage = fraction of requests with any "
            "prediction. Strictly-next prediction favours pure sequence "
            "methods; FARMER optimises *soon*-access (its candidates "
            "arrive within the prefetch horizon), which is why it wins "
            "at the cache level (fig7) even when mid-pack here. The "
            "single-slot predictors (LS/FS) trail badly under "
            "interleaving, as §6 argues."
        ),
        data={"accuracy": means},
    )


def run_regression(
    n_events: int = 4000,
    seeds: Sequence[int] = (1,),
    trace: str = "hp",
) -> ExperimentResult:
    """§7 future work: attribute-agreement regression."""
    records = cached_trace(trace, n_events, seeds[0])
    fit = fit_attribute_regression(records)
    rows = tuple(fit.summary_rows())
    return ExperimentResult(
        experiment_id="ext_regression",
        title=f"Extension (§7): regression of F(A,B) on attribute agreement ({trace.upper()})",
        headers=("feature", "value"),
        rows=rows,
        notes=(
            "Positive coefficients mean agreement on that attribute "
            "predicts stronger access correlation; this quantifies the "
            "Figure 1 intuition in one model."
        ),
        data={
            "coefficients": dict(fit.ranked_attributes()),
            "r_squared": fit.r_squared,
        },
    )


EXPERIMENT_PREDICTORS = Experiment(
    experiment_id="ext_predictors",
    paper_artifact="§6 (related work)",
    description="Offline accuracy of the full predictor family",
    run=run_predictors,
)

EXPERIMENT_REGRESSION = Experiment(
    experiment_id="ext_regression",
    paper_artifact="§7 (future work)",
    description="Multiple regression of correlation on attributes",
    run=run_regression,
)
