"""Figure 1 — inter-file access probability per semantic-attribute filter.

The paper's motivating measurement: partition each trace into sub-streams
agreeing on an attribute combination and compute the successor
predictability within them. Claims to reproduce: (1) the unfiltered
("none") stream is the *least* predictable in every trace; (2) different
attributes help different traces by different amounts (e.g. the pid
filter scores differently on RES vs HP; path beats uid on HP).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_EVENTS,
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    cached_trace,
    mean,
)
from repro.traces.stats import filtered_predictability, successor_predictability
from repro.traces.synthetic import TRACE_NAMES

__all__ = ["run", "EXPERIMENT", "FILTERS"]

# attribute combinations, in the paper's Figure 1 style; "path" only
# exists on hp/llnl and is silently skipped elsewhere
FILTERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("none", ()),
    ("uid", ("user",)),
    ("pid", ("process",)),
    ("host", ("host",)),
    ("path", ("path",)),
    ("uid+pid", ("user", "process")),
    ("pid+host", ("process", "host")),
)


def run(
    n_events: int = DEFAULT_EVENTS, seeds: Sequence[int] = DEFAULT_SEEDS
) -> ExperimentResult:
    """Compute the Figure 1 matrix over all four traces."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in TRACE_NAMES:
        per_filter: dict[str, float] = {}
        for label, attrs in FILTERS:
            if "path" in attrs and trace in ("ins", "res"):
                per_filter[label] = float("nan")
                continue
            vals = []
            for seed in seeds:
                records = cached_trace(trace, n_events, seed)
                if attrs:
                    vals.append(filtered_predictability(records, attrs))
                else:
                    vals.append(successor_predictability(records))
            per_filter[label] = mean(vals)
        data[trace] = per_filter
        rows.append(
            (
                trace,
                *(
                    f"{per_filter[label] * 100:.1f}%" if per_filter[label] == per_filter[label] else "-"
                    for label, _ in FILTERS
                ),
            )
        )
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1: inter-file access probability by attribute filter",
        headers=("trace", *(label for label, _ in FILTERS)),
        rows=tuple(rows),
        notes=(
            "Paper claim: the unfiltered stream ('none') has the lowest "
            "probability in every trace; attributes contribute unevenly "
            "across traces. '-' = attribute unavailable in that trace."
        ),
        data={"matrix": data},
    )


EXPERIMENT = Experiment(
    experiment_id="fig1",
    paper_artifact="Figure 1",
    description="Successor predictability per attribute filter, 4 traces",
    run=run,
)
