"""Figure 3 — cache hit ratio vs ``max_strength`` for weight p ∈ {0, 0.3,
0.7, 1} on each trace.

Claims to reproduce: hit ratio decays as the validity threshold rises
past the typical correlation degree of true pairs; the blended weight
p = 0.7 gives the best (or tied-best) hit ratio at the paper's operating
point, and strictly beats both extremes (p = 0 ≙ Nexus ranking, p = 1 ≙
semantics only) on every path-bearing trace.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    mean,
    simulate,
)
from repro.traces.synthetic import TRACE_NAMES

__all__ = ["run", "EXPERIMENT", "WEIGHTS", "THRESHOLDS"]

WEIGHTS: tuple[float, ...] = (0.0, 0.3, 0.7, 1.0)
THRESHOLDS: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def run(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = TRACE_NAMES,
    thresholds: Sequence[float] = THRESHOLDS,
) -> ExperimentResult:
    """Sweep (trace × p × max_strength) and report hit ratios."""
    rows = []
    data: dict[str, dict[float, dict[float, float]]] = {}
    for trace in traces:
        per_weight: dict[float, dict[float, float]] = {}
        for p in WEIGHTS:
            series: dict[float, float] = {}
            for ms in thresholds:
                reports = simulate(
                    trace,
                    lambda: make_fpa(trace, weight_p=p, max_strength=ms),
                    n_events,
                    seeds,
                )
                series[ms] = mean([r.hit_ratio for r in reports])
            per_weight[p] = series
            rows.append(
                (
                    trace,
                    f"p={p:.1f}",
                    *(f"{series[ms] * 100:.1f}%" for ms in thresholds),
                )
            )
        data[trace] = per_weight
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3: hit ratio vs max_strength for weight p",
        headers=("trace", "weight", *(f"ms={ms:.1f}" for ms in thresholds)),
        rows=tuple(rows),
        notes=(
            "Paper claim: p=0.7 attains the best hit ratio (the blend "
            "beats sequence-only p=0 and semantics-only p=1); hit ratio "
            "falls as the threshold rises past the degree of true pairs."
        ),
        data={"matrix": data},
    )


EXPERIMENT = Experiment(
    experiment_id="fig3",
    paper_artifact="Figure 3",
    description="Hit ratio vs max_strength for p in {0,0.3,0.7,1}",
    run=run,
)
