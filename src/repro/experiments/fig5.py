"""Figure 5 (the attribute-combination table) — cache hit ratios with
different semantic-attribute combinations.

The paper enumerates 15 combinations of four attributes per trace (HP
uses File Path; INS/RES use File ID) and shows spreads of ~0.1–13 pp,
proving that attribute choice matters and differs per trace. We run the
FPA simulation per combination and report the same table.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from repro.experiments.common import (
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    mean,
    simulate,
)

__all__ = ["run", "EXPERIMENT", "combination_labels"]

_BASE = ("user", "process", "host")


def _combos_for(trace: str) -> list[tuple[str, ...]]:
    """All non-empty combinations of the trace's four attributes."""
    fourth = "path" if trace in ("hp", "llnl") else "file"
    attrs = (*_BASE, fourth)
    out: list[tuple[str, ...]] = []
    for r in range(1, len(attrs) + 1):
        out.extend(combinations(attrs, r))
    return out


def combination_labels(trace: str) -> list[str]:
    """Human-readable combination labels, paper style."""
    return ["{" + ", ".join(c) + "}" for c in _combos_for(trace)]


def run(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = ("hp", "ins", "res"),
) -> ExperimentResult:
    """Hit ratio per attribute combination per trace."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in traces:
        per_combo: dict[str, float] = {}
        for combo in _combos_for(trace):
            # INS/RES always carry dev alongside fid, as in the raw traces
            attrs = combo if trace in ("hp", "llnl") else (*combo, "dev")
            reports = simulate(
                trace,
                lambda: make_fpa(trace, attributes=attrs),
                n_events,
                seeds,
            )
            label = "{" + ", ".join(combo) + "}"
            per_combo[label] = mean([r.hit_ratio for r in reports])
            rows.append((trace, label, f"{per_combo[label] * 100:.2f}%"))
        data[trace] = per_combo
        spread = (max(per_combo.values()) - min(per_combo.values())) * 100
        rows.append((trace, "(spread best-worst)", f"{spread:.2f}pp"))
    return ExperimentResult(
        experiment_id="fig5",
        title="Figure 5 / Table 5: hit ratio per attribute combination",
        headers=("trace", "combination", "hit ratio"),
        rows=tuple(rows),
        notes=(
            "Paper claim: combinations differ by ~0.1-13 pp; the best "
            "combination differs per trace; HP benefits most from the "
            "path attribute, INS/RES fall back to file-id/device."
        ),
        data={"matrix": data},
    )


EXPERIMENT = Experiment(
    experiment_id="fig5",
    paper_artifact="Figure 5 (Table 5)",
    description="Hit ratio per semantic-attribute combination",
    run=run,
)
