"""Figure 6 — average response time vs ``max_strength`` (HP trace).

Claim to reproduce: response time is roughly stable for thresholds up to
≈0.4 and degrades beyond it — i.e. prefetching pairs with correlation
degree below 0.4 contributes nothing, and filtering valid pairs away
(threshold > 0.4) costs hits and therefore latency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    mean,
    simulate,
)

__all__ = ["run", "EXPERIMENT", "THRESHOLDS"]

THRESHOLDS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    trace: str = "hp",
    thresholds: Sequence[float] = THRESHOLDS,
) -> ExperimentResult:
    """Sweep the validity threshold and report mean response time."""
    rows = []
    series: dict[float, float] = {}
    for ms in thresholds:
        reports = simulate(
            trace, lambda: make_fpa(trace, max_strength=ms), n_events, seeds
        )
        rt = mean([r.mean_response_ms for r in reports])
        hit = mean([r.hit_ratio for r in reports])
        series[ms] = rt
        rows.append((f"{ms:.1f}", f"{rt:.3f}", f"{hit * 100:.1f}%"))
    return ExperimentResult(
        experiment_id="fig6",
        title=f"Figure 6: response time vs max_strength ({trace.upper()} trace)",
        headers=("max_strength", "mean response (ms)", "hit ratio"),
        rows=tuple(rows),
        notes=(
            "Paper claim: response time is stable below max_strength=0.4 "
            "and rises beyond it (valid correlations get filtered away)."
        ),
        data={"series": series},
    )


EXPERIMENT = Experiment(
    experiment_id="fig6",
    paper_artifact="Figure 6",
    description="Mean response time vs validity threshold (HP)",
    run=run,
)
