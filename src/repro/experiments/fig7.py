"""Figure 7 — cache hit ratio comparison: FPA vs Nexus vs LRU.

Claims to reproduce: FPA attains the highest hit ratio on every trace;
the improvement over Nexus is largest on the path-bearing HP trace
(paper: +13 pp) and smallest on the path-less RES trace (+3.1 pp in the
paper); prefetch accuracy is substantially higher for FPA (Table 3
measures 64% vs 43% on HP, reported alongside).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_EVENTS,
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    make_lru,
    make_nexus_prefetcher,
    mean,
    simulate,
)
from repro.traces.synthetic import TRACE_NAMES

__all__ = ["run", "EXPERIMENT"]


def run(
    n_events: int = DEFAULT_EVENTS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = TRACE_NAMES,
) -> ExperimentResult:
    """Hit ratio and prefetch accuracy per (trace, policy)."""
    rows = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for trace in traces:
        per_policy: dict[str, dict[str, float]] = {}
        for policy, factory in (
            ("FPA", lambda: make_fpa(trace)),
            ("Nexus", make_nexus_prefetcher),
            ("LRU", make_lru),
        ):
            reports = simulate(trace, factory, n_events, seeds)
            per_policy[policy] = {
                "hit_ratio": mean([r.hit_ratio for r in reports]),
                "accuracy": mean([r.prefetch_accuracy for r in reports]),
            }
        data[trace] = per_policy
        gain_nexus = (
            per_policy["FPA"]["hit_ratio"] - per_policy["Nexus"]["hit_ratio"]
        ) * 100
        gain_lru = (per_policy["FPA"]["hit_ratio"] - per_policy["LRU"]["hit_ratio"]) * 100
        for policy in ("FPA", "Nexus", "LRU"):
            stats = per_policy[policy]
            acc = stats["accuracy"]
            rows.append(
                (
                    trace,
                    policy,
                    f"{stats['hit_ratio'] * 100:.1f}%",
                    f"{acc * 100:.1f}%" if acc == acc else "-",
                )
            )
        rows.append(
            (trace, "(FPA gain)", f"+{gain_nexus:.1f}pp vs Nexus", f"+{gain_lru:.1f}pp vs LRU")
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="Figure 7: cache hit ratio comparison (FPA / Nexus / LRU)",
        headers=("trace", "policy", "hit ratio", "prefetch accuracy"),
        rows=tuple(rows),
        notes=(
            "Paper claim: FPA has the highest hit ratio on every trace "
            "(+13pp vs Nexus on HP, +7.8 INS, +3.1 RES) with markedly "
            "higher prefetch accuracy."
        ),
        data={"matrix": data},
    )


EXPERIMENT = Experiment(
    experiment_id="fig7",
    paper_artifact="Figure 7",
    description="Hit-ratio comparison FPA vs Nexus vs LRU, 4 traces",
    run=run,
)
