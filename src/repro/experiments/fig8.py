"""Figure 8 — metadata-server response time: FPA vs Nexus vs LRU.

Claims to reproduce: FPA reduces mean response time on the LLNL, RES and
HP traces; the paper headline is "approximately 24–35%" — up to ~24%
against Nexus and up to ~35% against LRU.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_EVENTS,
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    make_lru,
    make_nexus_prefetcher,
    mean,
    simulate,
)

__all__ = ["run", "EXPERIMENT"]


def run(
    n_events: int = DEFAULT_EVENTS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    traces: Sequence[str] = ("llnl", "res", "hp"),
) -> ExperimentResult:
    """Mean response time per (trace, policy) plus FPA's relative gains."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in traces:
        rts: dict[str, float] = {}
        for policy, factory in (
            ("FPA", lambda: make_fpa(trace)),
            ("Nexus", make_nexus_prefetcher),
            ("LRU", make_lru),
        ):
            reports = simulate(trace, factory, n_events, seeds)
            rts[policy] = mean([r.mean_response_ms for r in reports])
        data[trace] = rts
        vs_nexus = (1.0 - rts["FPA"] / rts["Nexus"]) * 100
        vs_lru = (1.0 - rts["FPA"] / rts["LRU"]) * 100
        rows.append(
            (
                trace,
                f"{rts['FPA']:.3f}",
                f"{rts['Nexus']:.3f}",
                f"{rts['LRU']:.3f}",
                f"-{vs_nexus:.1f}%",
                f"-{vs_lru:.1f}%",
            )
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Figure 8: mean response time (ms) — FPA / Nexus / LRU",
        headers=("trace", "FPA", "Nexus", "LRU", "FPA vs Nexus", "FPA vs LRU"),
        rows=tuple(rows),
        notes=(
            "Paper claim: FPA cuts MDS latency by up to ~24% vs Nexus and "
            "~35% vs LRU across these traces."
        ),
        data={"matrix": data},
    )


EXPERIMENT = Experiment(
    experiment_id="fig8",
    paper_artifact="Figure 8",
    description="Mean response time comparison (LLNL/RES/HP)",
    run=run,
)
