"""§4.2 — correlation-directed file data layout on the OSD.

Mines a trace with FARMER, groups read-only correlated files into
contiguous extents, then replays batched reads (each demand file plus its
prefetch group) and compares seeks/latency against arrival-order
placement. Claim to reproduce: grouping turns scattered reads into
sequential runs, cutting seeks per batch substantially.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.layout import (
    evaluate_layout,
    plan_arrival_layout,
    plan_correlation_layout,
)
from repro.core.farmer import Farmer
from repro.experiments.common import (
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    cached_trace,
    farmer_config_for,
    mean,
)
from repro.traces.synthetic import make_workload

__all__ = ["run", "EXPERIMENT"]


def run(
    n_events: int = 4000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    trace: str = "hp",
    group_limit: int = 8,
) -> ExperimentResult:
    """Compare correlation-directed vs arrival-order layout."""
    seek_ratios = []
    lat_ratios = []
    per_seed_rows = []
    for seed in seeds:
        records = cached_trace(trace, n_events, seed)
        workload = make_workload(trace, seed=seed)
        read_only = {
            f.fid for f in workload.namespace.files() if f.read_only
        }
        sizes = {f.fid: max(1024, f.size) for f in workload.namespace.files()}

        farmer = Farmer(farmer_config_for(trace))
        farmer.mine(records)

        order = [r.fid for r in records]
        batches = []
        for r in records:
            group = [r.fid, *farmer.predict(r.fid)]
            if len(group) > 1:
                batches.append(group)
        arrival = evaluate_layout(plan_arrival_layout(order), batches, sizes)
        correlated = evaluate_layout(
            plan_correlation_layout(
                order, farmer, lambda fid: fid in read_only, group_limit=group_limit
            ),
            batches,
            sizes,
        )
        seek_ratio = correlated.total_seeks / max(1, arrival.total_seeks)
        lat_ratio = correlated.total_latency_ns / max(1, arrival.total_latency_ns)
        seek_ratios.append(seek_ratio)
        lat_ratios.append(lat_ratio)
        per_seed_rows.append(
            (
                seed,
                f"{arrival.mean_seeks_per_batch:.2f}",
                f"{correlated.mean_seeks_per_batch:.2f}",
                f"{(1 - seek_ratio) * 100:.1f}%",
                f"{(1 - lat_ratio) * 100:.1f}%",
            )
        )
    rows = tuple(per_seed_rows) + (
        (
            "mean",
            "-",
            "-",
            f"{(1 - mean(seek_ratios)) * 100:.1f}%",
            f"{(1 - mean(lat_ratios)) * 100:.1f}%",
        ),
    )
    return ExperimentResult(
        experiment_id="layout",
        title=f"§4.2: correlation-directed layout ({trace.upper()})",
        headers=(
            "seed",
            "seeks/batch (arrival)",
            "seeks/batch (grouped)",
            "seek reduction",
            "latency reduction",
        ),
        rows=rows,
        notes=(
            "Paper claim (§4.2): grouping correlated read-only files "
            "turns random I/O into sequential batches."
        ),
        data={"seek_ratio": mean(seek_ratios), "latency_ratio": mean(lat_ratios)},
    )


EXPERIMENT = Experiment(
    experiment_id="layout",
    paper_artifact="§4.2",
    description="Correlation-directed data layout vs arrival order",
    run=run,
)
