"""Experiment registry: every paper artifact mapped to runnable code."""

from __future__ import annotations

from repro.errors import UnknownExperimentError
from repro.experiments import ablations, extensions, fig1, fig3, fig5, fig6, fig7, fig8
from repro.experiments import layout_experiment, service_experiment, table2, table3, table4
from repro.experiments import tiering_experiment
from repro.experiments.common import Experiment, ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment", "experiment_ids"]

EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        fig1.EXPERIMENT,
        fig3.EXPERIMENT,
        fig5.EXPERIMENT,
        fig6.EXPERIMENT,
        fig7.EXPERIMENT,
        fig8.EXPERIMENT,
        table2.EXPERIMENT,
        table3.EXPERIMENT,
        table4.EXPERIMENT,
        ablations.EXPERIMENT_DPA_IPA,
        ablations.EXPERIMENT_LDA,
        ablations.EXPERIMENT_SV_POLICY,
        layout_experiment.EXPERIMENT,
        extensions.EXPERIMENT_PREDICTORS,
        extensions.EXPERIMENT_REGRESSION,
        service_experiment.EXPERIMENT,
        tiering_experiment.EXPERIMENT,
    )
}


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment.

    Raises:
        UnknownExperimentError: for ids not in the registry.
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run an experiment by id with optional overrides."""
    return get_experiment(experiment_id).run(**kwargs)
