"""Extension experiment: the sharded mining service in the cluster sim.

For each MDS count, replay the same trace through (a) the single global
FARMER engine every server shares (the seed architecture), (b) the
sharded service with one co-located miner shard per server, dropping
cross-server candidates, and (c) the sharded service with
*cluster-routed prefetch*: cross-server candidates are forwarded to the
owning MDS's prefetch queue (bounded per request) instead of dropped.
The global engine's Correlator Lists span the whole namespace, so most
of its prefetch candidates belong to *other* servers — queued locally,
they miss the local KV shard and fizzle as redundant loads. The
per-shard views spend the same prefetch budget only on fids their
server stores; routing then recovers the cross-server share of that
benefit, which shows up as a strictly higher hit ratio than the drop
variant at the same per-request candidate budget and queue limits.

At the largest MDS count the experiment also runs the *replicated*
variant — the same sharded engine with one warm standby per shard
(``FarmerConfig.replication``) — whose hit ratio must equal the
unreplicated sharded run exactly (standby upkeep is transparent to
mining results; only the mining-side sync cost differs), and measures
failover directly on the mining service: each shard is killed and its
standby promoted, reporting recovery time and the standby-sync
overhead ratio (both also recorded by ``benchmarks/bench_service.py``
into ``BENCH_service.json``).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.farmer import Farmer
from repro.experiments.common import (
    Experiment,
    ExperimentResult,
    cached_trace,
    farmer_config_for,
    mean,
    sim_config_for,
)
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import run_simulation
from repro.storage.prefetch import FarmerPrefetcher, ShardedFarmerPrefetcher

__all__ = ["run", "failover_metrics", "EXPERIMENT"]

MDS_COUNTS = (1, 2, 4)


def _sharded_engine(
    trace: str, n_shards: int, replication: bool = False
) -> ShardedFarmerPrefetcher:
    """A fresh sharded engine with one miner shard per MDS."""
    return ShardedFarmerPrefetcher(
        ShardedFarmer(
            farmer_config_for(
                trace, n_shards=n_shards, replication=replication
            )
        )
    )


def failover_metrics(
    trace: str, n_events: int, seed: int, n_shards: int = 4
) -> dict[str, float]:
    """Kill-and-promote each shard of a mined replicated service.

    Returns the mean promotion time (the partition's unavailability
    window once failure is detected), the mean re-protection time, and
    the standby-sync overhead: replicated over unreplicated wall time
    for the same batch mine.
    """
    records = cached_trace(trace, n_events, seed)
    base = farmer_config_for(
        trace, n_shards=n_shards, standby_sync_interval=max(1, n_events // 8)
    )
    ShardedFarmer(base).mine(records)  # warm-up (allocator, caches)
    start = time.perf_counter()
    ShardedFarmer(base).mine(records)
    plain_s = time.perf_counter() - start
    start = time.perf_counter()
    service = ShardedFarmer(base.with_(replication=True)).mine(records)
    replicated_s = time.perf_counter() - start
    promote_times = []
    reseed_times = []
    for index in range(n_shards):
        service.fail_shard(index)
        report = service.promote_standby(index)
        promote_times.append(report.promote_s)
        reseed_times.append(report.reseed_s)
    return {
        "promote_s": mean(promote_times),
        "reseed_s": mean(reseed_times),
        "sync_overhead_ratio": replicated_s / plain_s if plain_s > 0 else 1.0,
        "n_standby_syncs": float(service.stats().n_standby_syncs),
    }


def run(
    n_events: int = 5000,
    seeds: Sequence[int] = (1,),
    trace: str = "hp",
    cache_capacity: int = 24,
) -> ExperimentResult:
    """Global single miner vs co-located miner shards (candidate-drop
    and cluster-routed), per MDS count.

    ``cache_capacity`` defaults below the per-trace operating point:
    with n_mds caches the aggregate capacity grows with the cluster, so
    a smaller per-server cache keeps prefetching consequential.
    """
    rows = []
    data: dict[str, dict[str, float]] = {}
    largest = max(MDS_COUNTS)
    for n_mds in MDS_COUNTS:
        for label, factory, routed in (
            (
                "global",
                lambda: FarmerPrefetcher(Farmer(farmer_config_for(trace))),
                False,
            ),
            ("sharded", lambda n=n_mds: _sharded_engine(trace, n), False),
            ("routed", lambda n=n_mds: _sharded_engine(trace, n), True),
            (
                "replicated",
                lambda n=n_mds: _sharded_engine(trace, n, replication=True),
                False,
            ),
        ):
            if n_mds == 1 and label != "global":
                continue  # identical to global by construction
            if label == "replicated" and n_mds != largest:
                continue  # transparency shown once, at the widest scale
            reports = []
            for seed in seeds:
                records = cached_trace(trace, n_events, seed)
                config = sim_config_for(
                    trace,
                    seed=seed,
                    n_mds=n_mds,
                    cache_capacity=cache_capacity,
                    routed_prefetch=routed,
                )
                reports.append(run_simulation(records, factory(), config))
            key = f"{label}@{n_mds}"
            data[key] = {
                "hit_ratio": mean([r.hit_ratio for r in reports]),
                "issued": mean([r.prefetch_issued for r in reports]),
                "used": mean([r.prefetch_used for r in reports]),
                "redundant": mean([r.prefetch_redundant for r in reports]),
                "forwarded": mean([r.prefetch_forwarded for r in reports]),
                "mean_response_us": mean(
                    [r.mean_response_ns / 1e3 for r in reports]
                ),
            }
            d = data[key]
            rows.append(
                (
                    n_mds,
                    label,
                    f"{d['hit_ratio']:.3f}",
                    f"{d['issued']:.0f}",
                    f"{d['used']:.0f}",
                    f"{d['redundant']:.0f}",
                    f"{d['forwarded']:.0f}",
                    f"{d['mean_response_us']:.1f}",
                )
            )
    data["failover"] = failover_metrics(trace, n_events, seeds[0])
    return ExperimentResult(
        experiment_id="ext_sharding",
        title=(
            f"Sharded mining service vs global miner "
            f"('{trace}' x{n_events}, per-server cache {cache_capacity})"
        ),
        headers=(
            "n_mds",
            "miner",
            "hit ratio",
            "pf issued",
            "pf used",
            "pf redundant",
            "pf forwarded",
            "mean resp us",
        ),
        rows=tuple(rows),
        notes=(
            "sharded = one co-located miner shard per MDS (cross-server "
            "candidates dropped); routed = same engine, cross-server "
            "candidates forwarded to the owning MDS's prefetch queue "
            "(SimulationConfig.routed_prefetch, default forward budget); "
            "global = every server drives one shared Farmer. Redundant "
            "prefetches under the global engine are dominated by "
            "cross-server candidates that miss the local KV shard; "
            "routing turns those into owner-side loads, lifting the hit "
            "ratio above the drop variant at the same per-request "
            "candidate budget and queue limits. replicated = the sharded "
            "engine with one warm standby per shard: hit ratio equals the "
            "unreplicated run (standby sync is transparent to mining "
            "results); data['failover'] reports mean promote/reseed time "
            "per shard and the standby-sync wall-clock overhead ratio."
        ),
        data=data,
    )


EXPERIMENT = Experiment(
    experiment_id="ext_sharding",
    paper_artifact="extension (HUSt Figure 4 at n_mds > 1)",
    description=(
        "co-located miner shards (drop vs routed prefetch) vs one global "
        "engine in the cluster sim"
    ),
    run=run,
)
