"""Extension experiment: the sharded mining service in the cluster sim.

For each MDS count, replay the same trace through (a) the single global
FARMER engine every server shares (the seed architecture), (b) the
sharded service with one co-located miner shard per server, dropping
cross-server candidates, and (c) the sharded service with
*cluster-routed prefetch*: cross-server candidates are forwarded to the
owning MDS's prefetch queue (bounded per request) instead of dropped.
The global engine's Correlator Lists span the whole namespace, so most
of its prefetch candidates belong to *other* servers — queued locally,
they miss the local KV shard and fizzle as redundant loads. The
per-shard views spend the same prefetch budget only on fids their
server stores; routing then recovers the cross-server share of that
benefit, which shows up as a strictly higher hit ratio than the drop
variant at the same per-request candidate budget and queue limits.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.farmer import Farmer
from repro.experiments.common import (
    Experiment,
    ExperimentResult,
    cached_trace,
    farmer_config_for,
    mean,
    sim_config_for,
)
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import run_simulation
from repro.storage.prefetch import FarmerPrefetcher, ShardedFarmerPrefetcher

__all__ = ["run", "EXPERIMENT"]

MDS_COUNTS = (1, 2, 4)


def _sharded_engine(trace: str, n_shards: int) -> ShardedFarmerPrefetcher:
    """A fresh sharded engine with one miner shard per MDS."""
    return ShardedFarmerPrefetcher(
        ShardedFarmer(farmer_config_for(trace, n_shards=n_shards))
    )


def run(
    n_events: int = 5000,
    seeds: Sequence[int] = (1,),
    trace: str = "hp",
    cache_capacity: int = 24,
) -> ExperimentResult:
    """Global single miner vs co-located miner shards (candidate-drop
    and cluster-routed), per MDS count.

    ``cache_capacity`` defaults below the per-trace operating point:
    with n_mds caches the aggregate capacity grows with the cluster, so
    a smaller per-server cache keeps prefetching consequential.
    """
    rows = []
    data: dict[str, dict[str, float]] = {}
    for n_mds in MDS_COUNTS:
        for label, factory, routed in (
            (
                "global",
                lambda: FarmerPrefetcher(Farmer(farmer_config_for(trace))),
                False,
            ),
            ("sharded", lambda n=n_mds: _sharded_engine(trace, n), False),
            ("routed", lambda n=n_mds: _sharded_engine(trace, n), True),
        ):
            if n_mds == 1 and label != "global":
                continue  # identical to global by construction
            reports = []
            for seed in seeds:
                records = cached_trace(trace, n_events, seed)
                config = sim_config_for(
                    trace,
                    seed=seed,
                    n_mds=n_mds,
                    cache_capacity=cache_capacity,
                    routed_prefetch=routed,
                )
                reports.append(run_simulation(records, factory(), config))
            key = f"{label}@{n_mds}"
            data[key] = {
                "hit_ratio": mean([r.hit_ratio for r in reports]),
                "issued": mean([r.prefetch_issued for r in reports]),
                "used": mean([r.prefetch_used for r in reports]),
                "redundant": mean([r.prefetch_redundant for r in reports]),
                "forwarded": mean([r.prefetch_forwarded for r in reports]),
                "mean_response_us": mean(
                    [r.mean_response_ns / 1e3 for r in reports]
                ),
            }
            d = data[key]
            rows.append(
                (
                    n_mds,
                    label,
                    f"{d['hit_ratio']:.3f}",
                    f"{d['issued']:.0f}",
                    f"{d['used']:.0f}",
                    f"{d['redundant']:.0f}",
                    f"{d['forwarded']:.0f}",
                    f"{d['mean_response_us']:.1f}",
                )
            )
    return ExperimentResult(
        experiment_id="ext_sharding",
        title=(
            f"Sharded mining service vs global miner "
            f"('{trace}' x{n_events}, per-server cache {cache_capacity})"
        ),
        headers=(
            "n_mds",
            "miner",
            "hit ratio",
            "pf issued",
            "pf used",
            "pf redundant",
            "pf forwarded",
            "mean resp us",
        ),
        rows=tuple(rows),
        notes=(
            "sharded = one co-located miner shard per MDS (cross-server "
            "candidates dropped); routed = same engine, cross-server "
            "candidates forwarded to the owning MDS's prefetch queue "
            "(SimulationConfig.routed_prefetch, default forward budget); "
            "global = every server drives one shared Farmer. Redundant "
            "prefetches under the global engine are dominated by "
            "cross-server candidates that miss the local KV shard; "
            "routing turns those into owner-side loads, lifting the hit "
            "ratio above the drop variant at the same per-request "
            "candidate budget and queue limits."
        ),
        data=data,
    )


EXPERIMENT = Experiment(
    experiment_id="ext_sharding",
    paper_artifact="extension (HUSt Figure 4 at n_mds > 1)",
    description=(
        "co-located miner shards (drop vs routed prefetch) vs one global "
        "engine in the cluster sim"
    ),
    run=run,
)
