"""Table 2 — the DPA vs IPA worked example, reproduced exactly.

The paper's Table 1 defines three requests (user1/p1/host1 touching
``/home/user1/paper/a``, etc.) and Table 2 derives their pairwise
semantic distances under both path algorithms:

    DPA: sim(A,B) = 5/7,  sim(A,C) = 1/7,  sim(B,C) = 1/7
    IPA: sim(A,B) = 2.75/4, sim(A,C) = 0.25/4, sim(B,C) = 0.25/4

This experiment recomputes all six numbers from the library's similarity
code — the only experiment where the paper's *absolute* values must be
matched digit for digit.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.extractor import Extractor
from repro.experiments.common import Experiment, ExperimentResult
from repro.traces.record import TraceRecord
from repro.vsm.similarity import dpa_similarity, ipa_similarity
from repro.vsm.vocabulary import Vocabulary

__all__ = ["run", "EXPERIMENT", "paper_records"]

# Table 1 of the paper, transcribed. uid/pid/host values are interned
# stand-ins for user1/p1/host1 etc.
_TABLE1 = (
    ("A", TraceRecord(ts=0, fid=0, uid=1, pid=1, host=1, path="/home/user1/paper/a")),
    ("B", TraceRecord(ts=1, fid=1, uid=1, pid=2, host=1, path="/home/user1/paper/b")),
    ("C", TraceRecord(ts=2, fid=2, uid=2, pid=3, host=2, path="/home/user2/c")),
)

EXPECTED = {
    ("dpa", "A", "B"): Fraction(5, 7),
    ("dpa", "A", "C"): Fraction(1, 7),
    ("dpa", "B", "C"): Fraction(1, 7),
    ("ipa", "A", "B"): Fraction(11, 16),  # 2.75 / 4
    ("ipa", "A", "C"): Fraction(1, 16),  # 0.25 / 4
    ("ipa", "B", "C"): Fraction(1, 16),  # 0.25 / 4
}


def paper_records() -> dict[str, TraceRecord]:
    """The three Table 1 example requests keyed by their paper label."""
    return {label: record for label, record in _TABLE1}


def run() -> ExperimentResult:
    """Recompute Table 2 and check every cell against the paper."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    vectors = {label: extractor.extract(rec) for label, rec in _TABLE1}
    rows = []
    all_match = True
    for method, fn in (("dpa", dpa_similarity), ("ipa", ipa_similarity)):
        for a, b in (("A", "B"), ("A", "C"), ("B", "C")):
            got = fn(vectors[a], vectors[b])
            want = float(EXPECTED[(method, a, b)])
            ok = abs(got - want) < 1e-12
            all_match &= ok
            rows.append(
                (
                    method.upper(),
                    f"sim({a},{b})",
                    f"{got:.4f}",
                    f"{want:.4f}",
                    "exact" if ok else "MISMATCH",
                )
            )
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: DPA vs IPA worked example",
        headers=("algorithm", "pair", "computed", "paper", "status"),
        rows=tuple(rows),
        notes=(
            "All six values must match the paper exactly (5/7, 1/7, "
            "2.75/4, 0.25/4)."
            + ("" if all_match else "  *** MISMATCH DETECTED ***")
        ),
        data={"all_match": all_match},
    )


EXPERIMENT = Experiment(
    experiment_id="table2",
    paper_artifact="Table 2",
    description="Exact DPA/IPA similarity worked example",
    run=run,
)
