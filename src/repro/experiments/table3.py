"""Table 3 — prefetch accuracy on the HP trace: FARMER vs Nexus.

Paper values: FARMER 64.04%, Nexus 43.04%. Claim to reproduce: FPA's
accuracy exceeds Nexus's by a wide margin (≈15+ pp) because the validity
threshold removes weakly-correlated candidates before they pollute the
cache.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    DEFAULT_EVENTS,
    DEFAULT_SEEDS,
    Experiment,
    ExperimentResult,
    make_fpa,
    make_nexus_prefetcher,
    mean,
    simulate,
)

__all__ = ["run", "EXPERIMENT"]

PAPER = {"FARMER": 0.6404, "Nexus": 0.4304}


def run(
    n_events: int = DEFAULT_EVENTS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    trace: str = "hp",
) -> ExperimentResult:
    """Measure prefetch accuracy for both systems on HP."""
    rows = []
    measured: dict[str, float] = {}
    for policy, factory in (
        ("FARMER", lambda: make_fpa(trace)),
        ("Nexus", make_nexus_prefetcher),
    ):
        reports = simulate(trace, factory, n_events, seeds)
        acc = mean([r.prefetch_accuracy for r in reports])
        measured[policy] = acc
        rows.append(
            (policy, f"{acc * 100:.2f}%", f"{PAPER[policy] * 100:.2f}%")
        )
    gap = (measured["FARMER"] - measured["Nexus"]) * 100
    rows.append(("(gap)", f"{gap:.1f}pp", "21.0pp"))
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: prefetch accuracy ({trace.upper()} trace)",
        headers=("system", "measured", "paper"),
        rows=tuple(rows),
        notes=(
            "Paper claim: ~64% of FPA predictions are correct vs ~43% for "
            "Nexus. Absolute values depend on the trace; the gap is the "
            "reproduced quantity."
        ),
        data={"measured": measured},
    )


EXPERIMENT = Experiment(
    experiment_id="table3",
    paper_artifact="Table 3",
    description="Prefetch accuracy FARMER vs Nexus (HP)",
    run=run,
)
