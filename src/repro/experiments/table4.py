"""Table 4 — FARMER's space overhead per trace (max_strength = 0.4).

Paper values (MB): LLNL 98.4, INS 1.4, RES 2.5, HP 9.8 — i.e. bounded by
~100 MB even on the 46.5M-event LLNL trace, thanks to the threshold
filtering that keeps Correlator Lists short.

Our traces are thousodands of times smaller than the originals, so we
report (a) the measured footprint at the experiment scale and (b) a
linear per-file extrapolation to each original trace's file population,
plus the structural quantities (lists, entries, bytes/file) that drive
the paper's ordering LLNL ≫ HP > RES > INS.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.farmer import Farmer
from repro.experiments.common import (
    DEFAULT_EVENTS,
    Experiment,
    ExperimentResult,
    cached_trace,
    farmer_config_for,
)
from repro.traces.synthetic import TRACE_NAMES

__all__ = ["run", "EXPERIMENT", "PAPER_MB"]

PAPER_MB = {"llnl": 98.4, "ins": 1.4, "res": 2.5, "hp": 9.8}

# Approximate active-file populations of the original traces, used for
# the per-file extrapolation column. LLNL: hundreds of thousands of
# per-rank files across 46.5M events; INS/RES: small workstation pools;
# HP: a 500GB time-sharing server. Note our per-file footprint is Python
# objects (~3KB/file) versus the paper's C structs in Berkeley DB
# (~100-250 bytes/file), so extrapolations land roughly an order of
# magnitude above the paper's MB while preserving the ordering.
ORIGINAL_FILES = {"llnl": 400_000, "ins": 30_000, "res": 80_000, "hp": 250_000}


def run(
    n_events: int = DEFAULT_EVENTS, seeds: Sequence[int] = (1,)
) -> ExperimentResult:
    """Mine each trace and account FARMER's footprint."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for trace in TRACE_NAMES:
        records = cached_trace(trace, n_events, seeds[0])
        # stamps off: Table 4 accounts the paper's reference model; the
        # incremental re-rank memo is a speed-for-memory trade (~one
        # stamp per retained edge) measured by the perf benchmarks, not
        # part of the paper's footprint claim
        farmer = Farmer(
            farmer_config_for(trace, max_strength=0.4, incremental_rerank=False)
        )
        farmer.mine(records)
        stats = farmer.stats()
        bytes_per_file = stats.memory_bytes / max(1, stats.n_files)
        extrapolated_mb = bytes_per_file * ORIGINAL_FILES[trace] / 1e6
        data[trace] = {
            "measured_mb": stats.memory_megabytes,
            "bytes_per_file": bytes_per_file,
            "extrapolated_mb": extrapolated_mb,
            "n_files": stats.n_files,
            "n_entries": stats.n_entries,
        }
        rows.append(
            (
                trace,
                stats.n_files,
                stats.n_entries,
                f"{stats.memory_megabytes:.2f}",
                f"{bytes_per_file:.0f}",
                f"{extrapolated_mb:.1f}",
                f"{PAPER_MB[trace]:.1f}",
            )
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Table 4: FARMER space overhead (max_strength = 0.4)",
        headers=(
            "trace",
            "files",
            "list entries",
            "measured MB",
            "bytes/file",
            "extrapolated MB",
            "paper MB",
        ),
        rows=tuple(rows),
        notes=(
            "Paper claim: overhead stays under ~100 MB because the "
            "validity threshold bounds Correlator Lists. Our traces are "
            "far smaller; the extrapolation column scales bytes/file to "
            "the original populations and must preserve the ordering "
            "LLNL >> HP > RES > INS and the <100MB LLNL bound's order of "
            "magnitude."
        ),
        data={"matrix": data},
    )


EXPERIMENT = Experiment(
    experiment_id="table4",
    paper_artifact="Table 4",
    description="FARMER memory overhead per trace",
    run=run,
)
