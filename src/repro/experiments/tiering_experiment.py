"""Extension experiment: correlation-driven tiered storage showdown.

The paper's core claim is that *semantic* correlation beats pure
temporal locality. Prefetching tests that claim at the metadata cache;
this experiment tests it in a **placement** setting: each metadata
server fronts its objects with a capacity-bounded fast tier
(:mod:`repro.storage.tiering`), and three policies compete for the fast
slots at equal tier budgets —

* ``lru`` (recency) and ``lfu`` (frequency), the temporal-locality
  baselines every tiered-storage system ships;
* ``correlated``, which co-promotes the accessed file's top mined
  correlators (FARMER's Correlator Lists, routed cross-server through
  the placement-hint seam).

The sweep covers the HP trace at several tier fractions on a 4-MDS
cluster, and the ``workloads/`` planted-truth scenarios, where the
*oracle* variant — the correlated policy reading the planted answer key
instead of the miner — bounds how much fast-hit ratio perfect
correlation knowledge could buy (run at one MDS so truth correlators
are never dropped for being remote). The headline column is the
fast-hit ratio: the fraction of demand reads served from the fast tier,
measured over every demand request so the denominator is identical
across policies.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    Experiment,
    ExperimentResult,
    cached_trace,
    farmer_config_for,
    mean,
)
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import SimulationConfig, run_simulation
from repro.storage.metrics import SimulationReport
from repro.storage.prefetch import ShardedFarmerPrefetcher
from repro.storage.tiering import CorrelatedTierPolicy
from repro.traces.record import TraceRecord
from repro.workloads.scenario import SCENARIO_NAMES, TruthSet, make_scenario

__all__ = [
    "run",
    "tiered_report",
    "cached_scenario",
    "EXPERIMENT",
    "TIER_POLICY_NAMES",
    "HP_FRACTIONS",
    "SCENARIO_FRACTION",
]

TIER_POLICY_NAMES = ("lru", "lfu", "correlated")
#: HP-trace tier budgets swept (fraction of each server's objects)
HP_FRACTIONS = (0.05, 0.1, 0.2)
#: the single budget used for the scenario showdown and oracle bound
SCENARIO_FRACTION = 0.1

_SCENARIO_CACHE: dict[tuple[str, int, int], tuple[list[TraceRecord], TruthSet]] = {}


def cached_scenario(
    name: str, n_events: int, seed: int
) -> tuple[list[TraceRecord], TruthSet]:
    """Generate-or-reuse a planted-truth scenario stream."""
    key = (name, n_events, seed)
    cached = _SCENARIO_CACHE.get(key)
    if cached is None:
        instance = make_scenario(name, seed=seed)
        cached = (instance.generate(n_events), instance.truth)
        if len(_SCENARIO_CACHE) > 24:
            _SCENARIO_CACHE.clear()
        _SCENARIO_CACHE[key] = cached
    return cached


def _engine(trace: str, n_mds: int) -> ShardedFarmerPrefetcher:
    """A fresh FPA engine with one miner shard per MDS."""
    return ShardedFarmerPrefetcher(
        ShardedFarmer(farmer_config_for(trace, n_shards=n_mds))
    )


def tiered_report(
    records: Sequence[TraceRecord],
    policy: str,
    tier_fraction: float,
    *,
    n_mds: int = 4,
    tier_k: int = 4,
    seed: int = 0,
    cache_capacity: int = 64,
    truth: TruthSet | None = None,
    trace: str = "hp",
) -> SimulationReport:
    """One tiered simulation run; ``truth`` switches the correlated
    policy's candidate source from the miner to the planted answer key
    (the oracle)."""
    config = SimulationConfig(
        n_mds=n_mds,
        seed=seed,
        cache_capacity=cache_capacity,
        tiering=policy,
        tier_fraction=tier_fraction,
        tier_k=tier_k,
    )
    factory = None
    if truth is not None:
        answers = truth

        def factory(capacity: int) -> CorrelatedTierPolicy:
            return CorrelatedTierPolicy(
                capacity, k=tier_k, source=lambda fid: answers.top(fid, tier_k)
            )

    return run_simulation(
        records, _engine(trace, n_mds), config, tier_policy_factory=factory
    )


def _metrics(reports: Sequence[SimulationReport]) -> dict[str, float]:
    return {
        "fast_hit_ratio": mean([r.fast_hit_ratio for r in reports]),
        "promotions": mean([r.tier_promotions for r in reports]),
        "co_promotions": mean([r.tier_co_promotions for r in reports]),
        "demotions": mean([r.tier_demotions for r in reports]),
        "hints": mean([r.tier_hints_forwarded for r in reports]),
        "mean_response_us": mean([r.mean_response_ns / 1e3 for r in reports]),
    }


def _row(workload: str, frac: float, policy: str, d: dict[str, float]) -> tuple:
    return (
        workload,
        f"{frac:.2f}",
        policy,
        f"{d['fast_hit_ratio']:.3f}",
        f"{d['promotions']:.0f}",
        f"{d['co_promotions']:.0f}",
        f"{d['demotions']:.0f}",
        f"{d['hints']:.0f}",
        f"{d['mean_response_us']:.1f}",
    )


def run(
    n_events: int = 2500,
    seeds: Sequence[int] = (1,),
    trace: str = "hp",
    n_mds: int = 4,
    tier_k: int = 4,
    scenarios: Sequence[str] = SCENARIO_NAMES,
) -> ExperimentResult:
    """Policy × tier-budget sweep on the HP trace plus the scenario
    showdown and the oracle placement-headroom bound."""
    rows = []
    data: dict[str, dict] = {}

    hp: dict[str, dict[str, dict[str, float]]] = {}
    for frac in HP_FRACTIONS:
        hp[f"{frac:.2f}"] = {}
        for policy in TIER_POLICY_NAMES:
            reports = [
                tiered_report(
                    cached_trace(trace, n_events, seed),
                    policy,
                    frac,
                    n_mds=n_mds,
                    tier_k=tier_k,
                    seed=seed,
                    trace=trace,
                )
                for seed in seeds
            ]
            d = _metrics(reports)
            hp[f"{frac:.2f}"][policy] = d
            rows.append(_row(f"{trace}@{n_mds}", frac, policy, d))
    data[trace] = hp

    scen: dict[str, dict[str, dict[str, float]]] = {}
    for name in scenarios:
        scen[name] = {}
        for policy in TIER_POLICY_NAMES:
            reports = []
            for seed in seeds:
                records, _ = cached_scenario(name, n_events, seed)
                reports.append(
                    tiered_report(
                        records,
                        policy,
                        SCENARIO_FRACTION,
                        n_mds=n_mds,
                        tier_k=tier_k,
                        seed=seed,
                    )
                )
            d = _metrics(reports)
            scen[name][policy] = d
            rows.append(_row(name, SCENARIO_FRACTION, policy, d))
    data["scenarios"] = scen

    # oracle headroom: mined vs planted-truth candidates, one MDS so no
    # truth correlator is ever dropped for living on another server
    oracle: dict[str, dict[str, float]] = {}
    for name in scenarios:
        records, truth = cached_scenario(name, n_events, seeds[0])
        mined = tiered_report(
            records,
            "correlated",
            SCENARIO_FRACTION,
            n_mds=1,
            tier_k=tier_k,
            seed=seeds[0],
        )
        bound = tiered_report(
            records,
            "correlated",
            SCENARIO_FRACTION,
            n_mds=1,
            tier_k=tier_k,
            seed=seeds[0],
            truth=truth,
        )
        oracle[name] = {
            "mined": mined.fast_hit_ratio,
            "oracle": bound.fast_hit_ratio,
            "headroom": bound.fast_hit_ratio - mined.fast_hit_ratio,
        }
        rows.append(
            (
                name,
                f"{SCENARIO_FRACTION:.2f}",
                "oracle@1",
                f"{bound.fast_hit_ratio:.3f}",
                "-",
                "-",
                "-",
                "-",
                f"{bound.mean_response_ns / 1e3:.1f}",
            )
        )
    data["oracle"] = oracle

    return ExperimentResult(
        experiment_id="ext_tiering",
        title=(
            f"Tiered storage: correlated placement vs LRU/LFU "
            f"('{trace}'@{n_mds}MDS + scenarios, x{n_events})"
        ),
        headers=(
            "workload",
            "tier frac",
            "policy",
            "fast hit",
            "promos",
            "co-promos",
            "demos",
            "hints",
            "mean resp us",
        ),
        rows=tuple(rows),
        notes=(
            "fast hit = demand reads served from the fast tier over all "
            "demand reads (same denominator for every policy). "
            "correlated co-promotes the accessed file's top mined "
            "correlators (cross-server via placement hints); lru/lfu "
            "see only the demand stream. oracle@1 = the correlated "
            "policy reading the planted truth instead of the miner, on "
            "one MDS — the placement headroom bound; data['oracle'] "
            "holds mined/oracle/headroom per scenario."
        ),
        data=data,
    )


EXPERIMENT = Experiment(
    experiment_id="ext_tiering",
    paper_artifact="extension (correlation-driven placement; ROADMAP item 5)",
    description="Tier-placement showdown: correlated vs LRU/LFU + oracle bound",
    run=run,
)
