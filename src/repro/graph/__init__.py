"""Correlation-graph substrate: LDA weighting, the directed weighted
access graph and the sorted Correlator Lists."""

from repro.graph.correlation_graph import CorrelationGraph, EdgeStats, NodeState
from repro.graph.correlator_list import CorrelatorEntry, CorrelatorList
from repro.graph.lda import lda_weight, uniform_weight, weight_schedule

__all__ = [
    "CorrelationGraph",
    "EdgeStats",
    "NodeState",
    "CorrelatorEntry",
    "CorrelatorList",
    "lda_weight",
    "uniform_weight",
    "weight_schedule",
]
