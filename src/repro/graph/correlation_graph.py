"""The directed, weighted file-correlation graph (paper §3.1 Stage 2).

Nodes are files; a directed edge A→B accumulates the LDA-weighted count
of "B followed A within the look-ahead window". Each node also tracks its
raw access count ``N_A`` so the access frequency ``F(A,B) = N_AB / N_A``
(§3.2.2) can be read off an edge at any time.

To keep the footprint bounded on adversarial streams (and to reproduce
the paper's small-memory claim honestly) each node's successor table has
a configurable capacity; when full, the weakest edge is evicted. The
paper's filtering makes strong edges keep growing, so eviction converges
to the truly correlated set.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.graph.lda import lda_weight

__all__ = ["EdgeStats", "NodeState", "CorrelationGraph"]


@dataclass(slots=True)
class EdgeStats:
    """Accumulated statistics of one directed edge A→B."""

    weighted_count: float = 0.0
    raw_count: int = 0
    last_distance: int = 0

    def approx_bytes(self) -> int:
        """Approximate resident size of the edge record."""
        return 48

    def clone(self) -> "EdgeStats":
        """An independent copy (the standby-replication ship unit)."""
        return EdgeStats(
            weighted_count=self.weighted_count,
            raw_count=self.raw_count,
            last_distance=self.last_distance,
        )


@dataclass(slots=True)
class NodeState:
    """Per-file graph state: access count, successor table and a change
    tick that advances whenever either mutates (the miner compares ticks
    to skip re-evaluating files whose graph state is unchanged)."""

    access_count: int = 0
    successors: dict[int, EdgeStats] = field(default_factory=dict)
    change_tick: int = 0

    def approx_bytes(self) -> int:
        """Approximate resident size of this node and its edges."""
        return 80 + sum(104 + e.approx_bytes() for e in self.successors.values())

    def clone(self) -> "NodeState":
        """A deep, independent copy of the node and its edge records.

        Shard replication *copies* state where rebalance migration
        *moves* it: the primary keeps mutating its node, so the standby
        must hold its own edge objects, not aliases.
        """
        return NodeState(
            access_count=self.access_count,
            successors={fid: e.clone() for fid, e in self.successors.items()},
            change_tick=self.change_tick,
        )


class CorrelationGraph:
    """Online directed weighted graph over file ids."""

    def __init__(
        self,
        window: int = 4,
        decrement: float = 0.1,
        successor_capacity: int = 32,
        weight_fn=lda_weight,
    ) -> None:
        if window < 1:
            raise ConfigError("window must be >= 1")
        if successor_capacity < 1:
            raise ConfigError("successor_capacity must be >= 1")
        self.window = window
        self.decrement = decrement
        self.successor_capacity = successor_capacity
        self._weight_fn = weight_fn
        # distances are bounded by the window, so the schedule collapses
        # to a lookup table — no weight-fn call on the per-edge hot path
        self._weights: tuple[float, ...] = tuple(
            weight_fn(d, decrement) for d in range(1, window + 1)
        )
        self._nodes: dict[int, NodeState] = {}
        # sliding window of the last `window` fids; maxlen makes append
        # O(1) with automatic expiry (no list.pop(0) churn)
        self._recent: deque[int] = deque(maxlen=window)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def observe(self, fid: int) -> list[int]:
        """Feed one access; returns the predecessor fids whose edge sets
        were updated (the miner re-evaluates exactly those).

        The new access becomes a successor (at its respective distance) of
        every distinct file currently in the sliding window; self edges
        are skipped.
        """
        nodes = self._nodes
        node = nodes.get(fid)
        if node is None:
            node = NodeState()
            nodes[fid] = node
        node.access_count += 1
        node.change_tick += 1

        touched: list[int] = []
        weights = self._weights
        capacity = self.successor_capacity
        # walk the window back-to-front: nearest predecessor has distance 1
        # (touched doubles as the seen-set: the window holds ≤ `window`
        # entries, and list containment beats a set allocation there)
        for distance, pred in enumerate(reversed(self._recent), start=1):
            if pred == fid or pred in touched:
                continue
            # inlined _add_edge — this loop body runs per (window, record)
            pnode = nodes.get(pred)
            if pnode is None:  # pred seen only through the window
                pnode = NodeState()
                nodes[pred] = pnode
            pnode.change_tick += 1
            successors = pnode.successors
            edge = successors.get(fid)
            if edge is None:
                if len(successors) >= capacity:
                    self._evict_weakest(pnode)
                edge = EdgeStats()
                successors[fid] = edge
            edge.weighted_count += weights[distance - 1]
            edge.raw_count += 1
            edge.last_distance = distance
            touched.append(pred)
        self._recent.append(fid)
        return touched

    def _add_edge(self, src: int, dst: int, distance: int) -> None:
        node = self._nodes.get(src)
        if node is None:  # src seen only through the window (shouldn't happen)
            node = NodeState()
            self._nodes[src] = node
        node.change_tick += 1
        edge = node.successors.get(dst)
        if edge is None:
            if len(node.successors) >= self.successor_capacity:
                self._evict_weakest(node)
            edge = EdgeStats()
            node.successors[dst] = edge
        edge.weighted_count += self._weights[distance - 1]
        edge.raw_count += 1
        edge.last_distance = distance

    @staticmethod
    def _evict_weakest(node: NodeState) -> None:
        victim = weakest = None
        for fid, edge in node.successors.items():
            if weakest is None or edge.weighted_count < weakest:
                weakest = edge.weighted_count
                victim = fid
        del node.successors[victim]

    # ------------------------------------------------------------------
    # migration (the shard-rebalancing seam)
    # ------------------------------------------------------------------

    def pop_node(self, fid: int) -> NodeState | None:
        """Detach and return a node (``None`` if absent).

        The node object ships to another graph via :meth:`adopt_node`;
        edges *into* the popped fid from other nodes are left behind (on
        the source shard they become halo edges nobody queries). The
        sliding window is not scrubbed: if the fid lingers there, a
        subsequent observation recreates a fresh (halo) node, which is
        exactly what happens to any foreign fid seen through the window.
        """
        return self._nodes.pop(fid, None)

    def adopt_node(self, fid: int, node: NodeState) -> None:
        """Install a node migrated from another graph, replacing any
        halo node this graph accumulated for the fid (the migrated node
        is the authoritative one — it came from the fid's owner)."""
        self._nodes[fid] = node

    def adopt_window(self, fids: Iterable[int]) -> None:
        """Replace the sliding window with ``fids`` (oldest first).

        Standby replication uses this to carry the primary's window
        across a sync barrier, so a promoted standby resumes mining with
        the same predecessor context the failed primary had (contents
        beyond the window length are truncated to the newest entries,
        matching ``deque(maxlen=window)`` semantics).
        """
        self._recent = deque(fids, maxlen=self.window)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def access_count(self, fid: int) -> int:
        """Raw access count ``N_A`` of a file (0 if never seen)."""
        node = self._nodes.get(fid)
        return node.access_count if node else 0

    def change_tick(self, fid: int) -> int:
        """Monotonic per-node change tick (0 if never seen).

        Advances every time the node's access count or successor table
        mutates, so a consumer holding the tick it last evaluated at can
        tell in O(1) whether re-evaluation could possibly change anything.
        """
        node = self._nodes.get(fid)
        return node.change_tick if node else 0

    def successors(self, fid: int) -> dict[int, EdgeStats]:
        """Successor table of a file (live view; empty dict if none)."""
        node = self._nodes.get(fid)
        return node.successors if node else {}

    def node_map(self) -> dict[int, NodeState]:
        """The live ``fid → NodeState`` dict — the re-rank kernel's read
        view (one lookup yields successors, access count and change tick
        together). Treat strictly as read-only; writes go through
        :meth:`observe`."""
        return self._nodes

    def frequency(self, src: int, dst: int) -> float:
        """Access frequency ``F(src, dst) = N_AB / N_A`` (0.0 if absent).

        ``N_AB`` is the LDA-weighted successor count, ``N_A`` the raw
        access count of ``src``, per §3.2.2.
        """
        node = self._nodes.get(src)
        if node is None or node.access_count == 0:
            return 0.0
        edge = node.successors.get(dst)
        if edge is None:
            return 0.0
        return min(1.0, edge.weighted_count / node.access_count)

    def frequencies(self, src: int) -> dict[int, float]:
        """``F(src, ·)`` for every successor of ``src``."""
        node = self._nodes.get(src)
        if node is None or node.access_count == 0:
            return {}
        n = node.access_count
        return {
            dst: min(1.0, e.weighted_count / n) for dst, e in node.successors.items()
        }

    def n_nodes(self) -> int:
        """Number of distinct files observed."""
        return len(self._nodes)

    def n_edges(self) -> int:
        """Number of directed edges currently retained."""
        return sum(len(n.successors) for n in self._nodes.values())

    def nodes(self) -> list[int]:
        """All file ids present in the graph."""
        return list(self._nodes)

    def window_contents(self) -> tuple[int, ...]:
        """Current sliding-window contents, oldest first (diagnostics)."""
        return tuple(self._recent)

    def approx_bytes(self) -> int:
        """Approximate resident size of the whole graph."""
        return 64 + sum(104 + n.approx_bytes() for n in self._nodes.values())
