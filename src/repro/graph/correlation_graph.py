"""The directed, weighted file-correlation graph (paper §3.1 Stage 2).

Nodes are files; a directed edge A→B accumulates the LDA-weighted count
of "B followed A within the look-ahead window". Each node also tracks its
raw access count ``N_A`` so the access frequency ``F(A,B) = N_AB / N_A``
(§3.2.2) can be read off an edge at any time.

To keep the footprint bounded on adversarial streams (and to reproduce
the paper's small-memory claim honestly) each node's successor table has
a configurable capacity; when full, the weakest edge is evicted. The
paper's filtering makes strong edges keep growing, so eviction converges
to the truly correlated set.

Array-backed successor layout
-----------------------------

A node's successor table is stored as parallel flat arrays (stdlib
``array`` — pure-python complete, zero-copy viewable by numpy) in
insertion order, plus a ``fid → slot`` index:

* ``succ_fids``    (int64)   — successor fids;
* ``succ_weights`` (float64) — LDA-weighted counts ``N_xy``;
* ``succ_raw``     (int64)   — raw co-occurrence counts;
* ``succ_last``    (int64)   — last observed window distance.

The layout buys three things. Re-rank kernels read a node's whole
candidate set as contiguous slices (the "array" kernel hands
``succ_weights`` straight to numpy). ``clone`` / ``pop_node`` /
``adopt_node`` — the rebalance-migration and standby-sync ship units —
are four C-level array copies instead of a per-edge object walk. And
membership changes are observable in O(1): ``succ_version`` bumps on
every add/evict, so two nodes (or a node and a recorded snapshot) with
equal ``succ_version`` provably hold the same fids in the same slots,
which is what lets :meth:`NodeState.copy_stats_from` refresh a standby
replica by in-place slice assignment (a memcpy per array).

Eviction preserves the historical tie-break exactly: the victim is the
*first* minimum-weight slot in insertion order (what the previous
dict-backed scan chose), removed with ``del`` so insertion order — and
therefore every downstream iteration order — is unchanged. The weakest
edge is almost always a recently added one, so the shift-down and index
repair touch the array tail, not the whole node.

``EdgeStats`` survives as the per-edge *view* type:
:meth:`CorrelationGraph.successors` materialises a plain
``fid → EdgeStats`` dict on demand for diagnostic and reference-path
consumers. Mutations still go through :meth:`CorrelationGraph.observe`.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.graph.lda import lda_weight

__all__ = ["EdgeStats", "NodeState", "CorrelationGraph"]


@dataclass(slots=True)
class EdgeStats:
    """Read view of one directed edge A→B (see module docstring: the
    authoritative storage is the owning node's parallel arrays)."""

    weighted_count: float = 0.0
    raw_count: int = 0
    last_distance: int = 0

    def approx_bytes(self) -> int:
        """Approximate resident size of the edge record."""
        return 48

    def clone(self) -> "EdgeStats":
        """An independent copy."""
        return EdgeStats(
            weighted_count=self.weighted_count,
            raw_count=self.raw_count,
            last_distance=self.last_distance,
        )


class NodeState:
    """Per-file graph state: access count, array-backed successor table
    and a change tick that advances whenever either mutates (the miner
    compares ticks to skip re-evaluating files whose graph state is
    unchanged). ``succ_version`` advances only on successor *membership*
    changes (add/evict), never on in-place weight updates."""

    __slots__ = (
        "access_count",
        "change_tick",
        "succ_version",
        "succ_fids",
        "succ_weights",
        "succ_raw",
        "succ_last",
        "_slots",
    )

    def __init__(self) -> None:
        self.access_count = 0
        self.change_tick = 0
        self.succ_version = 0
        self.succ_fids = array("q")
        self.succ_weights = array("d")
        self.succ_raw = array("q")
        self.succ_last = array("q")
        self._slots: dict[int, int] = {}

    @property
    def successors(self) -> dict[int, EdgeStats]:
        """The successor table as a freshly built ``fid → EdgeStats``
        dict, in insertion order (a *snapshot* — mutating the returned
        edge objects does not write back to the node)."""
        return {
            fid: EdgeStats(w, raw, last)
            for fid, w, raw, last in zip(
                self.succ_fids, self.succ_weights, self.succ_raw, self.succ_last
            )
        }

    def slot_of(self, fid: int) -> int | None:
        """Array slot of successor ``fid`` (None if absent)."""
        return self._slots.get(fid)

    def evict_weakest(self) -> int:
        """Drop the first minimum-weight successor in insertion order
        (the historical dict-scan tie-break) and return its fid."""
        weights = self.succ_weights
        victim = 0
        weakest = weights[0]
        for i in range(1, len(weights)):
            w = weights[i]
            if w < weakest:
                weakest = w
                victim = i
        fids = self.succ_fids
        slots = self._slots
        del slots[fids[victim]]
        del fids[victim]
        del weights[victim]
        del self.succ_raw[victim]
        del self.succ_last[victim]
        # repair the index for the shifted tail (the weakest edge is
        # usually young, so the tail is short)
        for i in range(victim, len(fids)):
            slots[fids[i]] = i
        self.succ_version += 1
        return victim

    def copy_stats_from(self, other: "NodeState") -> None:
        """In-place refresh from ``other``, which must hold the *same
        successor membership* (equal ``succ_version`` — the caller's
        contract): counters copied, per-edge arrays overwritten by slice
        assignment (a memcpy each). This is the standby-sync delta path:
        no allocation, no index rebuild."""
        self.access_count = other.access_count
        self.change_tick = other.change_tick
        self.succ_weights[:] = other.succ_weights
        self.succ_raw[:] = other.succ_raw
        self.succ_last[:] = other.succ_last

    def approx_bytes(self) -> int:
        """Approximate resident size of this node and its edge arrays."""
        # 4 array objects + slots-dict entries + 32 payload bytes/edge
        return 80 + 4 * 64 + 136 * len(self.succ_fids)

    def clone(self) -> "NodeState":
        """A deep, independent copy of the node and its edge arrays.

        Shard replication *copies* state where rebalance migration
        *moves* it: the primary keeps mutating its node, so the standby
        must hold its own arrays, not aliases. With the flat layout this
        is four C-level array copies plus one dict copy.
        """
        new = NodeState.__new__(NodeState)
        new.access_count = self.access_count
        new.change_tick = self.change_tick
        new.succ_version = self.succ_version
        new.succ_fids = self.succ_fids[:]
        new.succ_weights = self.succ_weights[:]
        new.succ_raw = self.succ_raw[:]
        new.succ_last = self.succ_last[:]
        new._slots = self._slots.copy()
        return new

    # explicit pickle support: __slots__ classes have no __dict__, and the
    # process-backend runner ships nodes to its workers per dispatch
    def __getstate__(self):
        return (
            self.access_count,
            self.change_tick,
            self.succ_version,
            self.succ_fids,
            self.succ_weights,
            self.succ_raw,
            self.succ_last,
            self._slots,
        )

    def __setstate__(self, state) -> None:
        (
            self.access_count,
            self.change_tick,
            self.succ_version,
            self.succ_fids,
            self.succ_weights,
            self.succ_raw,
            self.succ_last,
            self._slots,
        ) = state


class CorrelationGraph:
    """Online directed weighted graph over file ids."""

    def __init__(
        self,
        window: int = 4,
        decrement: float = 0.1,
        successor_capacity: int = 32,
        weight_fn=lda_weight,
    ) -> None:
        if window < 1:
            raise ConfigError("window must be >= 1")
        if successor_capacity < 1:
            raise ConfigError("successor_capacity must be >= 1")
        self.window = window
        self.decrement = decrement
        self.successor_capacity = successor_capacity
        self._weight_fn = weight_fn
        # distances are bounded by the window, so the schedule collapses
        # to a lookup table — no weight-fn call on the per-edge hot path
        self._weights: tuple[float, ...] = tuple(
            weight_fn(d, decrement) for d in range(1, window + 1)
        )
        self._nodes: dict[int, NodeState] = {}
        # sliding window of the last `window` fids; maxlen makes append
        # O(1) with automatic expiry (no list.pop(0) churn)
        self._recent: deque[int] = deque(maxlen=window)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def observe(self, fid: int) -> list[int]:
        """Feed one access; returns the predecessor fids whose edge sets
        were updated (the miner re-evaluates exactly those).

        The new access becomes a successor (at its respective distance) of
        every distinct file currently in the sliding window; self edges
        are skipped.
        """
        nodes = self._nodes
        node = nodes.get(fid)
        if node is None:
            node = NodeState()
            nodes[fid] = node
        node.access_count += 1
        node.change_tick += 1

        touched: list[int] = []
        weights = self._weights
        capacity = self.successor_capacity
        # walk the window back-to-front: nearest predecessor has distance 1
        # (touched doubles as the seen-set: the window holds ≤ `window`
        # entries, and list containment beats a set allocation there)
        for distance, pred in enumerate(reversed(self._recent), start=1):
            if pred == fid or pred in touched:
                continue
            pnode = nodes.get(pred)
            if pnode is None:  # pred seen only through the window
                pnode = NodeState()
                nodes[pred] = pnode
            pnode.change_tick += 1
            slot = pnode._slots.get(fid)
            if slot is None:
                if len(pnode.succ_fids) >= capacity:
                    pnode.evict_weakest()
                pnode._slots[fid] = len(pnode.succ_fids)
                pnode.succ_fids.append(fid)
                pnode.succ_weights.append(weights[distance - 1])
                pnode.succ_raw.append(1)
                pnode.succ_last.append(distance)
                pnode.succ_version += 1
            else:
                pnode.succ_weights[slot] += weights[distance - 1]
                pnode.succ_raw[slot] += 1
                pnode.succ_last[slot] = distance
            touched.append(pred)
        self._recent.append(fid)
        return touched

    def observe_batch(self, fids: list[int]) -> set[int]:
        """Feed a whole batch of accesses; returns every touched fid
        (the observed files plus every predecessor whose edges changed).

        Semantically identical to calling :meth:`observe` per fid — the
        batch form exists because ``Farmer.ingest`` is the throughput
        path: the sliding window is walked over the batch list itself
        (seeded with the current window) instead of mutating the deque
        per record, and the per-record bookkeeping is hoisted.
        """
        nodes = self._nodes
        get = nodes.get
        weights = self._weights
        capacity = self.successor_capacity
        window = self.window
        seq = list(self._recent)
        start = len(seq)
        seq += fids
        touched: set[int] = set()
        add_touched = touched.add
        local: list[int] = []  # per-record seen-set (≤ window entries)
        for i in range(start, len(seq)):
            fid = seq[i]
            node = get(fid)
            if node is None:
                node = NodeState()
                nodes[fid] = node
            node.access_count += 1
            node.change_tick += 1
            add_touched(fid)
            lo = i - window
            if lo < 0:
                lo = 0
            local.clear()
            for j in range(i - 1, lo - 1, -1):
                pred = seq[j]
                if pred == fid or pred in local:
                    continue
                pnode = get(pred)
                if pnode is None:
                    pnode = NodeState()
                    nodes[pred] = pnode
                pnode.change_tick += 1
                slot = pnode._slots.get(fid)
                if slot is None:
                    if len(pnode.succ_fids) >= capacity:
                        pnode.evict_weakest()
                    pnode._slots[fid] = len(pnode.succ_fids)
                    pnode.succ_fids.append(fid)
                    pnode.succ_weights.append(weights[i - j - 1])
                    pnode.succ_raw.append(1)
                    pnode.succ_last.append(i - j)
                    pnode.succ_version += 1
                else:
                    pnode.succ_weights[slot] += weights[i - j - 1]
                    pnode.succ_raw[slot] += 1
                    pnode.succ_last[slot] = i - j
                local.append(pred)
                add_touched(pred)
        self._recent = deque(seq[-window:], maxlen=window)
        return touched

    # ------------------------------------------------------------------
    # migration (the shard-rebalancing seam)
    # ------------------------------------------------------------------

    def pop_node(self, fid: int) -> NodeState | None:
        """Detach and return a node (``None`` if absent).

        The node object ships to another graph via :meth:`adopt_node`;
        edges *into* the popped fid from other nodes are left behind (on
        the source shard they become halo edges nobody queries). The
        sliding window is not scrubbed: if the fid lingers there, a
        subsequent observation recreates a fresh (halo) node, which is
        exactly what happens to any foreign fid seen through the window.
        """
        return self._nodes.pop(fid, None)

    def adopt_node(self, fid: int, node: NodeState) -> None:
        """Install a node migrated from another graph, replacing any
        halo node this graph accumulated for the fid (the migrated node
        is the authoritative one — it came from the fid's owner)."""
        self._nodes[fid] = node

    def adopt_window(self, fids: Iterable[int]) -> None:
        """Replace the sliding window with ``fids`` (oldest first).

        Standby replication uses this to carry the primary's window
        across a sync barrier, so a promoted standby resumes mining with
        the same predecessor context the failed primary had (contents
        beyond the window length are truncated to the newest entries,
        matching ``deque(maxlen=window)`` semantics).
        """
        self._recent = deque(fids, maxlen=self.window)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def access_count(self, fid: int) -> int:
        """Raw access count ``N_A`` of a file (0 if never seen)."""
        node = self._nodes.get(fid)
        return node.access_count if node else 0

    def change_tick(self, fid: int) -> int:
        """Monotonic per-node change tick (0 if never seen).

        Advances every time the node's access count or successor table
        mutates, so a consumer holding the tick it last evaluated at can
        tell in O(1) whether re-evaluation could possibly change anything.
        """
        node = self._nodes.get(fid)
        return node.change_tick if node else 0

    def successors(self, fid: int) -> dict[int, EdgeStats]:
        """Successor table of a file as a ``fid → EdgeStats`` snapshot
        in insertion order (empty dict if none). Built on demand from
        the node's arrays — a read view, not the storage."""
        node = self._nodes.get(fid)
        return node.successors if node else {}

    def node_map(self) -> dict[int, NodeState]:
        """The live ``fid → NodeState`` dict — the re-rank kernel's read
        view (one lookup yields successor arrays, access count and change
        tick together). Treat strictly as read-only; writes go through
        :meth:`observe`."""
        return self._nodes

    def frequency(self, src: int, dst: int) -> float:
        """Access frequency ``F(src, dst) = N_AB / N_A`` (0.0 if absent).

        ``N_AB`` is the LDA-weighted successor count, ``N_A`` the raw
        access count of ``src``, per §3.2.2.
        """
        node = self._nodes.get(src)
        if node is None or node.access_count == 0:
            return 0.0
        slot = node._slots.get(dst)
        if slot is None:
            return 0.0
        return min(1.0, node.succ_weights[slot] / node.access_count)

    def frequencies(self, src: int) -> dict[int, float]:
        """``F(src, ·)`` for every successor of ``src``."""
        node = self._nodes.get(src)
        if node is None or node.access_count == 0:
            return {}
        n = node.access_count
        return {
            dst: min(1.0, w / n)
            for dst, w in zip(node.succ_fids, node.succ_weights)
        }

    def n_nodes(self) -> int:
        """Number of distinct files observed."""
        return len(self._nodes)

    def n_edges(self) -> int:
        """Number of directed edges currently retained."""
        return sum(len(n.succ_fids) for n in self._nodes.values())

    def nodes(self) -> list[int]:
        """All file ids present in the graph."""
        return list(self._nodes)

    def window_contents(self) -> tuple[int, ...]:
        """Current sliding-window contents, oldest first (diagnostics)."""
        return tuple(self._recent)

    def approx_bytes(self) -> int:
        """Approximate resident size of the whole graph."""
        return 64 + sum(104 + n.approx_bytes() for n in self._nodes.values())
