"""Correlator Lists (paper §3.1 Stage 3/4).

Every file with at least one valid successor owns a Correlator List: the
successor fids paired with their correlation degree, kept sorted in
decreasing degree so the head of the list is always the strongest
correlate. Entries whose degree does not exceed the validity threshold
(``max_strength``) are filtered out at update time — this is FARMER's
memory-bounding mechanism (§3.3) as well as its prefetch-accuracy
mechanism (§4.1).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CorrelatorEntry", "CorrelatorList"]


@dataclass(frozen=True, slots=True)
class CorrelatorEntry:
    """One (successor, degree) pair in a Correlator List."""

    fid: int
    degree: float


class CorrelatorList:
    """Sorted, thresholded, capacity-bounded successor list.

    Maintained as a list sorted by decreasing degree (ties broken by fid
    for determinism). ``update`` inserts or re-ranks a successor; entries
    at or below the threshold are rejected/dropped.
    """

    __slots__ = ("threshold", "capacity", "_entries", "_degrees")

    def __init__(self, threshold: float = 0.0, capacity: int = 16) -> None:
        if capacity < 1:
            raise ConfigError("correlator capacity must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.capacity = capacity
        self._entries: list[CorrelatorEntry] = []
        self._degrees: dict[int, float] = {}

    def update(self, fid: int, degree: float) -> bool:
        """Insert or re-rank ``fid`` with a new degree.

        Returns True if the fid is in the list afterwards. A degree at or
        below the threshold removes an existing entry (a correlation can
        decay below validity as frequencies shift).
        """
        old = self._degrees.get(fid)
        if old is not None:
            if old == degree:
                return True
            self._remove(fid, old)
        if degree <= self.threshold:
            return False
        self._degrees[fid] = degree
        # sort key: descending degree, ascending fid
        insort(self._entries, CorrelatorEntry(fid, degree), key=lambda e: (-e.degree, e.fid))
        if len(self._entries) > self.capacity:
            victim = self._entries.pop()
            del self._degrees[victim.fid]
            return victim.fid != fid
        return True

    def _remove(self, fid: int, degree: float) -> None:
        del self._degrees[fid]
        # locate by linear scan from the sorted position neighbourhood;
        # lists are small (capacity ≤ dozens) so a scan is fine.
        for i, entry in enumerate(self._entries):
            if entry.fid == fid:
                self._entries.pop(i)
                return

    def discard(self, fid: int) -> None:
        """Remove ``fid`` if present."""
        old = self._degrees.get(fid)
        if old is not None:
            self._remove(fid, old)

    def degree_of(self, fid: int) -> float | None:
        """Degree of ``fid`` or None if not listed."""
        return self._degrees.get(fid)

    def top(self, k: int) -> list[CorrelatorEntry]:
        """The ``k`` strongest correlates (fewer if the list is shorter)."""
        return self._entries[:k]

    def entries(self) -> list[CorrelatorEntry]:
        """All entries, strongest first (a copy)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fid: int) -> bool:
        return fid in self._degrees

    def __iter__(self):
        return iter(self._entries)

    def is_sorted(self) -> bool:
        """Invariant check used by tests: strictly non-increasing degrees."""
        return all(
            self._entries[i].degree >= self._entries[i + 1].degree
            for i in range(len(self._entries) - 1)
        )

    def approx_bytes(self) -> int:
        """Approximate resident size (entries + index)."""
        return 96 + 48 * len(self._entries) + 104 * len(self._degrees)
