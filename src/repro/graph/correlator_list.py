"""Correlator Lists (paper §3.1 Stage 3/4).

Every file with at least one valid successor owns a Correlator List: the
successor fids paired with their correlation degree, kept sorted in
decreasing degree so the head of the list is always the strongest
correlate. Entries whose degree does not exceed the validity threshold
(``max_strength``) are filtered out at update time — this is FARMER's
memory-bounding mechanism (§3.3) as well as its prefetch-accuracy
mechanism (§4.1).

Two maintenance paths:

* :meth:`update` — insert/re-rank one successor by binary insertion
  (the eager single-edge refresh path);
* :meth:`rebuild` — replace the whole list from a candidate set in one
  pass (single sort + threshold/capacity cut, O(d log d)). This is the
  Algorithm-1 re-rank kernel: offering every candidate through
  ``update`` performs d binary insertions plus d dict removals for the
  same final state, so the bulk path is both asymptotically and
  constant-factor cheaper.

Both paths agree exactly: the retained set is the top-``capacity``
candidates by ``(-degree, fid)`` among those strictly above the
threshold (streaming insert-then-evict-weakest keeps precisely the k
best seen, independent of offer order).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import nsmallest
from typing import NamedTuple

from repro.errors import ConfigError

try:  # numpy is optional: only the array re-rank kernel needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = ["CorrelatorEntry", "CorrelatorList"]

# Below this many above-threshold candidates a full C sort beats a heap
# partial-select (or an argpartition round-trip through numpy), so the
# partial paths only engage past it. Any value preserves exact output.
_PARTIAL_SELECT_MIN = 64


def _sort_key(entry: "CorrelatorEntry") -> tuple[float, int]:
    """Ranking key: decreasing degree, ties broken by ascending fid."""
    return (-entry.degree, entry.fid)


class CorrelatorEntry(NamedTuple):
    """One (successor, degree) pair in a Correlator List.

    A NamedTuple rather than a dataclass: the bulk rebuild constructs
    one per candidate on the hottest loop in the system, and tuple
    construction is measurably cheaper than frozen-dataclass
    ``object.__setattr__`` initialisation.
    """

    fid: int
    degree: float


class CorrelatorList:
    """Sorted, thresholded, capacity-bounded successor list.

    Maintained as a list sorted by decreasing degree (ties broken by fid
    for determinism). ``update`` inserts or re-ranks a successor; entries
    at or below the threshold are rejected/dropped.
    """

    __slots__ = ("threshold", "capacity", "insort_ops", "_entries", "_degrees")

    def __init__(self, threshold: float = 0.0, capacity: int = 16) -> None:
        if capacity < 1:
            raise ConfigError("correlator capacity must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.capacity = capacity
        # sorted insertions performed so far (the op-count benchmarks
        # assert the bulk rebuild path keeps this flat)
        self.insort_ops = 0
        self._entries: list[CorrelatorEntry] = []
        self._degrees: dict[int, float] = {}

    def update(self, fid: int, degree: float) -> bool:
        """Insert or re-rank ``fid`` with a new degree.

        Returns True if the fid is in the list afterwards. A degree at or
        below the threshold removes an existing entry (a correlation can
        decay below validity as frequencies shift).
        """
        old = self._degrees.get(fid)
        if old is not None:
            if old == degree:
                return True
            self._remove(fid, old)
        if degree <= self.threshold:
            return False
        self._degrees[fid] = degree
        self.insort_ops += 1
        insort(self._entries, CorrelatorEntry(fid, degree), key=_sort_key)
        if len(self._entries) > self.capacity:
            victim = self._entries.pop()
            del self._degrees[victim.fid]
            return victim.fid != fid
        return True

    def rebuild(self, candidates) -> None:
        """Replace the whole list from ``(fid, degree)`` candidates.

        One pass: threshold filter, a single sort by the ranking key,
        capacity cut. Candidates must have unique fids. The result is
        identical to offering every candidate through :meth:`update` on
        an empty list, without the per-entry binary insertions.

        When many more candidates survive the threshold than fit the
        capacity, a heap partial-select (``heapq.nsmallest``) replaces
        the full sort — O(d log k) instead of O(d log d), same exact
        result (``nsmallest(k, keyed)`` ≡ ``sorted(keyed)[:k]`` and the
        ``(-degree, fid)`` keys are unique).
        """
        threshold = self.threshold
        capacity = self.capacity
        # rank raw (-degree, fid) tuples: native tuple comparison in C,
        # no per-entry key-function call (exact sign-flip round-trips)
        keyed = [
            (-degree, fid) for fid, degree in candidates if degree > threshold
        ]
        if len(keyed) > capacity and len(keyed) >= _PARTIAL_SELECT_MIN:
            keyed = nsmallest(capacity, keyed)
        else:
            keyed.sort()
            del keyed[capacity:]
        self._entries = [CorrelatorEntry(fid, -neg) for neg, fid in keyed]
        self._degrees = {fid: -neg for neg, fid in keyed}

    def rebuild_arrays(self, fids, degrees) -> None:
        """:meth:`rebuild` over parallel numpy arrays (the array-kernel
        path): ``fids`` int64 and ``degrees`` float64, same exact output
        as ``rebuild(zip(fids, degrees))``.

        Past the partial-select cutoff the capacity cut runs as an
        ``np.partition`` on the negated degrees with explicit boundary
        handling — the strictly-better prefix is kept wholesale and the
        boundary-degree ties are filled by ascending fid, which is
        precisely the ``(-degree, fid)`` order a full sort would use.
        """
        np = _np
        neg = -degrees
        mask = degrees > self.threshold
        if not mask.all():
            neg = neg[mask]
            fids = fids[mask]
        n = len(neg)
        if n == 0:
            self._entries = []
            self._degrees = {}
            return
        capacity = self.capacity
        if n > capacity and n >= _PARTIAL_SELECT_MIN:
            kth = np.partition(neg, capacity - 1)[capacity - 1]
            better = neg < kth
            n_better = int(np.count_nonzero(better))
            need = capacity - n_better
            tie_fids = fids[neg == kth]
            if need < len(tie_fids):
                # break boundary ties by ascending fid (fids are unique)
                tie_fids = np.partition(tie_fids, need - 1)[:need]
            neg = np.concatenate([neg[better], np.full(len(tie_fids), kth)])
            fids = np.concatenate([fids[better], tie_fids])
            n = len(neg)
        order = np.lexsort((fids, neg))
        if n > capacity:
            order = order[:capacity]
        pairs = list(zip(fids[order].tolist(), (-neg[order]).tolist()))
        self._entries = [CorrelatorEntry(f, d) for f, d in pairs]
        self._degrees = dict(pairs)

    def _remove(self, fid: int, degree: float) -> None:
        del self._degrees[fid]
        # the (degree, fid) pair pins the victim's exact slot in the
        # sorted order, so bisect lands on it directly
        entries = self._entries
        i = bisect_left(entries, (-degree, fid), key=_sort_key)
        if i < len(entries) and entries[i].fid == fid:
            entries.pop(i)

    def discard(self, fid: int) -> None:
        """Remove ``fid`` if present."""
        old = self._degrees.get(fid)
        if old is not None:
            self._remove(fid, old)

    def degree_of(self, fid: int) -> float | None:
        """Degree of ``fid`` or None if not listed."""
        return self._degrees.get(fid)

    def top(self, k: int) -> list[CorrelatorEntry]:
        """The ``k`` strongest correlates (fewer if the list is shorter)."""
        return self._entries[:k]

    def entries(self) -> list[CorrelatorEntry]:
        """All entries, strongest first (a copy)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fid: int) -> bool:
        return fid in self._degrees

    def __iter__(self):
        return iter(self._entries)

    def clone(self) -> "CorrelatorList":
        """An independent copy with the same entries and counters.

        Entries are immutable NamedTuples, so a shallow container copy
        is a full copy; ``insort_ops`` carries over so op accounting on
        a promoted standby continues from the primary's count.
        """
        new = CorrelatorList(threshold=self.threshold, capacity=self.capacity)
        new.insort_ops = self.insort_ops
        new._entries = list(self._entries)
        new._degrees = dict(self._degrees)
        return new

    def is_sorted(self) -> bool:
        """Invariant check used by tests: strictly non-increasing degrees."""
        return all(
            self._entries[i].degree >= self._entries[i + 1].degree
            for i in range(len(self._entries) - 1)
        )

    def approx_bytes(self) -> int:
        """Approximate resident size (entries + index)."""
        return 96 + 48 * len(self._entries) + 104 * len(self._degrees)
