"""Linear Decremented Assignment (LDA) — the paper's §3.2.2 weighting.

When file A is followed by B, C, D within the look-ahead window, the
successors are not equally important: the paper (following Nexus) adds
1.0 to ``N_AB`` for the immediate successor, 0.9 for distance 2, 0.8 for
distance 3, and so on. This module provides that weight schedule plus a
uniform alternative used by the Probability-Graph baseline and the LDA
ablation bench.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["lda_weight", "uniform_weight", "weight_schedule"]


def lda_weight(distance: int, decrement: float = 0.1, floor: float = 0.0) -> float:
    """LDA weight for a successor at ``distance`` (1 = immediate).

    ``weight = max(floor, 1 - decrement * (distance - 1))`` — the paper's
    example (1.0 / 0.9 / 0.8 for distances 1/2/3) uses ``decrement=0.1``.

    Raises:
        ConfigError: for a non-positive distance or out-of-range knobs.
    """
    if distance < 1:
        raise ConfigError("successor distance must be >= 1")
    if not 0.0 <= decrement <= 1.0:
        raise ConfigError("decrement must be in [0, 1]")
    if not 0.0 <= floor <= 1.0:
        raise ConfigError("floor must be in [0, 1]")
    return max(floor, 1.0 - decrement * (distance - 1))


def uniform_weight(distance: int, decrement: float = 0.0, floor: float = 0.0) -> float:
    """Uniform window weighting: every in-window successor counts 1.0.

    Signature-compatible with :func:`lda_weight` so the two schedules are
    interchangeable in the graph constructor.
    """
    if distance < 1:
        raise ConfigError("successor distance must be >= 1")
    return 1.0


def weight_schedule(name: str):
    """Resolve a schedule by name ("lda" or "uniform")."""
    if name == "lda":
        return lda_weight
    if name == "uniform":
        return uniform_weight
    raise ConfigError(f"unknown weight schedule {name!r}")
