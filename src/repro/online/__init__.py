"""The online ingestion service: FARMER as a continuously-running miner.

The batch layer answers "what would the correlations be for this
trace?"; this package answers "serve predictions *while* the trace is
still arriving". Four pieces, one per module:

* :mod:`repro.online.agent` — trace-tailing sources. An agent replays a
  recorded trace (or tails a live JSONL file) at a configurable arrival
  rate — constant, bursty, or diurnal — and offers records through the
  admission protocol.
* :mod:`repro.online.pipeline` — the bounded ingest queue with
  watermark admission control (accept / accept-without-echo / defer /
  shed, in that degradation order) and the consumer that drains batches
  into :meth:`ShardedFarmer.ingest_stream`. After a full
  :meth:`OnlineService.drain` barrier the mined state is bit-identical
  to a batch ``mine()`` of the accepted stream.
* :mod:`repro.online.api` — the query/admin plane: a stdlib-HTTP JSON
  API serving ``predict``/``stats``/``snapshot`` and the admin verbs
  (``fail_shard``, ``promote_standby``, ``rebalance``, ``drain``)
  concurrently with mining.
* :mod:`repro.online.telemetry` — ring-buffer time series (queue depth,
  per-shard load, echo-queue depth) and fixed-bucket latency histograms
  (per-endpoint p50/p95/p99), all bounded-memory and numpy-free.

``repro serve`` in the CLI wires the four together into a process.
With ``--data-dir`` the service additionally journals accepted records
and checkpoints snapshots through :mod:`repro.durability`, making a
``--recover`` cold restart bit-identical to never having crashed at the
last durable barrier.
"""

from __future__ import annotations

from repro.online.agent import (
    AgentReport,
    ArrivalPattern,
    BurstyRate,
    ConstantRate,
    DiurnalRate,
    FileTailAgent,
    ReplayAgent,
)
from repro.online.api import AdminApiServer
from repro.online.pipeline import (
    Admission,
    AdmissionPolicy,
    DrainReport,
    IngestPipeline,
    OnlineService,
    OnlineStats,
    PipelineCounters,
    RecordSink,
)
from repro.online.telemetry import (
    LatencyHistogram,
    LatencySummary,
    RingSeries,
    Telemetry,
)

__all__ = [
    "AdminApiServer",
    "Admission",
    "AdmissionPolicy",
    "AgentReport",
    "ArrivalPattern",
    "BurstyRate",
    "ConstantRate",
    "DiurnalRate",
    "DrainReport",
    "FileTailAgent",
    "IngestPipeline",
    "LatencyHistogram",
    "LatencySummary",
    "OnlineService",
    "OnlineStats",
    "PipelineCounters",
    "RecordSink",
    "ReplayAgent",
    "RingSeries",
    "Telemetry",
]
