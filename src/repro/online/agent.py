"""Trace-tailing agents: arrival-rate-driven sources for the pipeline.

The batch layer hands ``mine()`` a complete trace; an online service
receives *arrivals*. An agent turns a record source into an arrival
process: an :class:`ArrivalPattern` says how many records per second the
workload offers at time *t*, and the agent integrates that rate over
fixed ticks to decide how many records to offer the pipeline each tick
(fractional arrivals carry over, so the long-run offered count is exact
to the integral, not a per-tick rounding drift).

Two agents:

* :class:`ReplayAgent` — replays an in-memory record sequence at the
  pattern's rate. ``pace=False`` keeps the tick *structure* (the same
  per-tick batch sizes an actually-paced run would offer) but never
  sleeps — that is what makes arrival-driven tests and benchmarks
  deterministic and fast.
* :class:`FileTailAgent` — follows a JSONL trace file like ``tail -f``:
  records appended by another process are parsed and offered as they
  appear. This is the deployment seam: a file system dumping its audit
  stream to a log feeds the miner with no coupling beyond the file.

Both speak the pipeline's admission protocol: an offer can be accepted,
accepted-degraded (echo shed), deferred (back off and retry — the
agent's sleep *is* the backpressure), or shed. The agent retries
deferred records with a bounded backoff and reports everything in an
:class:`AgentReport`.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.online.pipeline import Admission, RecordSink
from repro.traces.io import record_from_dict
from repro.traces.record import TraceRecord

__all__ = [
    "AgentReport",
    "ArrivalPattern",
    "ConstantRate",
    "BurstyRate",
    "DiurnalRate",
    "ReplayAgent",
    "FileTailAgent",
]


class ArrivalPattern:
    """A workload's offered arrival rate over time.

    Subclasses implement :meth:`rate`; the default :meth:`arrivals`
    integrates it over one tick with the midpoint rule (exact for the
    piecewise-constant and linear patterns here, close enough for the
    sinusoid — the point is a deterministic schedule, not a fluid
    limit).
    """

    def rate(self, t: float) -> float:
        """Offered records/second at time ``t`` (seconds from start)."""
        raise NotImplementedError

    def arrivals(self, t: float, dt: float) -> float:
        """Expected arrivals in ``[t, t + dt)`` (may be fractional)."""
        return self.rate(t + dt / 2.0) * dt


@dataclass(frozen=True)
class ConstantRate(ArrivalPattern):
    """A steady ``rate`` records/second."""

    per_second: float

    def __post_init__(self) -> None:
        if self.per_second <= 0:
            raise ConfigError("ConstantRate needs a positive rate")

    def rate(self, t: float) -> float:
        """The constant ``per_second``, at any ``t``."""
        return self.per_second


@dataclass(frozen=True)
class BurstyRate(ArrivalPattern):
    """On/off bursts: ``burst`` records/s for the first ``duty``
    fraction of every ``period`` seconds, ``base`` records/s otherwise
    (the arrival shape that actually exercises admission control — the
    queue must absorb the burst and drain it in the quiet phase)."""

    base: float
    burst: float
    period: float = 10.0
    duty: float = 0.2

    def __post_init__(self) -> None:
        if self.base < 0 or self.burst <= 0:
            raise ConfigError("BurstyRate needs base >= 0 and burst > 0")
        if self.period <= 0 or not 0.0 < self.duty < 1.0:
            raise ConfigError("BurstyRate needs period > 0 and 0 < duty < 1")

    def rate(self, t: float) -> float:
        """``burst`` inside the duty window of each period, else ``base``."""
        phase = math.fmod(t, self.period)
        return self.burst if phase < self.period * self.duty else self.base


@dataclass(frozen=True)
class DiurnalRate(ArrivalPattern):
    """A smooth day/night cycle: sinusoid between ``trough`` and
    ``peak`` records/s with the given ``period`` (scaled down from 24h
    to seconds in tests; the *shape* is what drives ``auto_rebalance``
    under load shift, not the wall-clock span)."""

    trough: float
    peak: float
    period: float = 60.0

    def __post_init__(self) -> None:
        if self.trough < 0 or self.peak < self.trough:
            raise ConfigError("DiurnalRate needs 0 <= trough <= peak")
        if self.period <= 0:
            raise ConfigError("DiurnalRate needs period > 0")

    def rate(self, t: float) -> float:
        """The sinusoid's value at ``t`` (trough at 0, peak at period/2)."""
        mid = (self.peak + self.trough) / 2.0
        amplitude = (self.peak - self.trough) / 2.0
        # trough at t=0, peak at period/2 — a service started at night
        return mid - amplitude * math.cos(2.0 * math.pi * t / self.period)


@dataclass(frozen=True, slots=True)
class AgentReport:
    """What one agent run offered and what the pipeline did with it.

    ``n_deferred`` counts defer *responses* (one record can defer many
    times before admission); ``n_abandoned`` counts records dropped by
    the agent after exhausting its defer retries — with a live consumer
    this stays zero, and the overload tests assert exactly where it
    stops being zero.
    """

    n_offered: int
    n_accepted: int
    n_echo_degraded: int
    n_deferred: int
    n_shed: int
    n_abandoned: int
    elapsed_s: float


class _OfferLoop:
    """Shared offer-with-retry logic for both agents."""

    def __init__(
        self,
        sink: RecordSink,
        *,
        defer_retries: int,
        retry_delay_s: float,
        sleep: Callable[[float], None],
    ) -> None:
        self.sink = sink
        self.defer_retries = defer_retries
        self.retry_delay_s = retry_delay_s
        self.sleep = sleep
        self.n_offered = 0
        self.n_accepted = 0
        self.n_echo_degraded = 0
        self.n_deferred = 0
        self.n_shed = 0
        self.n_abandoned = 0

    def offer(self, record: TraceRecord) -> None:
        """Offer one record, honouring DEFER with bounded retries."""
        self.n_offered += 1
        for _ in range(self.defer_retries + 1):
            result = self.sink.offer(record)
            if result is Admission.ACCEPTED:
                self.n_accepted += 1
                return
            if result is Admission.ACCEPTED_ECHO_SHED:
                self.n_accepted += 1
                self.n_echo_degraded += 1
                return
            if result is Admission.SHED:
                self.n_shed += 1
                return
            # DEFERRED: the sleep is the backpressure taking effect
            self.n_deferred += 1
            self.sleep(self.retry_delay_s)
        self.n_abandoned += 1

    def report(self, elapsed_s: float) -> AgentReport:
        """Snapshot the agent's offer accounting after a run."""
        return AgentReport(
            n_offered=self.n_offered,
            n_accepted=self.n_accepted,
            n_echo_degraded=self.n_echo_degraded,
            n_deferred=self.n_deferred,
            n_shed=self.n_shed,
            n_abandoned=self.n_abandoned,
            elapsed_s=elapsed_s,
        )


class ReplayAgent:
    """Replay a record sequence into a sink at a pattern's arrival rate.

    Args:
        records: the trace to replay (offered in order; record
            timestamps are ignored — the *pattern* is the clock).
        pattern: offered-rate schedule (default: constant 10k/s).
        tick_s: integration step; each tick offers
            ``pattern.arrivals(t, tick_s)`` records (fractional
            arrivals accumulate).
        pace: if True, really sleep each tick (wall-clock replay). If
            False (default), never sleep — identical per-tick batch
            sizes, deterministic and as fast as the sink admits.
        defer_retries: offers retried per record on DEFER before the
            agent abandons it.
        retry_delay_s: sleep between defer retries (also applied with
            ``pace=False`` — backpressure must cost the agent something
            or the retry loop would spin).
    """

    def __init__(
        self,
        records: Sequence[TraceRecord],
        pattern: ArrivalPattern | None = None,
        *,
        tick_s: float = 0.01,
        pace: bool = False,
        defer_retries: int = 2000,
        retry_delay_s: float = 0.001,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if tick_s <= 0:
            raise ConfigError("ReplayAgent needs tick_s > 0")
        self.records = records
        self.pattern = pattern if pattern is not None else ConstantRate(10_000.0)
        self.tick_s = tick_s
        self.pace = pace
        self.defer_retries = defer_retries
        self.retry_delay_s = retry_delay_s
        self._sleep = sleep

    def batches(self) -> Iterable[list[TraceRecord]]:
        """The per-tick record batches the pattern dictates (exposed for
        tests: the deterministic arrival schedule, no sink needed)."""
        backlog = 0.0
        t = 0.0
        cursor = 0
        n = len(self.records)
        while cursor < n:
            backlog += self.pattern.arrivals(t, self.tick_s)
            take = min(int(backlog), n - cursor)
            backlog -= take
            yield list(self.records[cursor : cursor + take])
            cursor += take
            t += self.tick_s

    def run(self, sink: RecordSink) -> AgentReport:
        """Offer the whole trace; returns the admission accounting."""
        loop = _OfferLoop(
            sink,
            defer_retries=self.defer_retries,
            retry_delay_s=self.retry_delay_s,
            sleep=self._sleep,
        )
        start = time.perf_counter()
        for batch in self.batches():
            for record in batch:
                loop.offer(record)
            if self.pace:
                self._sleep(self.tick_s)
        return loop.report(time.perf_counter() - start)


class FileTailAgent:
    """Follow a JSONL trace file and offer appended records live.

    The agent remembers its byte offset and re-polls: records written by
    another process (the "file system" in a deployment, the test in CI)
    are parsed with the standard trace reader and offered through the
    same admission loop as :class:`ReplayAgent`. A partial trailing line
    (a writer mid-append) is left in the file until a newline completes
    it — records are only ever parsed whole.

    The run ends when :meth:`stop` is called (drains what is already
    readable first) or, if ``idle_timeout_s`` is set, after that long
    with no new bytes.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        poll_interval_s: float = 0.05,
        idle_timeout_s: float | None = None,
        defer_retries: int = 2000,
        retry_delay_s: float = 0.001,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if poll_interval_s <= 0:
            raise ConfigError("FileTailAgent needs poll_interval_s > 0")
        self.path = Path(path)
        self.poll_interval_s = poll_interval_s
        self.idle_timeout_s = idle_timeout_s
        self.defer_retries = defer_retries
        self.retry_delay_s = retry_delay_s
        self._sleep = sleep
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask a running tail to finish (it drains readable lines first)."""
        self._stop.set()

    def run(self, sink: RecordSink) -> AgentReport:
        """Tail the file until stopped or idle-timed-out."""
        loop = _OfferLoop(
            sink,
            defer_retries=self.defer_retries,
            retry_delay_s=self.retry_delay_s,
            sleep=self._sleep,
        )
        start = time.perf_counter()
        offset = 0
        idle_s = 0.0
        lineno = 0
        while True:
            got_data = False
            if self.path.exists():
                with open(self.path, "r", encoding="utf-8") as fh:
                    fh.seek(offset)
                    while True:
                        line = fh.readline()
                        if not line.endswith("\n"):
                            break  # partial append: wait for the newline
                        offset = fh.tell()
                        lineno += 1
                        stripped = line.strip()
                        if not stripped:
                            continue
                        got_data = True
                        loop.offer(
                            record_from_dict(json.loads(stripped), lineno)
                        )
            if self._stop.is_set():
                break
            if got_data:
                idle_s = 0.0
            else:
                idle_s += self.poll_interval_s
                if (
                    self.idle_timeout_s is not None
                    and idle_s >= self.idle_timeout_s
                ):
                    break
                self._sleep(self.poll_interval_s)
        return loop.report(time.perf_counter() - start)
