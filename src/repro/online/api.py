"""The query/admin plane: a stdlib-HTTP JSON API over OnlineService.

One :class:`AdminApiServer` wraps a running
:class:`~repro.online.pipeline.OnlineService` in a
``ThreadingHTTPServer`` (stdlib only — no new dependencies). Every
request thread goes through the service's endpoint methods, which take
the shared service lock, so queries and admin operations serve
concurrently with mining exactly under the existing lock story.

Endpoints (all JSON)::

    GET  /health                      liveness + consumer state
    GET  /predict?fid=N[&k=K]         prefetch candidates for fid
    GET  /correlators?fid=N           valid correlates of fid
    GET  /stats                       OnlineStats rollup
    GET  /snapshot                    Correlator-List aggregate snapshot
    GET  /telemetry                   counters, time series, latency
    POST /ingest                      JSONL records in the body
    POST /fail_shard                  {"shard": i}
    POST /promote_standby             {"shard": i}
    POST /rebalance                   {"n_shards"?, "policy"?, "weights"?}
    POST /auto_rebalance              {}
    POST /drain                       full consume+flush barrier
    POST /snapshot                    durable checkpoint (needs --data-dir)
    POST /shutdown                    stop serving (clean exit seam)

``GET /snapshot`` (the Correlator-List aggregate) and ``POST
/snapshot`` (the durability checkpoint) share a path but not a
meaning — the GET is a query, the POST is a barrier. When the service
runs with a data directory, ``GET /stats`` carries the WAL/snapshot/
recovery rollup under ``durability``.

Error mapping: bad arguments → 400; unknown path → 404; an operation
the service refuses (failed shard, replication disabled, bad config)
→ 409 with the error text. The handler never serves tracebacks.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, is_dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    ConfigError,
    PersistenceError,
    ReplicationError,
    ShardFailedError,
)
from repro.online.pipeline import OnlineService
from repro.traces.io import record_from_dict

__all__ = ["AdminApiServer"]


def _jsonable(value):
    """Dataclasses → dicts, recursively; everything else passes through
    (the reports and stats objects are all dataclass trees)."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    return value


class _ApiError(Exception):
    """Internal: carries an HTTP status + message to the handler."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class AdminApiServer:
    """Serve an :class:`OnlineService` over HTTP on ``host:port``.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction — the test/CI pattern). :meth:`start` serves on a
    daemon thread; :meth:`stop` shuts the listener down. The
    ``shutdown_event`` is set by ``POST /shutdown`` so a CLI can block
    on it for a clean remote-triggered exit.
    """

    def __init__(
        self,
        online: OnlineService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.online = online
        self.shutdown_event = threading.Event()
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AdminApiServer":
        """Serve on a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="farmer-api", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the listener and join the serving thread."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "AdminApiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            """Per-connection request handler closed over the server."""

            # quiet: request logging would interleave with service output
            def log_message(self, fmt, *args):  # pragma: no cover
                pass

            def _send(self, status: int, payload: dict) -> None:
                body = json.dumps(_jsonable(payload)).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _body(self) -> bytes:
                length = int(self.headers.get("Content-Length") or 0)
                return self.rfile.read(length) if length else b""

            def _json_body(self) -> dict:
                raw = self._body()
                if not raw:
                    return {}
                try:
                    data = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise _ApiError(400, f"invalid JSON body: {exc}")
                if not isinstance(data, dict):
                    raise _ApiError(400, "JSON body must be an object")
                return data

            def _int_arg(self, data: dict, name: str) -> int:
                value = data.get(name)
                if value is None:
                    raise _ApiError(400, f"missing required field {name!r}")
                try:
                    return int(value)
                except (TypeError, ValueError):
                    raise _ApiError(400, f"field {name!r} must be an int")

            def _dispatch(self, fn) -> None:
                try:
                    self._send(200, fn())
                except _ApiError as exc:
                    self._send(exc.status, {"error": str(exc)})
                except (
                    ConfigError,
                    PersistenceError,
                    ReplicationError,
                    ShardFailedError,
                ) as exc:
                    # the service refused: a client problem, not a crash
                    self._send(409, {"error": str(exc)})

            def do_GET(self) -> None:
                url = urlparse(self.path)
                query = parse_qs(url.query)
                online = server.online

                def q_int(name: str) -> int:
                    values = query.get(name)
                    if not values:
                        raise _ApiError(400, f"missing query arg {name!r}")
                    try:
                        return int(values[0])
                    except ValueError:
                        raise _ApiError(400, f"query arg {name!r} must be an int")

                if url.path == "/health":
                    self._dispatch(
                        lambda: {
                            "status": "ok",
                            "consumer_running": online.running,
                            "queue_depth": online.pipeline.depth,
                        }
                    )
                elif url.path == "/predict":
                    def predict():
                        k = q_int("k") if query.get("k") else None
                        fid = q_int("fid")
                        return {"fid": fid, "predicted": online.predict(fid, k)}

                    self._dispatch(predict)
                elif url.path == "/correlators":
                    def correlators():
                        fid = q_int("fid")
                        return {
                            "fid": fid,
                            "correlators": [
                                {"fid": e.fid, "degree": e.degree}
                                for e in online.correlators(fid)
                            ],
                        }

                    self._dispatch(correlators)
                elif url.path == "/stats":
                    self._dispatch(lambda: _jsonable(online.stats()))
                elif url.path == "/snapshot":
                    self._dispatch(lambda: _jsonable(online.snapshot()))
                elif url.path == "/telemetry":
                    self._dispatch(online.telemetry.snapshot)
                else:
                    self._send(404, {"error": f"unknown path {url.path!r}"})

            def do_POST(self) -> None:
                url = urlparse(self.path)
                online = server.online
                if url.path == "/ingest":
                    def ingest():
                        results: dict[str, int] = {}
                        for lineno, line in enumerate(
                            self._body().decode("utf-8").splitlines(), 1
                        ):
                            if not line.strip():
                                continue
                            try:
                                record = record_from_dict(
                                    json.loads(line), lineno
                                )
                            except Exception as exc:
                                raise _ApiError(
                                    400, f"bad record on line {lineno}: {exc}"
                                )
                            outcome = online.offer(record).value
                            results[outcome] = results.get(outcome, 0) + 1
                        return {"admission": results}

                    self._dispatch(ingest)
                elif url.path == "/fail_shard":
                    def fail():
                        index = self._int_arg(self._json_body(), "shard")
                        online.fail_shard(index)
                        return {"failed": index}

                    self._dispatch(fail)
                elif url.path == "/promote_standby":
                    def promote():
                        index = self._int_arg(self._json_body(), "shard")
                        return _jsonable(online.promote_standby(index))

                    self._dispatch(promote)
                elif url.path == "/rebalance":
                    def rebalance():
                        data = self._json_body()
                        kwargs = {}
                        if "policy" in data:
                            kwargs["policy"] = str(data["policy"])
                        if "weights" in data:
                            kwargs["weights"] = [
                                float(w) for w in data["weights"]
                            ]
                        n_shards = (
                            self._int_arg(data, "n_shards")
                            if "n_shards" in data
                            else None
                        )
                        return _jsonable(
                            online.rebalance(n_shards, **kwargs)
                        )

                    self._dispatch(rebalance)
                elif url.path == "/auto_rebalance":
                    self._dispatch(lambda: _jsonable(online.auto_rebalance()))
                elif url.path == "/drain":
                    self._dispatch(lambda: _jsonable(online.drain()))
                elif url.path == "/snapshot":
                    self._dispatch(lambda: _jsonable(online.checkpoint()))
                elif url.path == "/shutdown":
                    self._dispatch(lambda: {"shutting_down": True})
                    server.shutdown_event.set()
                else:
                    self._send(404, {"error": f"unknown path {url.path!r}"})

        return Handler
