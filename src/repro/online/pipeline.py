"""The ingest pipeline: bounded queue, admission control, consumers.

This is the backpressure seam between arrival-rate-driven sources
(:mod:`repro.online.agent`) and the sharded miner. Arrivals land in a
**bounded** in-process queue; a consumer thread drains them in batches
into :meth:`ShardedFarmer.ingest_stream` (the same ingest/barrier seam
batch ``mine()`` uses, so a fully-drained online run is bit-identical to
the batch schedule — property-tested in ``tests/online``).

Admission control (watermark-based, in degradation order)
---------------------------------------------------------

The queue depth at offer time picks one of four outcomes; the policy's
invariant is that **cross-shard echoes are shed before any owned
observe is**:

1. depth < ``echo_watermark`` · capacity → **ACCEPTED**: the record
   mines fully, boundary echo included.
2. depth ≥ echo watermark → **ACCEPTED_ECHO_SHED**: the record is
   admitted but flagged ``allow_echo=False`` — if it turns out to be a
   boundary request, the cross-shard echo (extra mining work on a
   *second* shard, and the least valuable edge under the echo-geometry
   caveats) is sacrificed first.
3. depth ≥ ``defer_watermark`` · capacity → **DEFERRED**: not enqueued.
   The source is asked to back off and retry — this is the lever that
   turns a bounded queue into backpressure instead of loss.
4. depth = capacity → **SHED**: the record is dropped and counted. By
   construction this cannot happen below the defer watermark, so owned
   observes are only ever lost once every softer lever is exhausted.

:class:`OnlineService` wraps the pipeline, a :class:`ShardedFarmer`, a
:class:`~repro.online.telemetry.Telemetry` plane and one re-entrant
service lock into the long-running object the admin API serves. The
lock story is coarse and honest: every touch of the sharded miner —
a consumer draining a batch, a ``predict``, an admin ``rebalance`` —
holds the same RLock, so queries are served *between* batches while
mining continues, and the existing single-writer invariants of the
service layer hold unchanged. (Intra-batch shard parallelism stays the
:class:`~repro.service.runner.ParallelShardRunner` seam; this layer
serialises at batch granularity.)
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.core.config import FarmerConfig
from repro.core.sorter import CorrelationSnapshot
from repro.durability.manager import DurabilityManager, DurabilityStats
from repro.durability.snapshot import SnapshotReport
from repro.errors import ConfigError
from repro.online.telemetry import LatencySummary, Telemetry
from repro.service.sharded import (
    AutoRebalanceReport,
    RebalanceReport,
    ShardedFarmer,
    StreamIngestReport,
)
from repro.service.stats import ServiceStats
from repro.traces.record import TraceRecord

__all__ = [
    "Admission",
    "AdmissionPolicy",
    "DrainReport",
    "IngestPipeline",
    "OnlineService",
    "OnlineStats",
    "PipelineCounters",
    "RecordSink",
]


class Admission(enum.Enum):
    """What admission control decided about one offered record."""

    ACCEPTED = "accepted"
    ACCEPTED_ECHO_SHED = "accepted_echo_shed"
    DEFERRED = "deferred"
    SHED = "shed"


class RecordSink(Protocol):
    """Anything an agent can offer records to."""

    def offer(self, record: TraceRecord) -> Admission:
        """Admit, degrade, defer or shed one record."""
        ...


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """The watermark configuration of the bounded ingest queue.

    Attributes:
        capacity: hard queue bound; an offer at this depth is shed.
        echo_watermark: fraction of capacity above which admitted
            records carry ``allow_echo=False`` (echoes shed first).
        defer_watermark: fraction of capacity above which offers are
            deferred (source-side backpressure) instead of enqueued.

    Invariant: ``0 < echo_watermark <= defer_watermark <= 1`` — the
    degradation ladder must engage in order (echoes, then deferral,
    then shedding at the hard bound).
    """

    capacity: int = 4096
    echo_watermark: float = 0.5
    defer_watermark: float = 0.9

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("AdmissionPolicy needs capacity > 0")
        if not 0.0 < self.echo_watermark <= self.defer_watermark <= 1.0:
            raise ConfigError(
                "AdmissionPolicy needs 0 < echo_watermark <= "
                "defer_watermark <= 1 (the degradation ladder must "
                "engage in order)"
            )

    @property
    def echo_depth(self) -> int:
        """Queue depth at which echo shedding starts."""
        return int(self.capacity * self.echo_watermark)

    @property
    def defer_depth(self) -> int:
        """Queue depth at which offers start deferring."""
        return int(self.capacity * self.defer_watermark)


@dataclass(frozen=True, slots=True)
class PipelineCounters:
    """Lifetime admission/consumption accounting of one pipeline."""

    n_offered: int
    n_accepted: int
    n_echo_degraded: int
    n_deferred: int
    n_shed: int
    n_consumed: int
    n_batches: int


@dataclass(frozen=True, slots=True)
class DrainReport:
    """What one :meth:`OnlineService.drain` barrier flushed."""

    n_consumed: int  # records drained from the queue by this barrier
    n_batches: int  # consumer batches the barrier took
    elapsed_s: float


class IngestPipeline:
    """Bounded queue + watermark admission + batch draining.

    Thread-safe: agents offer from any number of threads; one consumer
    (the :class:`OnlineService` worker, or a test calling
    :meth:`drain_batch` directly) pops batches. The queue holds
    ``(record, allow_echo)`` pairs — the admission decision is taken at
    offer time, when the depth that justified it was observed, not at
    consumption time when the pressure may already have passed.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        *,
        batch_size: int = 256,
        telemetry: Telemetry | None = None,
        journal: Callable[[TraceRecord, bool], int] | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ConfigError("IngestPipeline needs batch_size > 0")
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.batch_size = batch_size
        self.telemetry = telemetry
        # write-ahead hook: called with (record, allow_echo) for every
        # *accepted* record, under the pipeline lock, BEFORE the record
        # is enqueued — the mined state is therefore always a prefix of
        # the journal, so a crash at any point replays every record that
        # was acknowledged as accepted and nothing that was not
        self.journal = journal
        self._queue: deque[tuple[TraceRecord, bool]] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._n_offered = 0
        self._n_accepted = 0
        self._n_echo_degraded = 0
        self._n_deferred = 0
        self._n_shed = 0
        self._n_consumed = 0
        self._n_batches = 0

    # -- producer side -------------------------------------------------

    def offer(self, record: TraceRecord) -> Admission:
        """Admit, degrade, defer or shed one record (see the module
        docstring for the watermark ladder)."""
        policy = self.policy
        with self._lock:
            self._n_offered += 1
            depth = len(self._queue)
            if depth >= policy.capacity:
                self._n_shed += 1
                result = Admission.SHED
            elif depth >= policy.defer_depth:
                self._n_deferred += 1
                result = Admission.DEFERRED
            else:
                allow_echo = depth < policy.echo_depth
                if self.journal is not None:
                    self.journal(record, allow_echo)
                self._queue.append((record, allow_echo))
                self._n_accepted += 1
                if not allow_echo:
                    self._n_echo_degraded += 1
                    result = Admission.ACCEPTED_ECHO_SHED
                else:
                    result = Admission.ACCEPTED
                self._not_empty.notify()
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.incr(f"admission.{result.value}")
        return result

    # -- consumer side -------------------------------------------------

    def pop_batch(
        self, timeout_s: float | None = None
    ) -> list[tuple[TraceRecord, bool]]:
        """Pop up to ``batch_size`` queued items (blocking up to
        ``timeout_s`` for the first; empty list on timeout/no wait)."""
        with self._not_empty:
            if not self._queue and timeout_s:
                self._not_empty.wait(timeout_s)
            take = min(self.batch_size, len(self._queue))
            batch = [self._queue.popleft() for _ in range(take)]
            if batch:
                self._n_consumed += len(batch)
                self._n_batches += 1
            return batch

    @property
    def depth(self) -> int:
        """Current queue depth."""
        with self._lock:
            return len(self._queue)

    def counters(self) -> PipelineCounters:
        """Lifetime admission/consumption counters (consistent read)."""
        with self._lock:
            return PipelineCounters(
                n_offered=self._n_offered,
                n_accepted=self._n_accepted,
                n_echo_degraded=self._n_echo_degraded,
                n_deferred=self._n_deferred,
                n_shed=self._n_shed,
                n_consumed=self._n_consumed,
                n_batches=self._n_batches,
            )


@dataclass(frozen=True, slots=True)
class OnlineStats:
    """The operator's one-call view of a running :class:`OnlineService`.

    Attributes:
        service: the underlying :class:`ServiceStats` rollup (includes
            per-destination echo-queue depths/drops and shed counts).
        queue_depth: ingest-queue depth at the time of the call.
        pipeline: lifetime admission/consumption counters.
        endpoint_latency: per-endpoint latency summaries (p50/p95/p99
            from the fixed-bucket histograms).
        uptime_s: seconds since the service started.
        durability: WAL/snapshot/recovery rollup when the service runs
            with a data directory (None on a memory-only service).
    """

    service: ServiceStats
    queue_depth: int
    pipeline: PipelineCounters
    endpoint_latency: dict[str, LatencySummary]
    uptime_s: float = 0.0
    durability: DurabilityStats | None = None


class OnlineService:
    """A continuously-running FARMER: queue in front, miner behind,
    telemetry throughout.

    Construction wires a :class:`ShardedFarmer` (or adopts one passed
    in), an :class:`IngestPipeline` and a :class:`Telemetry` plane; the
    consumer thread starts on :meth:`start` (or context-manager entry)
    and drains admitted records into the shards in batches. Every
    public query/admin method is timed into the per-endpoint latency
    histograms — the API layer serves those numbers; it does not
    measure its own HTTP overhead.

    Equivalence contract (property-tested): feed any trace through
    :meth:`offer` with no admission degradation, then :meth:`drain`;
    ``predict``/``correlators`` answers are bit-identical to a batch
    ``mine()`` of the same records on an identically-configured
    service — online arrival changes *when* work happens, never what is
    mined. Under overload the contract degrades in the documented
    order: echo-shed records lose only their cross-shard echo; owned
    observes are lost only at the hard queue bound.
    """

    def __init__(
        self,
        config: FarmerConfig | None = None,
        *,
        service: ShardedFarmer | None = None,
        policy: AdmissionPolicy | None = None,
        batch_size: int = 256,
        telemetry: Telemetry | None = None,
        load_sample_every: int = 4,
        durability: DurabilityManager | None = None,
        snapshot_interval: int = 0,
    ) -> None:
        if load_sample_every <= 0:
            raise ConfigError("OnlineService needs load_sample_every > 0")
        if snapshot_interval < 0:
            raise ConfigError("OnlineService needs snapshot_interval >= 0")
        if snapshot_interval > 0 and durability is None:
            raise ConfigError(
                "snapshot_interval needs a durability manager (the "
                "interval schedules checkpoints into its data directory)"
            )
        self.service = (
            service if service is not None else ShardedFarmer(config)
        )
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.durability = durability
        self.snapshot_interval = snapshot_interval
        if durability is not None and durability.telemetry is None:
            durability.telemetry = self.telemetry
        self.pipeline = IngestPipeline(
            policy,
            batch_size=batch_size,
            telemetry=self.telemetry,
            journal=(
                durability.log_accepted if durability is not None else None
            ),
        )
        self.load_sample_every = load_sample_every
        # one coarse RLock serialises every touch of the sharded miner:
        # consumer batches, queries, admin operations. Queries interleave
        # between batches; the service layer's single-writer story holds.
        self._service_lock = threading.RLock()
        # serialises pop+consume as one unit, so drain()'s empty pop
        # proves no batch is in flight on the consumer thread
        self._ingest_serial = threading.Lock()
        self._consumer: threading.Thread | None = None
        self._running = threading.Event()
        self._started_at = time.perf_counter()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "OnlineService":
        """Start the consumer thread (idempotent)."""
        if self._consumer is not None and self._consumer.is_alive():
            return self
        self._running.set()
        self._consumer = threading.Thread(
            target=self._consume_loop, name="farmer-ingest", daemon=True
        )
        self._started_at = time.perf_counter()
        self._consumer.start()
        return self

    def stop(self) -> None:
        """Stop the consumer thread after its current batch (idempotent;
        queued records stay queued — :meth:`drain` first for a clean
        barrier)."""
        self._running.clear()
        consumer = self._consumer
        if consumer is not None:
            consumer.join(timeout=10.0)
            self._consumer = None

    def __enter__(self) -> "OnlineService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the consumer thread is live."""
        return self._consumer is not None and self._consumer.is_alive()

    # -- ingestion -----------------------------------------------------

    def offer(self, record: TraceRecord) -> Admission:
        """The agents' entry point (see :class:`IngestPipeline`)."""
        return self.pipeline.offer(record)

    def _consume_batch(
        self, batch: list[tuple[TraceRecord, bool]]
    ) -> StreamIngestReport:
        """Fold one popped batch into the shards, with telemetry."""
        start = time.perf_counter()
        with self._service_lock:
            report = self.service.ingest_stream(batch)
        self.telemetry.observe_latency(
            "ingest_batch", time.perf_counter() - start
        )
        tick = self.service.n_observed
        self.telemetry.sample("queue_depth", tick, self.pipeline.depth)
        if report.n_echoes_shed:
            self.telemetry.incr("ingest.echoes_shed", report.n_echoes_shed)
        if report.n_dropped_failed:
            self.telemetry.incr(
                "ingest.dropped_failed", report.n_dropped_failed
            )
        n_batches = self.pipeline.counters().n_batches
        if n_batches % self.load_sample_every == 0:
            with self._service_lock:
                loads = self.service.shard_loads()
                depths = self.service.echo_queue_depths
            for index, load in enumerate(loads):
                self.telemetry.sample(f"shard_load.{index}", tick, load)
            for index, depth in enumerate(depths):
                self.telemetry.sample(f"echo_queue.{index}", tick, depth)
        return report

    def _consume_loop(self) -> None:
        while self._running.is_set():
            with self._ingest_serial:
                batch = self.pipeline.pop_batch(timeout_s=0.05)
                if batch:
                    self._consume_batch(batch)
            durability = self.durability
            if (
                durability is not None
                and self.snapshot_interval > 0
                and self.consumed_seq - durability.last_snapshot_seq
                >= self.snapshot_interval
            ):
                self.checkpoint()

    # -- durability ----------------------------------------------------

    @property
    def consumed_seq(self) -> int:
        """The service's position in the accepted stream: records mined
        before any crash (durable base) plus records consumed since."""
        base = (
            self.durability.base_consumed
            if self.durability is not None
            else 0
        )
        return base + self.pipeline.counters().n_consumed

    def checkpoint(self) -> SnapshotReport:
        """Write a durable snapshot at a full drain barrier.

        Rides the same serial-lock story as :meth:`drain`: everything
        queued is consumed, pending boundary echoes are flushed, and the
        snapshot captures the service at an exact accepted-stream
        sequence — offers landing after the barrier go to the WAL tail
        the snapshot's rotation starts. Ranking stays lazy (the snapshot
        is a faithful state capture, not a rank), so a restore never
        diverges from the lazy schedule.
        """
        durability = self.durability
        if durability is None:
            raise ConfigError(
                "checkpoint() needs a durability manager — construct "
                "OnlineService(durability=...) or serve with --data-dir"
            )
        start = time.perf_counter()
        with self._ingest_serial:
            while True:
                batch = self.pipeline.pop_batch(timeout_s=None)
                if not batch:
                    break
                self._consume_batch(batch)
            with self._service_lock:
                self.service.flush_echoes()
                report = durability.checkpoint(
                    self.service, self.consumed_seq
                )
        self.telemetry.observe_latency(
            "checkpoint", time.perf_counter() - start
        )
        return report

    def drain(self) -> DrainReport:
        """The full barrier: consume everything queued and deliver every
        boundary echo.

        After ``drain()`` every accepted record has been mined, and
        queries answer exactly as they would after a batch ``mine()`` of
        the accepted stream — the equivalence the property tests pin.
        Ranking itself stays lazy: a drain is flow control, not a query,
        and an eager mid-stream re-rank would *freeze* each list at
        drain-time vector state (clearing its dirty mark), silently
        diverging from the batch schedule once more records arrive. The
        first query of each list pays its deferred rank instead. Safe
        with or without the consumer thread running: pop-and-consume is
        serialised, so an empty pop under the serial lock proves no
        batch is in flight on the consumer thread when the final echo
        flush runs.
        """
        start = time.perf_counter()
        consumed = 0
        batches = 0
        while True:
            with self._ingest_serial:
                batch = self.pipeline.pop_batch(timeout_s=None)
                if not batch:
                    with self._service_lock:
                        self.service.flush_echoes()
                    break
                self._consume_batch(batch)
            consumed += len(batch)
            batches += 1
        report = DrainReport(
            n_consumed=consumed,
            n_batches=batches,
            elapsed_s=time.perf_counter() - start,
        )
        self.telemetry.incr("drains")
        return report

    # -- queries (timed per endpoint) ----------------------------------

    def _timed(self, endpoint: str, fn, *args, **kwargs):
        start = time.perf_counter()
        try:
            with self._service_lock:
                return fn(*args, **kwargs)
        finally:
            self.telemetry.observe_latency(
                endpoint, time.perf_counter() - start
            )

    def predict(self, fid: int, k: int | None = None) -> list[int]:
        """Prefetch candidates for ``fid`` (owner shard, echoes drained
        first — the query reflects everything already *consumed*;
        records still queued are not yet part of the answer)."""
        return self._timed("predict", self.service.predict, fid, k)

    def correlators(self, fid: int):
        """Valid correlates of ``fid`` from its owner shard."""
        return self._timed("correlators", self.service.correlators, fid)

    def snapshot(self) -> CorrelationSnapshot:
        """Aggregate Correlator-List statistics over owned lists."""
        return self._timed("snapshot", self.service.snapshot)

    def stats(self) -> OnlineStats:
        """The full operational rollup (see :class:`OnlineStats`)."""
        start = time.perf_counter()
        with self._service_lock:
            service_stats = self.service.stats()
        self.telemetry.observe_latency("stats", time.perf_counter() - start)
        return OnlineStats(
            service=service_stats,
            queue_depth=self.pipeline.depth,
            pipeline=self.pipeline.counters(),
            endpoint_latency=self.telemetry.endpoint_summaries(),
            uptime_s=time.perf_counter() - self._started_at,
            durability=(
                self.durability.stats()
                if self.durability is not None
                else None
            ),
        )

    # -- admin (timed per endpoint) ------------------------------------

    def fail_shard(self, index: int) -> None:
        """Kill shard ``index``'s private state (see ``ShardedFarmer``).
        The consumer keeps draining: the failed partition's records are
        dropped-and-counted by ``ingest_stream`` until promotion."""
        self._timed("fail_shard", self.service.fail_shard, index)

    def promote_standby(self, index: int):
        """Promote shard ``index``'s warm standby back into service."""
        return self._timed(
            "promote_standby", self.service.promote_standby, index
        )

    def rebalance(self, n_shards: int | None = None, **kwargs) -> RebalanceReport:
        """Install a new topology (see :meth:`ShardedFarmer.rebalance`)."""
        return self._timed(
            "rebalance", self.service.rebalance, n_shards, **kwargs
        )

    def auto_rebalance(self, **kwargs) -> AutoRebalanceReport:
        """Load-aware rebalance (see :meth:`ShardedFarmer.auto_rebalance`)."""
        return self._timed(
            "auto_rebalance", self.service.auto_rebalance, **kwargs
        )
