"""The live telemetry plane: ring-buffer time series and fixed-bucket
latency histograms.

Everything the batch layer reports is a *final* rollup (``ServiceStats``
after the run); a long-lived service needs the operational view — what
the queue depth, per-shard load and shed counters looked like *over
time*, and what each endpoint's latency distribution is right now. The
two primitives here are deliberately boring and allocation-free on the
hot path:

* :class:`RingSeries` — a fixed-capacity ``(tick, value)`` ring. One
  sample is two appends; the window is bounded so a service that runs
  for a week costs the same memory as one that ran for a minute.
* :class:`LatencyHistogram` — fixed geometric buckets (factor 2 from
  1 microsecond up). Recording is one ``bit_length`` and one integer
  increment; percentiles (p50/p95/p99) are a cumulative walk over ~40
  ints. No sample retention, no sorting, no numpy — the histogram's
  resolution (a factor-2 bound per bucket) is the honest price.

:class:`Telemetry` aggregates both behind one lock: named counters,
named series, per-endpoint histograms, and a JSON-safe :meth:`snapshot`
the admin API serves at ``/telemetry``.

A durable service (``--data-dir``) additionally reports through the
same registry: ``wal.appends`` / ``snapshot.count`` / ``snapshot.bytes``
/ ``recovery.replayed`` counters, and ``wal_append`` / ``snapshot`` /
``checkpoint`` latency histograms (the snapshot histogram is the ingest
stall window a barrier costs).
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = [
    "LatencyHistogram",
    "LatencySummary",
    "RingSeries",
    "Telemetry",
]

# Bucket 0 holds everything below _BASE_S; each subsequent bucket doubles
# the upper bound. 40 buckets reach ~1.1e6 seconds — nothing a request
# can take falls off the top (the last bucket is a catch-all anyway).
_BASE_S = 1e-6
_N_BUCKETS = 40


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """One endpoint's latency distribution, percentiles from buckets.

    Percentile values are the *upper bound* of the bucket the percentile
    falls in (a ≤2x overestimate by construction — the conservative side
    for an operator reading a dashboard). ``n == 0`` reports zeros.
    """

    n: int
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def as_dict(self) -> dict:
        """JSON-safe view (the admin API's serialisation)."""
        return {
            "n": self.n,
            "p50_us": self.p50_s * 1e6,
            "p95_us": self.p95_s * 1e6,
            "p99_us": self.p99_s * 1e6,
            "max_us": self.max_s * 1e6,
        }


class LatencyHistogram:
    """Fixed-bucket latency histogram (geometric, factor 2 from 1us).

    Not thread-safe on its own; :class:`Telemetry` serialises access.
    """

    __slots__ = ("_counts", "_n", "_max_s")

    def __init__(self) -> None:
        self._counts = [0] * _N_BUCKETS
        self._n = 0
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        """Count one observation of ``seconds`` (negatives clamp to 0)."""
        if seconds < 0.0:
            seconds = 0.0
        # bucket index = ceil(log2(seconds / base)), computed without a
        # float log: the integer ratio's bit_length is exactly that for
        # ratios >= 1 (bucket 0 catches everything under the base)
        ratio = int(seconds / _BASE_S)
        index = ratio.bit_length() if ratio > 0 else 0
        if index >= _N_BUCKETS:
            index = _N_BUCKETS - 1
        self._counts[index] += 1
        self._n += 1
        if seconds > self._max_s:
            self._max_s = seconds

    @property
    def n(self) -> int:
        """Observations recorded."""
        return self._n

    def percentile(self, q: float) -> float:
        """Upper bound (seconds) of the bucket percentile ``q`` ∈ (0, 1]
        falls in; 0.0 with no observations."""
        if self._n == 0:
            return 0.0
        target = q * self._n
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                return _BASE_S * (1 << index)
        return _BASE_S * (1 << (_N_BUCKETS - 1))  # pragma: no cover

    def summary(self) -> LatencySummary:
        """The dashboard view: n, p50/p95/p99 and the exact max."""
        return LatencySummary(
            n=self._n,
            p50_s=self.percentile(0.50),
            p95_s=self.percentile(0.95),
            p99_s=self.percentile(0.99),
            max_s=self._max_s,
        )


class RingSeries:
    """A bounded ``(tick, value)`` time series (oldest samples evicted).

    ``tick`` is whatever monotone stamp the caller supplies (the online
    service uses its accepted-request count, so series align with the
    mining stream rather than wall clock). Not thread-safe on its own.
    """

    __slots__ = ("_ticks", "_values", "_capacity", "_start", "_len")

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("RingSeries capacity must be positive")
        self._capacity = capacity
        self._ticks: list[int] = [0] * capacity
        self._values: list[float] = [0.0] * capacity
        self._start = 0
        self._len = 0

    def append(self, tick: int, value: float) -> None:
        """Record one sample (evicting the oldest at capacity)."""
        if self._len < self._capacity:
            index = (self._start + self._len) % self._capacity
            self._len += 1
        else:
            index = self._start
            self._start = (self._start + 1) % self._capacity
        self._ticks[index] = tick
        self._values[index] = value

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[tuple[int, float]]:
        for offset in range(self._len):
            index = (self._start + offset) % self._capacity
            yield self._ticks[index], self._values[index]

    def values(self) -> list[float]:
        """Sample values, oldest first."""
        return [value for _, value in self]

    def last(self) -> tuple[int, float] | None:
        """Most recent sample, or None when empty."""
        if self._len == 0:
            return None
        index = (self._start + self._len - 1) % self._capacity
        return self._ticks[index], self._values[index]

    def max(self) -> float:
        """Largest retained value (0.0 when empty)."""
        return max(self.values(), default=0.0)


class Telemetry:
    """The service's metric registry: counters, series, histograms.

    One lock serialises everything — samples are two-append cheap, so
    contention is negligible next to the mining work they describe.
    """

    def __init__(self, series_capacity: int = 512) -> None:
        self._lock = threading.Lock()
        self._series_capacity = series_capacity
        self._counters: dict[str, int] = {}
        self._series: dict[str, RingSeries] = {}
        self._endpoints: dict[str, LatencyHistogram] = {}

    # -- counters ------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- time series ---------------------------------------------------

    def sample(self, name: str, tick: int, value: float) -> None:
        """Append one sample to series ``name`` (created on first use)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = RingSeries(self._series_capacity)
            series.append(tick, value)

    def series(self, name: str) -> RingSeries:
        """Series ``name`` (created empty on first access)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = RingSeries(self._series_capacity)
            return series

    # -- endpoint latency ----------------------------------------------

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        """Record one request latency under ``endpoint``."""
        with self._lock:
            hist = self._endpoints.get(endpoint)
            if hist is None:
                hist = self._endpoints[endpoint] = LatencyHistogram()
            hist.record(seconds)

    def endpoint_summaries(self) -> dict[str, LatencySummary]:
        """Per-endpoint latency summaries (snapshot under the lock)."""
        with self._lock:
            return {
                name: hist.summary()
                for name, hist in sorted(self._endpoints.items())
            }

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of every counter, series and endpoint summary
        (what the admin API serves at ``/telemetry``)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "series": {
                    name: [[tick, value] for tick, value in series]
                    for name, series in sorted(self._series.items())
                },
                "endpoints": {
                    name: hist.summary().as_dict()
                    for name, hist in sorted(self._endpoints.items())
                },
            }
