"""The sharded mining service: namespace-partitioned FARMER at scale.

:class:`ShardedFarmer` splits the fid namespace across N independent
miner shards behind a deterministic router, sharing the vocabulary, the
vector store and (optionally) a thread-safe versioned similarity cache.
This is the architectural seam for scaling the miner alongside the
metadata servers: shard *i* co-locates with MDS *i* in the cluster
simulator, and :class:`ParallelShardRunner` executes the shards on real
threads or processes (the shared stores are lock-protected for exactly
this). With ``FarmerConfig.replication=True`` each primary keeps a warm
standby (:mod:`repro.service.replication`) and ``fail_shard`` /
``promote_standby`` make shard failover a first-class operation;
``auto_rebalance`` feeds observed shard load back into consistent-hash
ring weights. Every future scaling step plugs in behind the same
façade.
"""

from repro.service.harness import (
    ServiceComparison,
    ShardTiming,
    WallClockComparison,
    compare_parallel_mine,
    compare_single_vs_sharded,
    replay_sharded,
    replay_single,
)
from repro.service.router import (
    ConsistentHashRouter,
    HashShardRouter,
    RangeShardRouter,
    ShardRouter,
    make_router,
)
from repro.service.replication import (
    FailoverReport,
    ShardReplica,
    ShardReplicator,
    StandbySyncReport,
)
from repro.service.runner import ParallelMineReport, ParallelShardRunner
from repro.service.sharded import (
    AutoRebalanceReport,
    RebalanceReport,
    ShardedFarmer,
    StreamIngestReport,
)
from repro.service.stats import (
    ServiceStats,
    combine_cache_stats,
    combine_rerank_stats,
)

__all__ = [
    "ServiceComparison",
    "ShardTiming",
    "WallClockComparison",
    "compare_parallel_mine",
    "compare_single_vs_sharded",
    "replay_sharded",
    "replay_single",
    "ConsistentHashRouter",
    "HashShardRouter",
    "RangeShardRouter",
    "ShardRouter",
    "make_router",
    "FailoverReport",
    "ShardReplica",
    "ShardReplicator",
    "StandbySyncReport",
    "ParallelMineReport",
    "ParallelShardRunner",
    "AutoRebalanceReport",
    "RebalanceReport",
    "ShardedFarmer",
    "StreamIngestReport",
    "ServiceStats",
    "combine_cache_stats",
    "combine_rerank_stats",
]
