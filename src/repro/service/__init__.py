"""The sharded mining service: namespace-partitioned FARMER at scale.

:class:`ShardedFarmer` splits the fid namespace across N independent
miner shards behind a deterministic router, sharing the vocabulary, the
vector store and (optionally) a thread-safe versioned similarity cache.
This is the architectural seam for scaling the miner alongside the
metadata servers: shard *i* co-locates with MDS *i* in the cluster
simulator, and every future scaling step (async batching, multi-process
shards, replication) plugs in behind the same façade.
"""

from repro.service.harness import (
    ServiceComparison,
    ShardTiming,
    compare_single_vs_sharded,
    replay_sharded,
    replay_single,
)
from repro.service.router import (
    HashShardRouter,
    RangeShardRouter,
    ShardRouter,
    make_router,
)
from repro.service.sharded import ShardedFarmer
from repro.service.stats import ServiceStats, combine_cache_stats

__all__ = [
    "ServiceComparison",
    "ShardTiming",
    "compare_single_vs_sharded",
    "replay_sharded",
    "replay_single",
    "HashShardRouter",
    "RangeShardRouter",
    "ShardRouter",
    "make_router",
    "ShardedFarmer",
    "ServiceStats",
    "combine_cache_stats",
]
