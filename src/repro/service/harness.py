"""Replay harness: single-miner vs sharded mining throughput.

Two measurement modes:

* **Modeled** (the original mode): each shard replays its substream
  (owned records through the full pipeline, boundary echoes through the
  echo path) sequentially and is timed separately. In a deployment the
  shards run on separate cores/processes — HUSt pairs one with each
  metadata server — so the modeled service-level wall time is the
  slowest shard (the critical path), and

      aggregate throughput = accepted records / critical path.

* **Wall-clock** (:func:`compare_parallel_mine`): the shards actually
  run concurrently on a
  :class:`~repro.service.runner.ParallelShardRunner` (thread or process
  backend) and the measured quantity is real elapsed time — no
  critical-path arithmetic. Under CPython's GIL the thread backend
  mostly exercises the locking story; the process backend parallelises
  the Function-1-heavy flush phase for real.

The service benchmark and the ``service`` CLI subcommand report both.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.service.runner import ParallelMineReport, ParallelShardRunner
from repro.service.sharded import ShardedFarmer
from repro.traces.record import TraceRecord

__all__ = [
    "ShardTiming",
    "ServiceComparison",
    "WallClockComparison",
    "replay_single",
    "replay_sharded",
    "compare_single_vs_sharded",
    "compare_parallel_mine",
]


@dataclass(frozen=True, slots=True)
class ShardTiming:
    """One shard's replay measurement."""

    shard: int
    n_records: int  # substream length: owned records + absorbed echoes
    elapsed_s: float

    @property
    def throughput(self) -> float:
        """Substream records per second (0.0 for an idle shard)."""
        return self.n_records / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True, slots=True)
class ServiceComparison:
    """Single-miner baseline vs one sharded configuration."""

    n_records: int  # service-level accepted records (echoes not counted)
    single_elapsed_s: float
    timings: tuple[ShardTiming, ...]
    n_boundary_echoes: int
    cache_hit_rate: float
    memory_bytes: int

    @property
    def n_shards(self) -> int:
        """Shard count of the measured configuration."""
        return len(self.timings)

    @property
    def critical_path_s(self) -> float:
        """Modeled service wall time: the slowest shard's replay."""
        return max(t.elapsed_s for t in self.timings)

    @property
    def single_throughput(self) -> float:
        """Baseline requests per second."""
        if self.single_elapsed_s <= 0:
            return 0.0
        return self.n_records / self.single_elapsed_s

    @property
    def aggregate_throughput(self) -> float:
        """Modeled service requests per second (shards in parallel)."""
        crit = self.critical_path_s
        return self.n_records / crit if crit > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Aggregate over baseline throughput."""
        single = self.single_throughput
        return self.aggregate_throughput / single if single > 0 else 0.0


def replay_single(
    farmer: Farmer, records: Sequence[TraceRecord], predict: bool = True
) -> float:
    """Drive a stand-alone Farmer (observe, optionally the FPA predict
    per request, and the final flush); returns elapsed seconds."""
    start = time.perf_counter()
    for record in records:
        farmer.observe(record)
        if predict:
            farmer.predict(record.fid)
    farmer.snapshot()
    return time.perf_counter() - start


def replay_sharded(
    service: ShardedFarmer, records: Sequence[TraceRecord], predict: bool = True
) -> tuple[ShardTiming, ...]:
    """Replay each shard's substream separately, timing per shard.

    Owned records run the full pipeline (plus the FPA predict when
    ``predict``); boundary echoes run the echo path, exactly as the live
    ``ShardedFarmer.observe`` schedule would. Each shard ends with its
    owned-list flush, so deferred re-rank work is inside the timing.
    The service's stream accounting (``n_observed`` / boundary echoes /
    the boundary-detection seed) is kept consistent, so ``stats()``
    after a replay reports the same totals a live ``observe`` loop
    would.
    """
    # intra-package use of the service's substream rule and counters:
    # the harness replays *for* the service, it is not a foreign caller
    subs, accepted, prev, last_fid = service._partition(
        records, service._prev_owner
    )
    timings = []
    for index, (shard, sub) in enumerate(zip(service.shards, subs)):
        start = time.perf_counter()
        for record, is_echo in sub:
            if is_echo:
                shard.observe_echo(record)
            else:
                shard.observe(record)
                if predict:
                    shard.predict(record.fid)
        service.flush_shard(index)
        timings.append(
            ShardTiming(
                shard=index,
                n_records=len(sub),
                elapsed_s=time.perf_counter() - start,
            )
        )
    service._absorb_stream_state(
        accepted, sum(len(s) for s in subs), prev, last_fid
    )
    return tuple(timings)


def compare_single_vs_sharded(
    records: Sequence[TraceRecord],
    config: FarmerConfig,
    predict: bool = True,
    single_elapsed_s: float | None = None,
) -> ServiceComparison:
    """Measure one sharded configuration against the single-miner
    baseline (pass ``single_elapsed_s`` to reuse a measured baseline
    across several shard counts)."""
    if single_elapsed_s is None:
        single_elapsed_s = replay_single(
            Farmer(config.with_(n_shards=1)), records, predict=predict
        )
    service = ShardedFarmer(config)
    timings = replay_sharded(service, records, predict=predict)
    return ServiceComparison(
        n_records=service.n_observed,
        single_elapsed_s=single_elapsed_s,
        timings=timings,
        n_boundary_echoes=service.n_boundary_echoes,
        cache_hit_rate=service.sim_cache_stats().hit_rate,
        memory_bytes=service.memory_bytes(),
    )


@dataclass(frozen=True, slots=True)
class WallClockComparison:
    """Measured (not modeled) batch-mine timings: one Farmer vs the
    sequential sharded service vs executed-parallel runs."""

    n_records: int
    single_mine_s: float  # plain Farmer.mine on one thread
    sequential_mine_s: float  # ShardedFarmer.mine on one thread
    runs: tuple[ParallelMineReport, ...]

    def speedup_vs_sequential(self, report: ParallelMineReport) -> float:
        """Wall-clock speedup of one parallel run over the sequential
        sharded ``mine`` (> 1.0 means the executor genuinely helped)."""
        return (
            self.sequential_mine_s / report.elapsed_s
            if report.elapsed_s > 0
            else 0.0
        )


def compare_parallel_mine(
    records: Sequence[TraceRecord],
    config: FarmerConfig,
    n_workers: int | None = None,
    backends: Sequence[str] = ("thread", "process"),
    single_mine_s: float | None = None,
) -> WallClockComparison:
    """Wall-clock mode: time ``mine`` over ``records`` as (a) one plain
    Farmer, (b) the sequential ``ShardedFarmer``, and (c) one
    executed-parallel run per requested backend, each on a fresh
    service instance so every run mines the same cold state. Pass
    ``single_mine_s`` to reuse a measured single-miner baseline across
    several shard counts (it does not depend on ``n_shards``)."""
    if single_mine_s is None:
        start = time.perf_counter()
        Farmer(config.with_(n_shards=1)).mine(records)
        single_mine_s = time.perf_counter() - start
    start = time.perf_counter()
    sequential = ShardedFarmer(config).mine(records)
    sequential_s = time.perf_counter() - start
    runs = []
    for backend in backends:
        with ParallelShardRunner(
            ShardedFarmer(config), n_workers=n_workers, backend=backend
        ) as runner:
            runs.append(runner.mine(records))
    return WallClockComparison(
        n_records=sequential.n_observed,
        single_mine_s=single_mine_s,
        sequential_mine_s=sequential_s,
        runs=tuple(runs),
    )
