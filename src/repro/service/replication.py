"""Warm-standby shard replication for the sharded mining service.

At peta-scale the mining service must survive the same failures the file
system it optimizes is engineered around: a metadata server (and the
miner shard co-located with it) can die at any point in the stream. The
replication layer keeps one **warm standby** per primary shard and makes
failover a first-class, property-tested operation:

* :class:`ShardReplica` — one standby: a full :class:`~repro.core.
  farmer.Farmer` sharing the service's namespace-global stores
  (vocabulary, vector store, similarity cache — those are not shard
  state and survive a shard failure by construction), holding a copy of
  the primary's *private* mining state (graph nodes, Correlator Lists,
  sliding window) as of the last sync barrier.
* :class:`ShardReplicator` — the per-service manager: builds one
  replica per shard, runs sync barriers, and hands a replica over at
  promotion time.

Sync rides the shard-migration seam
-----------------------------------

A sync barrier ships exactly what a rebalance migration ships — graph
nodes and freshly-ranked Correlator Lists — through the same methods
(:meth:`~repro.core.cominer.CoMiner.flush_nodes_report` ranks at the
source, :meth:`~repro.graph.correlation_graph.CorrelationGraph.
adopt_node` / :meth:`~repro.core.cominer.CoMiner.adopt_migrated`
install at the destination), with one difference: migration *moves*
state (``pop_node`` / ``extract_state`` detach), replication *copies*
it (``NodeState.clone`` / ``CorrelatorList.clone``), because the
primary keeps serving. Only nodes whose change tick moved since the
last barrier are shipped, so steady-state sync cost is proportional to
the inter-barrier delta, not to the shard.

The barrier contract
--------------------

Before copying, the barrier drains the primary's pending boundary
echoes (the standby must reflect every request *routed to* the shard)
and ranks every tick-changed list at the source. Ranking at the barrier
is behavior-preserving — a Correlator List is a pure function of the
current graph/vector state, so ranking now or at the next query yields
the same list — and it is what gives failover its guarantee: a promoted
standby serves, bit for bit, what a never-failed service (same config,
fed the stream up to the barrier) would serve for the shard's fids.
``tests/service/test_replication_failover.py`` pins that property with
randomized kill points over a 20k-record trace.

The loss window is the records accepted since the last barrier
(``FailoverReport.lag``); ``FarmerConfig.standby_sync_interval`` trades
that window against sync work, and ``ShardedFarmer.sync_standbys()``
forces a barrier at any external sync point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.farmer import Farmer

__all__ = ["ShardReplica", "ShardReplicator", "StandbySyncReport", "FailoverReport"]


@dataclass(frozen=True, slots=True)
class StandbySyncReport:
    """What one service-wide sync barrier did.

    Attributes:
        at_observed: service-level accepted-request count at the
            barrier — the point a subsequent failover restores to.
        n_shards_synced: primaries copied at this barrier (failed
            shards, if any, have no primary and are skipped).
        n_nodes_shipped: graph nodes (with their lists) copied across
            all shards — the inter-barrier delta, not the full state.
        elapsed_s: wall-clock cost of the barrier (rank + copy).
    """

    at_observed: int
    n_shards_synced: int
    n_nodes_shipped: int
    elapsed_s: float
    # how the shipped nodes travelled: in-place successor-array deltas
    # (three slice-assign memcpys into the standby's existing node) vs
    # whole-node clones (membership changed since the last barrier, or
    # the standby had no copy yet)
    n_delta_syncs: int = 0
    n_full_clones: int = 0


@dataclass(frozen=True, slots=True)
class FailoverReport:
    """What one ``promote_standby`` call did.

    Attributes:
        shard: the recovered shard index.
        synced_at: service-level accepted-request count at the standby's
            last sync barrier — the state the promoted shard serves.
        lag: accepted requests between that barrier and the promotion
            (the partition's loss window; its share of these records is
            gone).
        n_nodes_restored: graph nodes resident in the promoted shard.
        promote_s: time to put the standby in service (the
            unavailability window after the failure was detected).
        reseed_s: time to build and fully sync a fresh standby for the
            promoted shard (re-protection; runs after service resumes).
    """

    shard: int
    synced_at: int
    lag: int
    n_nodes_restored: int
    promote_s: float
    reseed_s: float


class ShardReplica:
    """One warm standby: a shadow Farmer at the last sync barrier."""

    __slots__ = (
        "farmer",
        "synced_at",
        "n_syncs",
        "n_delta_syncs",
        "n_full_clones",
        "_synced_ticks",
    )

    def __init__(self, farmer: Farmer) -> None:
        self.farmer = farmer
        self.synced_at = 0  # service n_observed at the last sync
        self.n_syncs = 0
        self.n_delta_syncs = 0  # nodes refreshed by array-slice copy
        self.n_full_clones = 0  # nodes shipped as whole clones
        self._synced_ticks: dict[int, int] = {}

    def sync(self, primary: Farmer, at_observed: int) -> int:
        """Copy the primary's changed state into the standby.

        Ranks every changed list at the source first (through the same
        ``flush_nodes_report`` seam a rebalance migration uses) and then
        *demotes* each freshly-ranked list back to dirty on the primary:
        the barrier rank exists for the standby's benefit, and the
        primary must stay on its own lazy schedule — otherwise its query
        answers would depend on the sync cadence (the drain-equivalence
        property in ``tests/online`` pins this invisibility). Then
        ships each changed node as either an **array delta** — when the
        standby's copy still has the same successor membership (equal
        ``succ_version`` and fid array), the per-edge stat arrays and
        counters are overwritten in place, three slice-assign memcpys —
        or a whole-node clone (membership changed, or no copy yet). The
        sliding window and accepted-request count are carried so a
        promotion resumes mining with the primary's exact context.
        Returns the number of nodes shipped.
        """
        graph = primary.constructor.graph
        node_map = graph.node_map()
        synced = self._synced_ticks
        is_dirty = primary.miner.is_dirty
        # a list is re-shipped when its graph tick moved OR it is dirty:
        # a dirty-but-tick-unchanged list (demoted at an earlier barrier)
        # would rank differently now that neighbour vectors advanced, and
        # the standby must hold exactly what a barrier-time query of the
        # primary would serve
        changed = [
            fid
            for fid, node in node_map.items()
            if synced.get(fid) != node.change_tick or is_dirty(fid)
        ]
        if changed:
            changed.sort()
            # rank at the source so the shipped lists are exactly what
            # the primary would serve at this barrier (skips lists whose
            # tick has not moved since their last rank)
            ranked_now = primary.miner.flush_nodes_report(changed)
            standby_graph = self.farmer.constructor.graph
            standby_nodes = standby_graph.node_map()
            standby_miner = self.farmer.miner
            list_of = primary.miner.list_of
            for fid in changed:
                node = node_map[fid]
                mine = standby_nodes.get(fid)
                if (
                    mine is not None
                    and mine.succ_version == node.succ_version
                    and mine.succ_fids == node.succ_fids
                ):
                    # the standby's copy (written only by this sync
                    # path) still holds the same successors in the same
                    # order — refresh stats in place, no allocation
                    mine.copy_stats_from(node)
                    self.n_delta_syncs += 1
                else:
                    standby_graph.adopt_node(fid, node.clone())
                    self.n_full_clones += 1
                lst = list_of(fid)
                if lst is not None:
                    standby_miner.adopt_migrated(
                        fid, lst.clone(), node.change_tick
                    )
                synced[fid] = node.change_tick
            # the barrier rank above exists for the standby's benefit;
            # demoting every list it freshly ranked keeps the primary
            # on its own lazy schedule, so its query answers never
            # depend on the sync cadence (the mid-stream rank would
            # otherwise freeze a list's degrees at sync-time vector
            # state if nothing touches it again)
            for fid in ranked_now:
                primary.miner.demote_rank(fid)
        self.farmer.constructor.graph.adopt_window(graph.window_contents())
        # carry the accepted count so a promoted standby's stats() keeps
        # the primary's accounting (intra-package: the replica is an
        # extension of the Farmer it shadows, not a foreign caller)
        self.farmer._n_observed = primary.n_observed
        self.synced_at = at_observed
        self.n_syncs += 1
        return len(changed)

    def memory_bytes(self) -> int:
        """Standby footprint (shared stores accounted by the service)."""
        return self.farmer.memory_bytes()


class ShardReplicator:
    """Per-service standby manager: one :class:`ShardReplica` per shard.

    Owned by a :class:`~repro.service.ShardedFarmer` with
    ``config.replication=True``; the service triggers barriers on its
    accepted-request cadence and calls :meth:`take` / :meth:`reseed`
    during a promotion. Standbys share the service's vocabulary, vector
    store and similarity cache — those are namespace-global, not shard
    state, so a shard failure never loses them.
    """

    def __init__(self, service) -> None:
        self._service = service
        self.replicas: list[ShardReplica] = [
            self._fresh_replica() for _ in service.shards
        ]
        self.n_barriers = 0
        self.n_nodes_shipped = 0

    def _fresh_replica(self) -> ShardReplica:
        service = self._service
        return ShardReplica(
            Farmer(
                service.config,
                vocabulary=service.vocabulary,
                vector_store=service.vector_store,
                sim_cache=service.sim_cache,
            )
        )

    def sync_all(self) -> StandbySyncReport:
        """Run one service-wide sync barrier (healthy shards only).

        The service drains each shard's pending boundary echoes before
        its copy (the caller does this — a standby must reflect every
        request already routed to its primary).
        """
        service = self._service
        start = time.perf_counter()
        at = service.n_observed
        shipped = 0
        n_synced = 0
        deltas0 = sum(r.n_delta_syncs for r in self.replicas)
        clones0 = sum(r.n_full_clones for r in self.replicas)
        for index, replica in enumerate(self.replicas):
            if index in service._failed:
                continue  # no primary to copy; promote first
            shipped += replica.sync(service.shards[index], at)
            n_synced += 1
        self.n_barriers += 1
        self.n_nodes_shipped += shipped
        return StandbySyncReport(
            at_observed=at,
            n_shards_synced=n_synced,
            n_nodes_shipped=shipped,
            elapsed_s=time.perf_counter() - start,
            n_delta_syncs=sum(r.n_delta_syncs for r in self.replicas)
            - deltas0,
            n_full_clones=sum(r.n_full_clones for r in self.replicas)
            - clones0,
        )

    def take(self, index: int) -> ShardReplica:
        """Hand shard ``index``'s standby over for promotion."""
        return self.replicas[index]

    def reseed(self, index: int) -> int:
        """Replace shard ``index``'s replica with a fresh standby fully
        synced from the (just-promoted) primary — re-protection after a
        failover. Returns the nodes shipped by the initial sync."""
        service = self._service
        replica = self._fresh_replica()
        self.replicas[index] = replica
        return replica.sync(service.shards[index], service.n_observed)

    def resize(self) -> None:
        """Rebuild all replicas against the service's current topology
        (called after a rebalance: ownership moved between shards, so
        per-shard standby state is stale wholesale). The next sync
        barrier repopulates every standby from scratch."""
        self.replicas = [self._fresh_replica() for _ in self._service.shards]

    def memory_bytes(self) -> int:
        """Total standby footprint (shared stores counted elsewhere)."""
        return sum(replica.memory_bytes() for replica in self.replicas)
