"""Deterministic fid → shard routing for the sharded mining service.

A router is a pure function of the fid (no state, no RNG), so any
component — the service, the cluster wiring, a benchmark partitioning a
trace, or a future remote client — computes the same owner for the same
file. Three policies ship:

* :class:`HashShardRouter` — ``fid % n_shards``, the same modulo
  partitioning HUSt applies to its metadata servers, so pairing shard
  *i* with MDS *i* co-locates each miner with the server that receives
  its files' requests;
* :class:`RangeShardRouter` — contiguous fid blocks, preserving
  namespace locality (files allocated together mine together). Either
  striped fixed-size blocks (the default, needs no knowledge of the fid
  space) or explicit split points for hand-tuned partitions;
* :class:`ConsistentHashRouter` — a virtual-node hash ring. Modulo
  partitioning reassigns almost every fid when ``n_shards`` changes; a
  consistent-hash ring moves only ~1/n of the namespace per added
  shard, which is what makes :meth:`~repro.service.ShardedFarmer.
  rebalance` a migration of the minority instead of a full re-mine.
  Per-shard ``weights`` scale each shard's virtual-node count, so a
  loaded (or beefier) server can own a larger slice of the ring.

The ring hashes with a seeded SplitMix64 finalizer rather than Python's
``hash`` so virtual-node placement is identical across processes and
interpreter runs regardless of ``PYTHONHASHSEED`` — a requirement for
the process-backend runner and for clients that route independently.

:func:`make_router` builds a router from the ``FarmerConfig`` knobs.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError

__all__ = [
    "ShardRouter",
    "HashShardRouter",
    "RangeShardRouter",
    "ConsistentHashRouter",
    "make_router",
]

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finalizer: a strong, dependency-free 64-bit mix.

    Pure integer arithmetic — no interpreter hash randomization, no
    platform variance — so two processes (or a router reconstructed from
    config on a remote client) place virtual nodes identically.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@runtime_checkable
class ShardRouter(Protocol):
    """Structural protocol: a deterministic total map fid → shard index."""

    n_shards: int

    def route(self, fid: int) -> int:
        """Owning shard of ``fid`` (always in ``range(n_shards)``)."""
        ...  # pragma: no cover - protocol stub


class HashShardRouter:
    """Modulo partitioning — uniform load, no locality."""

    __slots__ = ("n_shards",)

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        self.n_shards = n_shards

    def route(self, fid: int) -> int:
        """``fid % n_shards`` (matches the HUSt cluster's MDS routing)."""
        return fid % self.n_shards


class RangeShardRouter:
    """Contiguous-block partitioning — locality over uniformity.

    Without ``boundaries`` the fid space is striped in fixed-size blocks
    (``block_size`` consecutive fids per block, blocks dealt round-robin
    to shards), which keeps neighbouring files together while still
    spreading load without knowing the fid population. With explicit
    ``boundaries`` (a sorted tuple of ``n_shards - 1`` split points),
    shard ``i`` owns the fids up to and including ``boundaries[i]``.
    """

    __slots__ = ("n_shards", "block_size", "boundaries")

    def __init__(
        self,
        n_shards: int,
        block_size: int = 1024,
        boundaries: tuple[int, ...] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if block_size < 1:
            raise ConfigError("block_size must be >= 1")
        if boundaries is not None:
            if len(boundaries) != n_shards - 1:
                raise ConfigError(
                    f"range router needs {n_shards - 1} boundaries, "
                    f"got {len(boundaries)}"
                )
            if list(boundaries) != sorted(boundaries):
                raise ConfigError("range boundaries must be sorted ascending")
            boundaries = tuple(boundaries)
        self.n_shards = n_shards
        self.block_size = block_size
        self.boundaries = boundaries

    def route(self, fid: int) -> int:
        """Owning shard by explicit split points or striped blocks."""
        if self.boundaries is not None:
            return bisect_left(self.boundaries, fid)
        return (fid // self.block_size) % self.n_shards


class ConsistentHashRouter:
    """Virtual-node consistent-hash ring — the rebalancing policy.

    Each shard owns ``virtual_nodes`` points on a 64-bit ring (scaled by
    its normalized weight); a fid is routed to the shard owning the
    first point at or after the fid's hash, wrapping around. Changing
    the shard count (or the weights) moves only the fids whose nearest
    point changed hands — about ``1/n`` of the namespace per added
    shard — instead of the almost-total reshuffle modulo hashing causes.

    Determinism: ring placement is a pure function of ``(n_shards,
    virtual_nodes, seed, weights)`` through :func:`splitmix64`, so every
    process reconstructing the router from config routes identically.

    ``weights`` need not be normalized (they are divided by their sum);
    a zero weight gives that shard no ring points — an intentionally
    *empty* shard, e.g. one being drained before decommissioning.
    """

    __slots__ = (
        "n_shards",
        "virtual_nodes",
        "seed",
        "weights",
        "_weight_total",
        "_points",
        "_owners",
    )

    def __init__(
        self,
        n_shards: int,
        virtual_nodes: int = 64,
        seed: int = 0,
        weights: Sequence[float] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if virtual_nodes < 1:
            raise ConfigError("virtual_nodes must be >= 1")
        if weights is not None:
            if len(weights) != n_shards:
                raise ConfigError(
                    f"consistent-hash router needs {n_shards} weights, "
                    f"got {len(weights)}"
                )
            if any(w < 0 for w in weights):
                raise ConfigError("shard weights must be >= 0")
            total = float(sum(weights))
            if total <= 0:
                raise ConfigError("at least one shard weight must be positive")
            weights = tuple(float(w) for w in weights)
        self.n_shards = n_shards
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        self.weights = weights
        self._weight_total = float(sum(weights)) if weights is not None else 0.0
        ring: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for j in range(self._vnode_count(shard)):
                # ties (astronomically unlikely) resolve by (point,
                # shard) ordering, which is itself deterministic
                point = splitmix64(splitmix64(seed * 0x9E3779B9 + shard) ^ j)
                ring.append((point, shard))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    def _vnode_count(self, shard: int) -> int:
        """Ring points owned by ``shard`` (weight-scaled, 0 if weight 0)."""
        if self.weights is None:
            return self.virtual_nodes
        share = self.weights[shard] / self._weight_total
        if share == 0.0:
            return 0
        return max(1, round(self.virtual_nodes * self.n_shards * share))

    def vnode_counts(self) -> tuple[int, ...]:
        """Virtual-node count per shard (diagnostics / tests)."""
        return tuple(self._vnode_count(s) for s in range(self.n_shards))

    def route(self, fid: int) -> int:
        """Owner = shard of the first ring point at or after hash(fid)."""
        h = splitmix64(fid ^ (self.seed * 0x94D049BB))
        idx = bisect_left(self._points, h)
        if idx == len(self._points):
            idx = 0  # wrap around the ring
        return self._owners[idx]


def make_router(
    policy: str,
    n_shards: int,
    *,
    virtual_nodes: int = 64,
    seed: int = 0,
    weights: Sequence[float] | None = None,
) -> ShardRouter:
    """Router for a ``FarmerConfig.shard_policy`` value.

    ``virtual_nodes``, ``seed`` and ``weights`` only apply to the
    ``"consistent_hash"`` policy (they mirror the
    ``FarmerConfig.router_virtual_nodes`` / ``router_seed`` knobs).
    """
    if policy == "hash":
        return HashShardRouter(n_shards)
    if policy == "range":
        return RangeShardRouter(n_shards)
    if policy == "consistent_hash":
        return ConsistentHashRouter(
            n_shards, virtual_nodes=virtual_nodes, seed=seed, weights=weights
        )
    raise ConfigError(f"unknown shard policy {policy!r}")
