"""Deterministic fid → shard routing for the sharded mining service.

A router is a pure function of the fid (no state, no RNG), so any
component — the service, the cluster wiring, a benchmark partitioning a
trace, or a future remote client — computes the same owner for the same
file. Two policies ship:

* :class:`HashShardRouter` — ``fid % n_shards``, the same modulo
  partitioning HUSt applies to its metadata servers, so pairing shard
  *i* with MDS *i* co-locates each miner with the server that receives
  its files' requests;
* :class:`RangeShardRouter` — contiguous fid blocks, preserving
  namespace locality (files allocated together mine together). Either
  striped fixed-size blocks (the default, needs no knowledge of the fid
  space) or explicit split points for hand-tuned partitions.

:func:`make_router` builds a router from the ``FarmerConfig`` knobs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError

__all__ = ["ShardRouter", "HashShardRouter", "RangeShardRouter", "make_router"]


@runtime_checkable
class ShardRouter(Protocol):
    """Structural protocol: a deterministic total map fid → shard index."""

    n_shards: int

    def route(self, fid: int) -> int:
        """Owning shard of ``fid`` (always in ``range(n_shards)``)."""
        ...  # pragma: no cover - protocol stub


class HashShardRouter:
    """Modulo partitioning — uniform load, no locality."""

    __slots__ = ("n_shards",)

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        self.n_shards = n_shards

    def route(self, fid: int) -> int:
        """``fid % n_shards`` (matches the HUSt cluster's MDS routing)."""
        return fid % self.n_shards


class RangeShardRouter:
    """Contiguous-block partitioning — locality over uniformity.

    Without ``boundaries`` the fid space is striped in fixed-size blocks
    (``block_size`` consecutive fids per block, blocks dealt round-robin
    to shards), which keeps neighbouring files together while still
    spreading load without knowing the fid population. With explicit
    ``boundaries`` (a sorted tuple of ``n_shards - 1`` split points),
    shard ``i`` owns the fids up to and including ``boundaries[i]``.
    """

    __slots__ = ("n_shards", "block_size", "boundaries")

    def __init__(
        self,
        n_shards: int,
        block_size: int = 1024,
        boundaries: tuple[int, ...] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if block_size < 1:
            raise ConfigError("block_size must be >= 1")
        if boundaries is not None:
            if len(boundaries) != n_shards - 1:
                raise ConfigError(
                    f"range router needs {n_shards - 1} boundaries, "
                    f"got {len(boundaries)}"
                )
            if list(boundaries) != sorted(boundaries):
                raise ConfigError("range boundaries must be sorted ascending")
            boundaries = tuple(boundaries)
        self.n_shards = n_shards
        self.block_size = block_size
        self.boundaries = boundaries

    def route(self, fid: int) -> int:
        """Owning shard by explicit split points or striped blocks."""
        if self.boundaries is not None:
            return bisect_left(self.boundaries, fid)
        return (fid // self.block_size) % self.n_shards


def make_router(policy: str, n_shards: int) -> ShardRouter:
    """Router for a ``FarmerConfig.shard_policy`` value."""
    if policy == "hash":
        return HashShardRouter(n_shards)
    if policy == "range":
        return RangeShardRouter(n_shards)
    raise ConfigError(f"unknown shard policy {policy!r}")
