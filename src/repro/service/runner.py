"""Executed-parallel shard runtime: real threads/processes, not a model.

:mod:`repro.service.harness` *models* shard concurrency (each substream
replayed sequentially, service wall time = slowest shard).
:class:`ParallelShardRunner` *executes* it: the shards of a
:class:`~repro.service.sharded.ShardedFarmer` ingest their substreams
and flush their Correlator Lists on a real executor, and the measured
quantity is wall-clock elapsed time.

Phase structure (and why it is correct)
---------------------------------------

``mine`` runs the same two-phase schedule as the sequential
``ShardedFarmer.mine`` — every shard ingests before any shard flushes —
with each phase fanned out across workers:

* **Ingest** writes three shared structures. The vocabulary locks
  interning (:class:`~repro.vsm.vocabulary.ThreadSafeVocabulary`); the
  vector store locks updates
  (:class:`~repro.core.vector_store.ThreadSafeVectorStore`), and the
  router guarantees concurrent shards write *disjoint* fids (echo
  records skip vector updates entirely). Per-shard graphs are private.
* **Barrier** — the executor joins all ingest futures.
* **Flush** only *reads* the now-quiescent vector store; writes go to
  shard-private lists and the lock-protected shared similarity cache.

Mined lists are therefore bit-identical to the sequential
``ShardedFarmer.mine`` over the same records, for both backends
(property-tested). Two sources of benign nondeterminism remain and are
out of the equivalence scope: vocabulary *id assignment* varies with
thread interleaving (ids are opaque — similarity compares them only for
equality, so degrees are unaffected), and shared-cache hit/miss
*counters* vary (two shards may race to compute the same pair; both
compute the same value).

Backends
--------

* ``"thread"`` — both phases run on a ``ThreadPoolExecutor``. Under
  CPython's GIL this mostly exercises the locking story rather than
  speeding up pure-Python mining; it is the correctness backend (CI
  runs it to catch lock regressions) and the performance backend on
  free-threaded builds.
* ``"process"`` — ingest runs in the parent (it writes the shared
  vocabulary/vector store; shipping those writes back across process
  boundaries would cost more than the ingest itself), then the flush —
  the Function-1-heavy phase — fans out on a ``ProcessPoolExecutor``.
  Each worker receives a pickled snapshot of its shard (locks are
  recreated on unpickle) and ships back exactly the lists it re-ranked;
  the parent installs them via
  :meth:`~repro.core.cominer.CoMiner.adopt_ranked`. Worker-side stamp
  and cache side-state stays behind — losing it costs recomputation on
  a later flush, never correctness.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.farmer import Farmer
from repro.errors import ConfigError
from repro.graph.correlator_list import CorrelatorList
from repro.service.sharded import ShardedFarmer
from repro.traces.record import TraceRecord

__all__ = ["ParallelShardRunner", "ParallelMineReport", "BACKENDS"]

BACKENDS = ("thread", "process")


def _flush_shard_worker(
    shard: Farmer, fids: list[int]
) -> dict[int, CorrelatorList]:
    """Process-backend worker: flush a pickled shard snapshot and return
    the lists it re-ranked (module-level so it pickles under spawn)."""
    return shard.miner.flush_nodes_report(fids)


@dataclass(frozen=True, slots=True)
class ParallelMineReport:
    """Wall-clock measurement of one parallel ``mine`` call."""

    backend: str
    n_workers: int
    n_records: int  # service-level accepted records (echoes not counted)
    n_boundary_echoes: int
    partition_s: float
    ingest_s: float
    flush_s: float

    @property
    def elapsed_s(self) -> float:
        """Total wall time of the call (all phases)."""
        return self.partition_s + self.ingest_s + self.flush_s

    @property
    def throughput(self) -> float:
        """Accepted records per wall-clock second."""
        elapsed = self.elapsed_s
        return self.n_records / elapsed if elapsed > 0 else 0.0


class ParallelShardRunner:
    """Drives a :class:`ShardedFarmer`'s shards on a real executor.

    The runner owns no mining state — it orchestrates the service it
    wraps, so queries/stats keep going through the service object and a
    runner can be created per batch or reused across batches (the
    boundary-detection seed carries over exactly as with sequential
    ``mine``).
    """

    def __init__(
        self,
        service: ShardedFarmer,
        n_workers: int | None = None,
        backend: str = "thread",
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown runner backend {backend!r}; use one of {BACKENDS}"
            )
        if not service.config.lazy_reevaluation:
            raise ConfigError(
                "ParallelShardRunner requires lazy_reevaluation: the eager "
                "schedule interleaves shared-vector writes with per-request "
                "ranking, which has no order-independent parallel execution"
            )
        if n_workers is None:
            n_workers = min(service.config.n_shards, os.cpu_count() or 1)
        if n_workers < 1:
            raise ConfigError("n_workers must be >= 1")
        self.service = service
        self.n_workers = n_workers
        self.backend = backend
        # the executor is created lazily and reused across batches, so a
        # chunked stream pays worker spin-up once, not per mine() call
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None

    def _executor(self):
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def mine(self, records: Sequence[TraceRecord]) -> ParallelMineReport:
        """Batch-mine ``records`` with the shards running in parallel.

        Same contract as ``ShardedFarmer.mine`` (ingest barrier, then
        flush; lists rank against end-of-batch state); returns the
        phase-timed wall-clock report.
        """
        service = self.service
        t0 = time.perf_counter()
        # intra-package use of the service's substream rule and stream
        # accounting, exactly like the replay harness (_partition also
        # delivers any echoes still queued from a preceding stream and
        # places this batch's echoes per the configured drain schedule)
        subs, accepted, prev, last_fid = service._partition(
            records, service._prev_owner
        )
        t1 = time.perf_counter()
        work = [
            (shard, sub) for shard, sub in zip(service.shards, subs) if sub
        ]
        pool = self._executor()
        if self.backend == "thread":
            touched = list(
                pool.map(lambda item: item[0].ingest_mixed(item[1]), work)
            )
            t2 = time.perf_counter()
            # barrier above: every shard has ingested; flushes only
            # read the shared stores now
            list(
                pool.map(
                    lambda item: item[0].miner.flush_nodes(sorted(item[1])),
                    zip((shard for shard, _ in work), touched),
                )
            )
            t3 = time.perf_counter()
        else:
            # process backend: ingest writes shared state, so it stays in
            # the parent; the Function-1-heavy flush is what fans out
            touched = [shard.ingest_mixed(sub) for shard, sub in work]
            t2 = time.perf_counter()
            fid_lists = [sorted(t) for t in touched]
            futures = [
                pool.submit(_flush_shard_worker, shard, fids)
                for (shard, _), fids in zip(work, fid_lists)
            ]
            for (shard, _), fids, future in zip(work, fid_lists, futures):
                shard.miner.adopt_ranked(future.result(), fids)
            t3 = time.perf_counter()
        n_placed = sum(len(s) for s in subs)
        echoes = n_placed - accepted
        service._absorb_stream_state(accepted, n_placed, prev, last_fid)
        return ParallelMineReport(
            backend=self.backend,
            n_workers=self.n_workers,
            n_records=accepted,
            n_boundary_echoes=echoes,
            partition_s=t1 - t0,
            ingest_s=t2 - t1,
            flush_s=t3 - t2,
        )
