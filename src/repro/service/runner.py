"""Executed-parallel shard runtime: real threads/processes, not a model.

:mod:`repro.service.harness` *models* shard concurrency (each substream
replayed sequentially, service wall time = slowest shard).
:class:`ParallelShardRunner` *executes* it: the shards of a
:class:`~repro.service.sharded.ShardedFarmer` ingest their substreams
and flush their Correlator Lists on a real executor, and the measured
quantity is wall-clock elapsed time.

Phase structure (and why it is correct)
---------------------------------------

``mine`` runs the same two-phase schedule as the sequential
``ShardedFarmer.mine`` — every shard ingests before any shard flushes —
with each phase fanned out across workers:

* **Ingest** writes three shared structures. The vocabulary locks
  interning (:class:`~repro.vsm.vocabulary.ThreadSafeVocabulary`); the
  vector store locks updates
  (:class:`~repro.core.vector_store.ThreadSafeVectorStore`), and the
  router guarantees concurrent shards write *disjoint* fids (echo
  records skip vector updates entirely). Per-shard graphs are private.
* **Barrier** — the executor joins all ingest futures.
* **Flush** only *reads* the now-quiescent vector store; writes go to
  shard-private lists and the lock-protected shared similarity cache.

Mined lists are therefore bit-identical to the sequential
``ShardedFarmer.mine`` over the same records, for both backends
(property-tested). Two sources of benign nondeterminism remain and are
out of the equivalence scope: vocabulary *id assignment* varies with
thread interleaving (ids are opaque — similarity compares them only for
equality, so degrees are unaffected), and shared-cache hit/miss
*counters* vary (two shards may race to compute the same pair; both
compute the same value).

Backends
--------

* ``"thread"`` — both phases run on a ``ThreadPoolExecutor``. Under
  CPython's GIL this mostly exercises the locking story rather than
  speeding up pure-Python mining; it is the correctness backend (CI
  runs it to catch lock regressions) and the performance backend on
  free-threaded builds.
* ``"process"`` — ingest runs in the parent (it writes the shared
  vocabulary/vector store; shipping those writes back across process
  boundaries would cost more than the ingest itself), then the flush —
  the Function-1-heavy phase — fans out on a ``ProcessPoolExecutor``.
  The shared read-state a flush needs (config + end-of-batch vector
  store) is snapshotted to a temp file **once per batch**; each
  dispatch then ships only a token for that snapshot, the shard's
  touched graph nodes and the fid list — instead of pickling the whole
  shard Farmer per dispatch. A worker loads the snapshot on first
  sight of the token (cached in the worker process), builds a scratch
  Farmer around it, adopts the shipped nodes and ranks the fids; it
  ships back exactly the lists it ranked and the parent installs them
  via :meth:`~repro.core.cominer.CoMiner.adopt_ranked`. A scratch
  Farmer ranks every dispatched fid from just nodes + vectors — a
  Correlator List is a pure function of those — so the result is
  bit-identical to an in-parent flush. The per-dispatch payload and
  per-batch snapshot sizes are reported (``dispatch_bytes`` /
  ``shared_bytes``), which is what BENCH_service.json tracks.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.farmer import Farmer
from repro.errors import ConfigError
from repro.graph.correlator_list import CorrelatorList
from repro.service.sharded import ShardedFarmer
from repro.traces.record import TraceRecord

__all__ = ["ParallelShardRunner", "ParallelMineReport", "BACKENDS"]

BACKENDS = ("thread", "process")

# Worker-process cache of the current batch's shared snapshot: the
# (config, vector store) pair every shard dispatch of one batch reads.
# Keyed by the parent-chosen token so a stale snapshot is never reused.
_WORKER_SHARED: tuple[str, object, object] | None = None


def _flush_shard_worker(
    shard: Farmer, fids: list[int]
) -> dict[int, CorrelatorList]:
    """Process-backend worker: flush a pickled shard snapshot and return
    the lists it re-ranked (module-level so it pickles under spawn)."""
    return shard.miner.flush_nodes_report(fids)


def _flush_payload_worker(payload: bytes) -> dict[int, CorrelatorList]:
    """Process-backend worker, shared-snapshot protocol: the payload
    carries ``(token, snapshot_path, nodes, fids)``. The (config,
    vector store) snapshot at ``snapshot_path`` is loaded once per
    worker process per token; each dispatch wraps it in a *fresh*
    scratch Farmer (a shell around the shared store — no data of its
    own, so construction is cheap), adopts its shard's touched nodes
    and ranks its fids. The Farmer must not be shared across dispatches:
    two shards' graphs can both hold a node for the same fid (an owner
    node and a boundary halo) whose per-node change ticks coincide,
    which would make the second dispatch's rank of that fid look
    already-done."""
    global _WORKER_SHARED
    token, path, nodes, fids = pickle.loads(payload)
    if _WORKER_SHARED is None or _WORKER_SHARED[0] != token:
        with open(path, "rb") as fh:
            config, store = pickle.load(fh)
        _WORKER_SHARED = (token, config, store)
    scratch = Farmer(_WORKER_SHARED[1], vector_store=_WORKER_SHARED[2])
    graph = scratch.constructor.graph
    for fid, node in nodes.items():
        graph.adopt_node(fid, node)
    return scratch.miner.flush_nodes_report(fids)


@dataclass(frozen=True, slots=True)
class ParallelMineReport:
    """Wall-clock measurement of one parallel ``mine`` call."""

    backend: str
    n_workers: int
    n_records: int  # service-level accepted records (echoes not counted)
    n_boundary_echoes: int
    partition_s: float
    ingest_s: float
    flush_s: float
    # process backend only: bytes pickled per dispatch (token + touched
    # nodes + fids, summed over shards) and the once-per-batch shared
    # (config, vector store) snapshot size. Zero on the thread backend.
    dispatch_bytes: int = 0
    shared_bytes: int = 0

    @property
    def elapsed_s(self) -> float:
        """Total wall time of the call (all phases)."""
        return self.partition_s + self.ingest_s + self.flush_s

    @property
    def throughput(self) -> float:
        """Accepted records per wall-clock second."""
        elapsed = self.elapsed_s
        return self.n_records / elapsed if elapsed > 0 else 0.0


class ParallelShardRunner:
    """Drives a :class:`ShardedFarmer`'s shards on a real executor.

    The runner owns no mining state — it orchestrates the service it
    wraps, so queries/stats keep going through the service object and a
    runner can be created per batch or reused across batches (the
    boundary-detection seed carries over exactly as with sequential
    ``mine``).
    """

    def __init__(
        self,
        service: ShardedFarmer,
        n_workers: int | None = None,
        backend: str = "thread",
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown runner backend {backend!r}; use one of {BACKENDS}"
            )
        if not service.config.lazy_reevaluation:
            raise ConfigError(
                "ParallelShardRunner requires lazy_reevaluation: the eager "
                "schedule interleaves shared-vector writes with per-request "
                "ranking, which has no order-independent parallel execution"
            )
        if n_workers is None:
            n_workers = min(service.config.n_shards, os.cpu_count() or 1)
        if n_workers < 1:
            raise ConfigError("n_workers must be >= 1")
        self.service = service
        self.n_workers = n_workers
        self.backend = backend
        # the executor is created lazily and reused across batches, so a
        # chunked stream pays worker spin-up once, not per mine() call
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._shared_token = 0  # per-batch snapshot-identity counter

    def _executor(self):
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def mine(self, records: Sequence[TraceRecord]) -> ParallelMineReport:
        """Batch-mine ``records`` with the shards running in parallel.

        Same contract as ``ShardedFarmer.mine`` (ingest barrier, then
        flush; lists rank against end-of-batch state); returns the
        phase-timed wall-clock report.
        """
        service = self.service
        t0 = time.perf_counter()
        # intra-package use of the service's substream rule and stream
        # accounting, exactly like the replay harness (_partition also
        # delivers any echoes still queued from a preceding stream and
        # places this batch's echoes per the configured drain schedule)
        subs, accepted, prev, last_fid = service._partition(
            records, service._prev_owner
        )
        t1 = time.perf_counter()
        work = [
            (shard, sub) for shard, sub in zip(service.shards, subs) if sub
        ]
        pool = self._executor()
        dispatch_bytes = shared_bytes = 0
        if self.backend == "thread":
            touched = list(
                pool.map(lambda item: item[0].ingest_mixed(item[1]), work)
            )
            t2 = time.perf_counter()
            # barrier above: every shard has ingested; flushes only
            # read the shared stores now
            list(
                pool.map(
                    lambda item: item[0].miner.flush_nodes(sorted(item[1])),
                    zip((shard for shard, _ in work), touched),
                )
            )
            t3 = time.perf_counter()
        else:
            # process backend: ingest writes shared state, so it stays in
            # the parent; the Function-1-heavy flush is what fans out
            touched = [shard.ingest_mixed(sub) for shard, sub in work]
            t2 = time.perf_counter()
            fid_lists = [sorted(t) for t in touched]
            dispatch_bytes, shared_bytes, t3 = self._flush_processes(
                work, fid_lists
            )
        n_placed = sum(len(s) for s in subs)
        echoes = n_placed - accepted
        service._absorb_stream_state(accepted, n_placed, prev, last_fid)
        return ParallelMineReport(
            backend=self.backend,
            n_workers=self.n_workers,
            n_records=accepted,
            n_boundary_echoes=echoes,
            partition_s=t1 - t0,
            ingest_s=t2 - t1,
            flush_s=t3 - t2,
            dispatch_bytes=dispatch_bytes,
            shared_bytes=shared_bytes,
        )

    def _flush_processes(self, work, fid_lists):
        """Fan the flush phase out over the process pool with the
        shared-snapshot protocol: one (config, vector store) temp-file
        snapshot per batch, one slim pickled payload per shard dispatch.
        Returns (dispatch bytes, snapshot bytes, end timestamp)."""
        service = self.service
        self._shared_token += 1
        token = f"{os.getpid()}-{id(self)}-{self._shared_token}"
        fd, path = tempfile.mkstemp(prefix="repro-shared-", suffix=".pkl")
        dispatch_bytes = 0
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    (service.config, service.vector_store),
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            shared_bytes = os.path.getsize(path)
            pool = self._executor()
            futures = []
            for (shard, _), fids in zip(work, fid_lists):
                node_map = shard.constructor.graph.node_map()
                nodes = {
                    fid: node_map[fid] for fid in fids if fid in node_map
                }
                payload = pickle.dumps(
                    (token, path, nodes, fids),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                dispatch_bytes += len(payload)
                futures.append(pool.submit(_flush_payload_worker, payload))
            for (shard, _), fids, future in zip(work, fid_lists, futures):
                shard.miner.adopt_ranked(future.result(), fids)
        finally:
            os.unlink(path)
        return dispatch_bytes, shared_bytes, time.perf_counter()
