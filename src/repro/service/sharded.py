"""The sharded FARMER mining service.

The paper's HUSt deployment hash-partitions metadata across metadata
servers, but a single :class:`~repro.core.farmer.Farmer` still funnels
every server through one miner. :class:`ShardedFarmer` removes that
serial bottleneck: it partitions the fid namespace across ``n_shards``
independent Farmer shards behind a deterministic
:mod:`~repro.service.router`, so each shard mines only its own files and
N shards can run concurrently (one per metadata server in the cluster
simulator, one per process in a real deployment).

Shared state — and why sharing is safe
--------------------------------------

Three components are deliberately *not* sharded:

* the **vocabulary** (interned attribute tokens) — ids must agree across
  shards for vectors to be comparable;
* the **vector store** — a file's semantic vector is a property of the
  namespace, not of a partition, so one store holds the truth and its
  monotonic versions are global;
* the **similarity cache** (``shared_sim_cache=True``, the default) — a
  thread-safe :class:`~repro.core.simcache.SharedSimilarityCache` whose
  entries are keyed on vector versions. Because versions come from the
  single shared store, an entry written by one shard is exact for every
  other shard; a shard whose endpoint moved on simply misses. Stale
  values are unservable by construction, which is what makes cross-shard
  reuse of Function-1 work safe without invalidation traffic.

Cross-shard edges (``cross_shard_edges``)
-----------------------------------------

Partitioning the stream would silently drop correlations that straddle a
shard boundary. When the immediate predecessor of a request was routed
to a different shard (a *boundary request*), the request is observed by
**both** owner shards: its own (the full pipeline) and the
predecessor's, whose sliding window still holds the preceding files, so
the ``pred → fid`` edges are mined where ``pred``'s Correlator List
lives. Scope: adjacent (distance-1) cross-shard pairs are always
captured; deeper window pairs are captured only when the predecessor's
shard also observed the intervening requests, and the predecessor
shard's window distances are compressed (it never saw the skipped
foreign requests), so LDA weights on echoed edges are upper bounds.
Set ``cross_shard_edges=False`` for strict partition isolation — each
shard then sees exactly its routed substream, and the service is
bit-for-bit a set of independent per-shard Farmers.

Equivalence scope: with ``n_shards=1`` every entry point is bit-for-bit
identical to a plain Farmer (property-tested on a 20k-record trace).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer
from repro.core.simcache import SharedSimilarityCache, SimCacheStats
from repro.core.sorter import CorrelationSnapshot
from repro.core.vector_store import ThreadSafeVectorStore
from repro.errors import ConfigError
from repro.graph.correlator_list import CorrelatorEntry
from repro.service.router import ShardRouter, make_router
from repro.service.stats import ServiceStats, combine_cache_stats
from repro.traces.record import TraceRecord
from repro.vsm.vocabulary import ThreadSafeVocabulary

__all__ = ["ShardedFarmer"]


class ShardedFarmer:
    """N namespace-partitioned Farmer shards behind one façade.

    Drop-in for :class:`Farmer` in every consumer that goes through the
    public entry points (``observe`` / ``mine`` / ``predict`` /
    ``correlators`` / ``snapshot`` / ``memory_bytes``); ``stats()``
    returns the richer :class:`~repro.service.stats.ServiceStats`.
    """

    def __init__(
        self, config: FarmerConfig | None = None, router: ShardRouter | None = None
    ) -> None:
        self.config = config if config is not None else FarmerConfig()
        n = self.config.n_shards
        if router is None:
            router = make_router(self.config.shard_policy, n)
        elif router.n_shards != n:
            raise ConfigError(
                f"router has {router.n_shards} shards, config wants {n}"
            )
        self.router = router
        # the shared stores are the service's write-contended state: the
        # vocabulary locks interning (all shards intern), the vector
        # store locks updates (shards write disjoint fids, but the dicts
        # underneath still need serialised mutation), and the similarity
        # cache locks everything. This is what lets ParallelShardRunner
        # execute shards on real threads.
        self.vocabulary = ThreadSafeVocabulary()
        self.extractor = Extractor(self.config.attributes, self.vocabulary)
        self.vector_store = ThreadSafeVectorStore(self.config, self.extractor)
        self.sim_cache = (
            SharedSimilarityCache(self.config.sim_cache_capacity)
            if self.config.shared_sim_cache
            else None
        )
        self.shards: tuple[Farmer, ...] = tuple(
            Farmer(
                self.config,
                vocabulary=self.vocabulary,
                vector_store=self.vector_store,
                sim_cache=self.sim_cache,
            )
            for _ in range(n)
        )
        self._prev_owner: int | None = None
        self._n_observed = 0
        self._n_boundary_echoes = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_of(self, fid: int) -> int:
        """Owning shard index of ``fid``."""
        return self.router.route(fid)

    def shard_for(self, fid: int) -> Farmer:
        """Owning shard of ``fid`` (queries go to the owner only)."""
        return self.shards[self.router.route(fid)]

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Route one request to its owner shard (and, for a boundary
        request under ``cross_shard_edges``, echo it to the predecessor's
        shard so the inter-shard edge is mined)."""
        if (
            self.config.op_filter is not None
            and record.op not in self.config.op_filter
        ):
            return
        owner = self.router.route(record.fid)
        self.shards[owner].observe(record)
        prev = self._prev_owner
        if self.config.cross_shard_edges and prev is not None and prev != owner:
            # the owner just folded the record into the shared vector
            # store, so the echo pays only graph/list work on prev
            self.shards[prev].observe_echo(record)
            self._n_boundary_echoes += 1
        self._prev_owner = owner
        self._n_observed += 1

    def _partition(
        self, records: Iterable[TraceRecord], prev: int | None
    ) -> tuple[list[list[tuple[TraceRecord, bool]]], int, int | None]:
        """The one place the owner/echo substream rule lives.

        Returns ``(subs, n_accepted, last_owner)`` where ``subs[i]`` is
        shard *i*'s substream of ``(record, is_echo)`` pairs: the
        records it owns plus, under ``cross_shard_edges``, the boundary
        requests echoed to it. ``prev`` seeds the boundary detection
        (pass the live ``_prev_owner`` to continue a stream, ``None``
        for a standalone split).
        """
        subs: list[list[tuple[TraceRecord, bool]]] = [
            [] for _ in range(self.config.n_shards)
        ]
        op_filter = self.config.op_filter
        cross = self.config.cross_shard_edges
        route = self.router.route
        accepted = 0
        for record in records:
            if op_filter is not None and record.op not in op_filter:
                continue
            owner = route(record.fid)
            subs[owner].append((record, False))
            if cross and prev is not None and prev != owner:
                subs[prev].append((record, True))
            prev = owner
            accepted += 1
        return subs, accepted, prev

    def partition(
        self, records: Iterable[TraceRecord]
    ) -> list[list[tuple[TraceRecord, bool]]]:
        """Split a trace into the per-shard ``(record, is_echo)``
        substreams ``observe`` would feed each shard.

        This is the replay surface for per-shard concurrency (the
        service benchmark drives one substream per modeled worker).
        Under strict isolation a shard replaying its substream is
        bit-identical to the global ``observe`` schedule; with echoes
        enabled the substreams interleave shared-vector updates in a
        different order, so eagerly-refreshed edge degrees can differ
        transiently until the next query re-ranks the list.
        """
        return self._partition(records, None)[0]

    def mine(self, records: Sequence[TraceRecord]) -> "ShardedFarmer":
        """Batch-mine a trace shard by shard; returns self for chaining.

        Two phases: every shard first ingests its substream (graph and
        vector work only), then every shard runs its tick-driven flush.
        The barrier matters because echoed successors live on *other*
        shards: flushing shard by shard would rank them against whatever
        vector prefix happened to be ingested, while the barrier ranks
        everything against the end-of-batch state — the same guarantee
        ``Farmer.mine`` gives a single miner.
        """
        subs, accepted, prev = self._partition(records, self._prev_owner)
        self._n_observed += accepted
        self._n_boundary_echoes += sum(len(s) for s in subs) - accepted
        self._prev_owner = prev
        if not self.config.lazy_reevaluation:
            for shard, sub in zip(self.shards, subs):
                if sub:
                    shard.mine_mixed(sub)
            return self
        changed = [shard.ingest_mixed(sub) for shard, sub in zip(self.shards, subs)]
        for shard, touched in zip(self.shards, changed):
            if touched:
                shard.miner.flush_nodes(sorted(touched))
        return self

    # ------------------------------------------------------------------
    # queries (route to the owner shard)
    # ------------------------------------------------------------------

    def correlators(self, fid: int) -> list[CorrelatorEntry]:
        """Valid correlates of ``fid`` from its owner shard."""
        return self.shard_for(fid).correlators(fid)

    def predict(self, fid: int, k: int | None = None) -> list[int]:
        """Prefetch candidates for ``fid`` from its owner shard."""
        return self.shard_for(fid).predict(fid, k)

    def correlation_degree(self, src: int, dst: int) -> float:
        """``R(src, dst)`` as evaluated by ``src``'s owner shard."""
        return self.shard_for(src).correlation_degree(src, dst)

    def semantic_distance(self, src: int, dst: int) -> float:
        """``sim(src, dst)`` (vectors are shared, so any shard agrees)."""
        return self.shard_for(src).semantic_distance(src, dst)

    def access_frequency(self, src: int, dst: int) -> float:
        """``F(src, dst)`` from ``src``'s owner shard."""
        return self.shard_for(src).access_frequency(src, dst)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def flush_shard(self, index: int) -> None:
        """Re-rank shard ``index``'s *owned* dirty lists. Halo lists
        (foreign fids left dirty by boundary echoes) stay lazy — queries
        route to the owner shard, so ranking them is work nobody reads.
        """
        shard = self.shards[index]
        route = self.router.route
        shard.miner.flush_nodes(
            fid for fid in shard.miner.dirty_nodes() if route(fid) == index
        )

    def snapshot(self) -> CorrelationSnapshot:
        """Aggregate Correlator-List statistics over *owned* lists.

        A boundary file can hold a partial list on a neighbour shard
        (the echo's by-product); only the owner shard's authoritative
        list is counted, so ``n_shards=1`` matches ``Farmer.snapshot``
        exactly and multi-shard numbers are not inflated by halo state.
        """
        route = self.router.route
        lengths: list[int] = []
        tops: list[float] = []
        for index, shard in enumerate(self.shards):
            self.flush_shard(index)
            for fid, lst in shard.miner.lists().items():
                if len(lst) > 0 and route(fid) == index:
                    lengths.append(len(lst))
                    tops.append(lst.top(1)[0].degree)
        if not lengths:
            return CorrelationSnapshot(0, 0, 0.0, 0, 0.0)
        return CorrelationSnapshot(
            n_lists=len(lengths),
            n_entries=sum(lengths),
            mean_length=sum(lengths) / len(lengths),
            max_length=max(lengths),
            mean_top_degree=sum(tops) / len(tops),
        )

    def sim_cache_stats(self) -> SimCacheStats:
        """Service-level similarity-cache counters (shared cache's, or
        the per-shard caches summed)."""
        if self.sim_cache is not None:
            return self.sim_cache.stats()
        return combine_cache_stats(
            [shard.sim_cache_stats() for shard in self.shards]
        )

    def memory_bytes(self) -> int:
        """Total footprint; shared components are counted exactly once."""
        total = self.vocabulary.approx_bytes() + self.vector_store.approx_bytes()
        if self.sim_cache is not None:
            total += self.sim_cache.approx_bytes()
        # shards skip the injected (non-owned) components themselves
        total += sum(shard.memory_bytes() for shard in self.shards)
        return total

    @property
    def n_observed(self) -> int:
        """Requests the service accepted (echoes not double-counted)."""
        return self._n_observed

    @property
    def n_boundary_echoes(self) -> int:
        """Boundary requests echoed to the predecessor's shard."""
        return self._n_boundary_echoes

    def stats(self) -> ServiceStats:
        """Aggregated per-shard stats, cache counters and memory."""
        return ServiceStats(
            n_shards=self.config.n_shards,
            n_observed=self._n_observed,
            n_boundary_echoes=self._n_boundary_echoes,
            shards=tuple(shard.stats() for shard in self.shards),
            sim_cache=self.sim_cache_stats(),
            memory_bytes=self.memory_bytes(),
        )
