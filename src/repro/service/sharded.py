"""The sharded FARMER mining service.

The paper's HUSt deployment hash-partitions metadata across metadata
servers, but a single :class:`~repro.core.farmer.Farmer` still funnels
every server through one miner. :class:`ShardedFarmer` removes that
serial bottleneck: it partitions the fid namespace across ``n_shards``
independent Farmer shards behind a deterministic
:mod:`~repro.service.router`, so each shard mines only its own files and
N shards can run concurrently (one per metadata server in the cluster
simulator, one per process in a real deployment).

Shared state — and why sharing is safe
--------------------------------------

Three components are deliberately *not* sharded:

* the **vocabulary** (interned attribute tokens) — ids must agree across
  shards for vectors to be comparable;
* the **vector store** — a file's semantic vector is a property of the
  namespace, not of a partition, so one store holds the truth and its
  monotonic versions are global;
* the **similarity cache** (``shared_sim_cache=True``, the default) — a
  thread-safe :class:`~repro.core.simcache.SharedSimilarityCache` whose
  entries are keyed on vector versions. Because versions come from the
  single shared store, an entry written by one shard is exact for every
  other shard; a shard whose endpoint moved on simply misses. Stale
  values are unservable by construction, which is what makes cross-shard
  reuse of Function-1 work safe without invalidation traffic.

Cross-shard edges (``cross_shard_edges``) and batched echoes
------------------------------------------------------------

Partitioning the stream would silently drop correlations that straddle a
shard boundary. When the immediate predecessor of a request was routed
to a different shard (a *boundary request*), the request is observed by
**both** owner shards: its own (the full pipeline) and the
predecessor's, whose sliding window still holds the preceding files, so
the ``pred → fid`` edges are mined where ``pred``'s Correlator List
lives. Scope: adjacent (distance-1) cross-shard pairs are always
captured; deeper window pairs are captured only when the predecessor's
shard also observed the intervening requests, and the predecessor
shard's window distances are compressed (it never saw the skipped
foreign requests), so LDA weights on echoed edges are upper bounds.
Set ``cross_shard_edges=False`` for strict partition isolation — each
shard then sees exactly its routed substream, and the service is
bit-for-bit a set of independent per-shard Farmers.

Echoes are not delivered synchronously with the triggering request:
they accumulate in per-destination-shard queues (one append on the hot
path — in a deployment the destination runs on another core and a
synchronous echo would be a cross-shard call per boundary request).
``FarmerConfig.echo_flush_interval`` picks the drain schedule:

* ``0`` (default) — *just-in-time*: a shard's queue drains immediately
  before its next owned observation and before any query routed to it.
  Nothing can land on a shard between an echo's enqueue and that drain,
  so the destination's sliding window is identical to the synchronous
  schedule's and results are **bit-for-bit equivalent to synchronous
  delivery** (property-tested) — the batching is free.
* ``K > 0`` — *batched*: queues drain every K accepted requests, at
  every batch-``mine`` ingest barrier, before any query routed to the
  destination, and on an explicit :meth:`flush_echoes`. A late echo is
  observed against the destination's window *at drain time*, so echoed
  edges can attach to newer predecessors at compressed LDA distances.
  The FPA lazy-query guarantee is re-stated accordingly: a query still
  reflects every request *routed to* the owner shard (owned requests
  plus all echoes enqueued to it, because the drain precedes the
  query), but the echoed edges carry drain-time window geometry rather
  than request-time geometry. ``n_shards=1``, strict isolation and all
  owned-record mining are unaffected (echoes never exist or never
  change meaning).

Equivalence scope: with ``n_shards=1`` every entry point is bit-for-bit
identical to a plain Farmer (property-tested on a 20k-record trace).

Rebalancing (``rebalance``)
---------------------------

The router is swappable at runtime: :meth:`ShardedFarmer.rebalance`
installs a new topology (different shard count, different policy, or
new consistent-hash weights) and migrates **only the fids whose owner
changed** — each moved fid's graph node and freshly-ranked Correlator
List ship from the old owner to the new one through the same
serialization seam the process-backend runner uses
(:meth:`~repro.core.cominer.CoMiner.flush_nodes_report` /
``adopt_migrated``); nothing is re-mined. The shared vocabulary, vector
store and similarity cache are namespace-global and never move.
Pre-rebalance query results are preserved verbatim (the migrated list
is the list the old owner would have served), and with ``window=1`` —
the regime where boundary echoes capture the cross-shard edge set
exactly — a mined-then-rebalanced service is bit-for-bit identical to a
service freshly mined at the new topology (both property-tested).

Replication and failover (``fail_shard`` / ``promote_standby``)
---------------------------------------------------------------

With ``FarmerConfig.replication=True`` the service keeps one warm
standby per primary shard (:mod:`repro.service.replication`), synced
through the same state-shipping seam a rebalance migration uses, every
``standby_sync_interval`` accepted requests (and on demand via
:meth:`sync_standbys`). :meth:`ShardedFarmer.fail_shard` simulates the
loss of a shard's private mining state — its graph, lists and in-flight
echoes are gone; the shared vocabulary/vector store/similarity cache
are namespace-global and survive by construction. While failed,
requests and queries routed to that shard raise
:class:`~repro.errors.ShardFailedError`; every other partition keeps
serving. :meth:`ShardedFarmer.promote_standby` puts the standby in
service and reseeds a fresh standby behind it. The promoted shard
serves, bit for bit, what a never-failed service fed the stream up to
the **last sync barrier** would serve for its fids (property-tested
with randomized kill points, double failures and
fail-during-``mine``); the records accepted since that barrier are the
partition's loss window.

Load-aware rebalancing (``auto_rebalance``) and idle echo drain
---------------------------------------------------------------

:meth:`ShardedFarmer.auto_rebalance` closes the loop the manual
``rebalance(weights=...)`` hook left open: it reads each shard's
observed load (requests absorbed + re-rank entries scanned, the same
counters ``ServiceStats`` reports), converts it into consistent-hash
ring weights — monotone *decreasing* in load, so hot shards shed
namespace and idle shards absorb it — and installs them through
:meth:`ShardedFarmer.rebalance` (queries are invariant, exactly as for
any rebalance). ``FarmerConfig.echo_idle_drain`` adds the live drain
trigger for idle destinations: a shard whose echo queue is non-empty
and which has seen no activity for that many accepted requests
elsewhere has its queue drained proactively instead of waiting for its
next owned request, query, or interval expiry.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer
from repro.core.simcache import SharedSimilarityCache, SimCacheStats
from repro.core.sorter import CorrelationSnapshot
from repro.core.vector_store import ThreadSafeVectorStore
from repro.errors import ConfigError, ReplicationError, ShardFailedError
from repro.graph.correlator_list import CorrelatorEntry
from repro.service.replication import (
    FailoverReport,
    ShardReplicator,
    StandbySyncReport,
)
from repro.service.router import ShardRouter, make_router
from repro.service.stats import ServiceStats, combine_cache_stats, load_signal
from repro.traces.record import TraceRecord
from repro.vsm.vocabulary import ThreadSafeVocabulary

__all__ = [
    "ShardedFarmer",
    "RebalanceReport",
    "AutoRebalanceReport",
    "StreamIngestReport",
]


@dataclass(frozen=True, slots=True)
class RebalanceReport:
    """What one :meth:`ShardedFarmer.rebalance` call did."""

    n_shards_before: int
    n_shards_after: int
    policy: str
    n_owned: int  # fids owned across all shards when the call started
    n_migrated: int  # fids whose owner changed (node + list shipped)
    elapsed_s: float

    @property
    def moved_fraction(self) -> float:
        """Migrated share of the namespace (consistent hashing's point:
        ~1/n per added shard instead of modulo's near-total reshuffle)."""
        return self.n_migrated / self.n_owned if self.n_owned else 0.0


@dataclass(frozen=True, slots=True)
class AutoRebalanceReport:
    """What one :meth:`ShardedFarmer.auto_rebalance` call decided and did.

    Attributes:
        loads: per-shard load observed **since the previous rebalance
            decision** (requests absorbed + re-rank entries scanned —
            the same signal ``ServiceStats.shard_loads`` reports
            cumulatively). The windowing is the decision contract:
            every rebalance resets the attribution window, so repeated
            decisions under steady load converge instead of being
            pinned by historic skew (see :meth:`ShardedFarmer.
            auto_rebalance`).
        weights: the consistent-hash ring weights installed (monotone
            decreasing in ``loads``, clamped to the configured band).
        rebalance: the underlying migration's report.
    """

    loads: tuple[float, ...]
    weights: tuple[float, ...]
    rebalance: RebalanceReport


@dataclass(frozen=True, slots=True)
class StreamIngestReport:
    """What one :meth:`ShardedFarmer.ingest_stream` batch folded in.

    Attributes:
        n_accepted: records ingested by their owner shards (op-filtered
            records and records owned by failed shards are excluded).
        n_echoes_placed: boundary echoes delivered to the predecessor's
            shard within this batch.
        n_echoes_shed: boundary echoes suppressed because the record was
            admitted with ``allow_echo=False`` (the overload policy's
            graceful-degradation lever: echoes are extra mining work on
            a second shard, so they are the first thing to go).
        n_dropped_failed: owned records dropped because their owner
            shard is failed (the online path degrades instead of
            raising; the batch entry points raise ``ShardFailedError``).
    """

    n_accepted: int
    n_echoes_placed: int
    n_echoes_shed: int
    n_dropped_failed: int


class ShardedFarmer:
    """N namespace-partitioned Farmer shards behind one façade.

    Drop-in for :class:`Farmer` in every consumer that goes through the
    public entry points (``observe`` / ``mine`` / ``predict`` /
    ``correlators`` / ``snapshot`` / ``memory_bytes``); ``stats()``
    returns the richer :class:`~repro.service.stats.ServiceStats`.
    """

    def __init__(
        self, config: FarmerConfig | None = None, router: ShardRouter | None = None
    ) -> None:
        self.config = config if config is not None else FarmerConfig()
        n = self.config.n_shards
        if router is None:
            router = make_router(
                self.config.shard_policy,
                n,
                virtual_nodes=self.config.router_virtual_nodes,
                seed=self.config.router_seed,
            )
        elif router.n_shards != n:
            raise ConfigError(
                f"router has {router.n_shards} shards, config wants {n}"
            )
        self.router = router
        # the shared stores are the service's write-contended state: the
        # vocabulary locks interning (all shards intern), the vector
        # store locks updates (shards write disjoint fids, but the dicts
        # underneath still need serialised mutation), and the similarity
        # cache locks everything. This is what lets ParallelShardRunner
        # execute shards on real threads.
        self.vocabulary = ThreadSafeVocabulary()
        self.extractor = Extractor(self.config.attributes, self.vocabulary)
        self.vector_store = ThreadSafeVectorStore(self.config, self.extractor)
        self.sim_cache = (
            SharedSimilarityCache(self.config.sim_cache_capacity)
            if self.config.shared_sim_cache
            else None
        )
        self.shards: tuple[Farmer, ...] = tuple(
            Farmer(
                self.config,
                vocabulary=self.vocabulary,
                vector_store=self.vector_store,
                sim_cache=self.sim_cache,
            )
            for _ in range(n)
        )
        self._prev_owner: int | None = None
        self._prev_fid: int | None = None
        self._echo_queues: list[deque[TraceRecord]] = [deque() for _ in range(n)]
        # indexes with a non-empty queue, so the idle-drain trigger
        # checks only candidates instead of scanning every shard
        self._queued_shards: set[int] = set()
        self._since_echo_flush = 0
        self._n_observed = 0
        self._n_boundary_echoes = 0
        self._n_echo_flushes = 0
        self._n_rebalances = 0
        self._n_migrated_fids = 0
        # failover + idle-drain state: _last_active[i] is the service
        # n_observed at shard i's last owned observation or queue drain
        # (the idle-gap anchor); _failed holds shard indexes whose
        # private state is lost and awaiting promotion
        self._failed: set[int] = set()
        self._last_active: list[int] = [0] * n
        self._n_idle_drains = 0
        self._n_echoes_dropped = 0
        # per-destination echo accounting: the online backpressure
        # policy reads these live (a hot destination shows up as a deep
        # queue; a failed one as a growing drop count)
        self._echo_drops_by_dest: list[int] = [0] * n
        self._n_echoes_shed = 0
        # load-attribution marks: raw load signals at the last rebalance
        # decision, so auto_rebalance reads only the inter-decision window
        self._load_marks: list[float] = [0.0] * n
        self._n_failovers = 0
        self._since_standby_sync = 0
        self._last_standby_sync = 0
        self._replicator = (
            ShardReplicator(self) if self.config.replication else None
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_of(self, fid: int) -> int:
        """Owning shard index of ``fid``."""
        return self.router.route(fid)

    def shard_for(self, fid: int) -> Farmer:
        """Owning shard of ``fid``, with its pending boundary echoes
        drained first (queries go to the owner only, and a query must
        reflect every request already routed to that owner). Raises
        :class:`ShardFailedError` while the owner is failed."""
        owner = self.router.route(fid)
        if owner in self._failed:
            raise ShardFailedError(owner)
        self._drain_shard(owner)
        return self.shards[owner]

    # ------------------------------------------------------------------
    # boundary-echo queues
    # ------------------------------------------------------------------

    def _drain_shard(self, index: int) -> None:
        """Deliver shard ``index``'s queued boundary echoes (FIFO).

        A failed shard is skipped (its queue is cleared at failure time
        and enqueues to it are dropped, so this is defensive). A real
        drain counts as shard activity for the idle-drain trigger.
        """
        queue = self._echo_queues[index]
        if not queue or index in self._failed:
            return
        self._queued_shards.discard(index)
        observe_echo = self.shards[index].observe_echo
        while queue:
            observe_echo(queue.popleft())
        self._n_echo_flushes += 1
        self._last_active[index] = self._n_observed

    def flush_echoes(self) -> None:
        """Drain every shard's boundary-echo queue (FIFO per shard).

        Called automatically at the batch-``mine`` ingest barrier,
        before queries (owner shard only), on interval expiry under
        ``echo_flush_interval > 0``, and at the start of a rebalance;
        public so a deployment can force delivery at its own sync
        points.
        """
        for index in range(len(self.shards)):
            self._drain_shard(index)
        self._since_echo_flush = 0

    @property
    def n_pending_echoes(self) -> int:
        """Boundary echoes currently queued and not yet delivered."""
        return sum(len(q) for q in self._echo_queues)

    @property
    def echo_queue_depths(self) -> tuple[int, ...]:
        """Per-destination-shard depth of the boundary-echo queues,
        read live (the admission-control input: a destination that
        stopped draining shows up here before anything overflows)."""
        return tuple(len(q) for q in self._echo_queues)

    @property
    def echo_drop_counts(self) -> tuple[int, ...]:
        """Per-destination-shard count of boundary echoes lost to that
        shard's failure — in-flight at ``fail_shard`` time or enqueued
        while the destination was down. Sums to
        :attr:`n_echoes_dropped` over the shard lifetime (a shrink
        rebalance truncates the per-shard view with the shards)."""
        return tuple(self._echo_drops_by_dest)

    @property
    def n_echoes_shed(self) -> int:
        """Boundary echoes suppressed by overload shedding — records
        folded through :meth:`ingest_stream` with ``allow_echo=False``
        that turned out to be boundary requests."""
        return self._n_echoes_shed

    def _enqueue_echo(self, prev: int, record: TraceRecord) -> None:
        """Queue a boundary echo for the predecessor's shard.

        Under the eager schedule (``lazy_reevaluation=False``) the echo
        is delivered synchronously instead — the eager path ranks
        entries at observation time, so deferring delivery would rank
        echoed edges against later vector state and silently diverge
        from the paper-literal reference. An echo destined for a
        *failed* shard is dropped and counted (at-most-once delivery:
        the destination that would absorb it no longer exists).
        """
        self._n_boundary_echoes += 1
        if prev in self._failed:
            self._n_echoes_dropped += 1
            self._echo_drops_by_dest[prev] += 1
            return
        if not self.config.lazy_reevaluation:
            self.shards[prev].observe_echo(record)
            return
        self._echo_queues[prev].append(record)
        self._queued_shards.add(prev)

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Route one request to its owner shard; a boundary request
        under ``cross_shard_edges`` is additionally queued as an echo
        for the predecessor's shard (see the module docstring for the
        drain schedule)."""
        if (
            self.config.op_filter is not None
            and record.op not in self.config.op_filter
        ):
            return
        owner = self.router.route(record.fid)
        if owner in self._failed:
            raise ShardFailedError(owner)
        interval = self.config.echo_flush_interval
        if interval == 0:
            # just-in-time drain: queued echoes land before the next
            # owned observation, preserving the synchronous window
            # geometry bit-for-bit
            self._drain_shard(owner)
        self.shards[owner].observe(record)
        prev = self._prev_owner
        if self.config.cross_shard_edges and prev is not None and prev != owner:
            # the owner just folded the record into the shared vector
            # store, so the echo pays only graph/list work on prev
            self._enqueue_echo(prev, record)
        self._prev_owner = owner
        self._prev_fid = record.fid
        self._n_observed += 1
        self._last_active[owner] = self._n_observed
        if interval > 0:
            self._since_echo_flush += 1
            if self._since_echo_flush >= interval:
                self.flush_echoes()
        idle = self.config.echo_idle_drain
        if idle > 0 and self._queued_shards:
            # live trigger for idle destinations: a queue whose shard
            # has seen nothing for `idle` accepted requests drains now
            # instead of waiting for the shard's next own event
            n = self._n_observed
            last_active = self._last_active
            for dest in sorted(self._queued_shards):
                if n - last_active[dest] >= idle:
                    self._drain_shard(dest)
                    self._n_idle_drains += 1
        if self._replicator is not None:
            self._since_standby_sync += 1
            if self._since_standby_sync >= self.config.standby_sync_interval:
                self.sync_standbys()

    def _partition(
        self,
        records: Iterable[TraceRecord],
        prev: int | None,
        drain: bool = True,
    ) -> tuple[list[list[tuple[TraceRecord, bool]]], int, int | None, int | None]:
        """The one place the owner/echo substream rule lives.

        Returns ``(subs, n_accepted, last_owner, last_fid)`` where
        ``subs[i]`` is shard *i*'s substream of ``(record, is_echo)``
        pairs: the records it owns plus, under ``cross_shard_edges``,
        the boundary requests echoed to it. ``prev`` seeds the boundary
        detection (pass the live ``_prev_owner`` to continue a stream,
        ``None`` for a standalone split).

        Echo placement follows the configured drain schedule: at
        ``echo_flush_interval == 0`` echoes sit inline in the
        destination's substream (the just-in-time order — bit-identical
        to synchronous delivery); at ``K > 0`` they are appended after
        the destination's owned records, which is exactly the batch
        schedule's ingest-barrier drain. With ``drain`` (the live-stream
        paths: ``mine``, the replay harness, the parallel runner), any
        echoes still queued from a preceding ``observe`` stream are
        delivered first so the substreams start from drained state;
        ``drain=False`` keeps the call side-effect-free (the standalone
        :meth:`partition` split).
        """
        if drain:
            # guards every live-stream batch path (mine, the replay
            # harness, the parallel runner): a failed shard's substream
            # would otherwise silently feed an empty placeholder
            if self._failed:
                raise ShardFailedError(min(self._failed))
            self.flush_echoes()
        n = self.config.n_shards
        subs: list[list[tuple[TraceRecord, bool]]] = [[] for _ in range(n)]
        batched = self.config.lazy_reevaluation and self.config.echo_flush_interval > 0
        tails: list[list[tuple[TraceRecord, bool]]] = [[] for _ in range(n)]
        op_filter = self.config.op_filter
        cross = self.config.cross_shard_edges
        route = self.router.route
        accepted = 0
        last_fid = None
        for record in records:
            if op_filter is not None and record.op not in op_filter:
                continue
            owner = route(record.fid)
            subs[owner].append((record, False))
            if cross and prev is not None and prev != owner:
                (tails if batched else subs)[prev].append((record, True))
            prev = owner
            last_fid = record.fid
            accepted += 1
        if batched:
            for sub, tail in zip(subs, tails):
                sub.extend(tail)
        return subs, accepted, prev, last_fid

    def partition(
        self, records: Iterable[TraceRecord]
    ) -> list[list[tuple[TraceRecord, bool]]]:
        """Split a trace into the per-shard ``(record, is_echo)``
        substreams ``observe`` would feed each shard.

        This is the replay surface for per-shard concurrency (the
        service benchmark drives one substream per modeled worker).
        Under strict isolation a shard replaying its substream is
        bit-identical to the global ``observe`` schedule; with echoes
        enabled the substreams interleave shared-vector updates in a
        different order, so eagerly-refreshed edge degrees can differ
        transiently until the next query re-ranks the list.

        Side-effect-free: echoes already queued on the live service are
        left queued (and are not part of the returned split) — only the
        live-stream entry points (``mine``, the harness, the runner)
        drain before partitioning.
        """
        return self._partition(records, None, drain=False)[0]

    def _absorb_stream_state(
        self, accepted: int, n_placed: int, prev: int | None, last_fid: int | None
    ) -> None:
        """Fold one partitioned batch into the stream accounting
        (``n_placed`` is the total substream length including echoes)."""
        self._n_observed += accepted
        self._n_boundary_echoes += n_placed - accepted
        self._prev_owner = prev
        if last_fid is not None:
            self._prev_fid = last_fid

    def mine(self, records: Sequence[TraceRecord]) -> "ShardedFarmer":
        """Batch-mine a trace shard by shard; returns self for chaining.

        Two phases: every shard first ingests its substream (graph and
        vector work only), then every shard runs its tick-driven flush.
        The barrier matters because echoed successors live on *other*
        shards: flushing shard by shard would rank them against whatever
        vector prefix happened to be ingested, while the barrier ranks
        everything against the end-of-batch state — the same guarantee
        ``Farmer.mine`` gives a single miner. Queued boundary echoes
        are delivered within the ingest phase (inline at
        ``echo_flush_interval == 0``, appended at the barrier under a
        positive interval), so the flush never ranks a list that is
        missing an enqueued echo. Unavailable while any shard is failed
        (the batch would silently drop that partition's records) —
        promote the standby first.
        """
        if self._failed:
            raise ShardFailedError(min(self._failed))
        subs, accepted, prev, last_fid = self._partition(records, self._prev_owner)
        self._absorb_stream_state(
            accepted, sum(len(s) for s in subs), prev, last_fid
        )
        if not self.config.lazy_reevaluation:
            for shard, sub in zip(self.shards, subs):
                if sub:
                    shard.mine_mixed(sub)
        else:
            changed = [
                shard.ingest_mixed(sub) for shard, sub in zip(self.shards, subs)
            ]
            for shard, touched in zip(self.shards, changed):
                if touched:
                    shard.miner.flush_nodes(sorted(touched))
        if self._replicator is not None:
            self._since_standby_sync += accepted
            if self._since_standby_sync >= self.config.standby_sync_interval:
                self.sync_standbys()
        return self

    def ingest_stream(
        self, items: Iterable[tuple[TraceRecord, bool]]
    ) -> StreamIngestReport:
        """The online consumer's batch seam: fold ``(record, allow_echo)``
        pairs into the shards, deferring every list rank to query time.

        This is :meth:`observe` at batch granularity with two online
        twists:

        * **Per-record echo control.** A record admitted with
          ``allow_echo=False`` (the pipeline's echo-shed watermark was
          exceeded at admission) never places a boundary echo — the
          cross-shard edge is sacrificed before any owned observation
          is, and the sacrifice is counted (:attr:`n_echoes_shed`).
        * **Graceful degradation under failure.** A record owned by a
          failed shard is dropped and counted instead of raising — the
          online service keeps absorbing every healthy partition's
          stream while an operator promotes the standby. (The batch
          entry points ``observe``/``mine`` raise
          :class:`ShardFailedError` instead; a library caller wants the
          loud contract, a long-running service wants to keep serving.)

        Echo placement is **batch-seam-independent**: at
        ``echo_flush_interval == 0`` echoes sit inline in the
        destination's substream (the just-in-time order), so any
        chunking of the stream is bit-identical to one batch
        :meth:`mine` of the same records; at ``K > 0`` echoes go
        through the per-destination queues on :meth:`observe`'s
        accepted-request cadence — the counter spans batch seams — so
        any chunking reproduces the record-at-a-time ``observe``
        schedule exactly (a single :meth:`mine` places its echoes at
        its own one-batch barrier instead, so it is *not* the K > 0
        reference). Lists are a pure function of the end-of-stream
        graph/vector state either way (property-tested in
        ``tests/online``). Standby sync barriers keep their
        accepted-request cadence across batches.
        """
        n = len(self.shards)
        subs: list[list[tuple[TraceRecord, bool]]] = [[] for _ in range(n)]
        interval = self.config.echo_flush_interval
        lazy = self.config.lazy_reevaluation
        sync_every = self.config.standby_sync_interval
        batched = lazy and interval > 0
        if not batched and self._queued_shards:
            # leftovers queued by interleaved observe() calls are
            # delivered first so the batch starts from drained FIFO
            # state (position-safe: nothing lands on a destination in
            # between, so its window is the same now as at the next
            # just-in-time drain). Under the K > 0 cadence the queues
            # must keep waiting for their cadence point instead.
            self.flush_echoes()
        op_filter = self.config.op_filter
        cross = self.config.cross_shard_edges
        route = self.router.route
        failed = self._failed
        prev = self._prev_owner
        last_fid = self._prev_fid
        accepted = 0
        ingested = 0  # accepted records already folded (cadence chunks)
        echoes_placed = 0
        echoes_shed = 0
        dropped_failed = 0

        def fold_pending() -> None:
            # fold the accumulated owned substreams into the shards.
            # Unlike mine(), the touched nodes are only marked dirty,
            # not flushed: the online consumer defers every rank to
            # query time, and a list is a pure function of end-state
            # either way
            nonlocal ingested
            self._n_observed += accepted - ingested
            ingested = accepted
            for index, shard in enumerate(self.shards):
                sub = subs[index]
                if sub:
                    mark = shard.miner.mark_dirty
                    for fid in shard.ingest_mixed(sub):
                        mark(fid)
                    subs[index] = []
                    self._last_active[index] = self._n_observed

        for record, allow_echo in items:
            if op_filter is not None and record.op not in op_filter:
                continue
            owner = route(record.fid)
            if owner in failed:
                # the partition is down: its share of the stream is the
                # loss window, but boundary geometry stays truthful (the
                # request happened; its successor's echo would target
                # the failed owner and be dropped below)
                dropped_failed += 1
                prev = owner
                last_fid = record.fid
                continue
            subs[owner].append((record, False))
            if cross and prev is not None and prev != owner:
                self._n_boundary_echoes += 1
                if not allow_echo:
                    echoes_shed += 1
                elif prev in failed:
                    self._n_echoes_dropped += 1
                    self._echo_drops_by_dest[prev] += 1
                else:
                    if batched:
                        self._echo_queues[prev].append(record)
                        self._queued_shards.add(prev)
                    else:
                        subs[prev].append((record, True))
                    echoes_placed += 1
            prev = owner
            last_fid = record.fid
            accepted += 1
            if batched:
                self._since_echo_flush += 1
                if self._since_echo_flush >= interval:
                    # the cadence point: destinations must hold their
                    # owned records up to here before delivery, exactly
                    # as the record-at-a-time schedule would
                    fold_pending()
                    self.flush_echoes()
            if lazy and self._replicator is not None:
                self._since_standby_sync += 1
                if self._since_standby_sync >= sync_every:
                    # per-record cadence, not per-batch: the barrier
                    # (and the echo flush inside it, which resets the
                    # echo cadence) must land at exactly the accepted
                    # count the record-at-a-time schedule would pick
                    fold_pending()
                    self.sync_standbys()
        if not lazy:
            self._n_observed += accepted
            for index, (shard, sub) in enumerate(zip(self.shards, subs)):
                if sub:
                    shard.mine_mixed(sub)
                    self._last_active[index] = self._n_observed
        else:
            fold_pending()
        self._n_echoes_shed += echoes_shed
        self._prev_owner = prev
        if last_fid is not None:
            self._prev_fid = last_fid
        if not lazy and self._replicator is not None:
            self._since_standby_sync += accepted
            if self._since_standby_sync >= sync_every:
                self.sync_standbys()
        return StreamIngestReport(
            n_accepted=accepted,
            n_echoes_placed=echoes_placed,
            n_echoes_shed=echoes_shed,
            n_dropped_failed=dropped_failed,
        )

    # ------------------------------------------------------------------
    # queries (route to the owner shard)
    # ------------------------------------------------------------------

    def correlators(self, fid: int) -> list[CorrelatorEntry]:
        """Valid correlates of ``fid`` from its owner shard."""
        return self.shard_for(fid).correlators(fid)

    def predict(self, fid: int, k: int | None = None) -> list[int]:
        """Prefetch candidates for ``fid`` from its owner shard."""
        return self.shard_for(fid).predict(fid, k)

    def correlation_degree(self, src: int, dst: int) -> float:
        """``R(src, dst)`` as evaluated by ``src``'s owner shard."""
        return self.shard_for(src).correlation_degree(src, dst)

    def semantic_distance(self, src: int, dst: int) -> float:
        """``sim(src, dst)`` (vectors are shared, so any shard agrees)."""
        return self.shard_for(src).semantic_distance(src, dst)

    def access_frequency(self, src: int, dst: int) -> float:
        """``F(src, dst)`` from ``src``'s owner shard."""
        return self.shard_for(src).access_frequency(src, dst)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def flush_shard(self, index: int) -> None:
        """Re-rank shard ``index``'s *owned* dirty lists (pending
        boundary echoes are delivered first so nothing enqueued is
        missing from the ranked state). Halo lists (foreign fids left
        dirty by boundary echoes) stay lazy — queries route to the
        owner shard, so ranking them is work nobody reads.
        """
        self._drain_shard(index)
        shard = self.shards[index]
        route = self.router.route
        shard.miner.flush_nodes(
            fid for fid in shard.miner.dirty_nodes() if route(fid) == index
        )

    def snapshot(self) -> CorrelationSnapshot:
        """Aggregate Correlator-List statistics over *owned* lists.

        A boundary file can hold a partial list on a neighbour shard
        (the echo's by-product); only the owner shard's authoritative
        list is counted, so ``n_shards=1`` matches ``Farmer.snapshot``
        exactly and multi-shard numbers are not inflated by halo state.
        Aggregation runs in fid order, so the float means are identical
        for any shard layout holding the same owned lists (rebalancing
        must not perturb the snapshot by summation order alone).
        """
        route = self.router.route
        per_fid: dict[int, tuple[int, float]] = {}
        for index, shard in enumerate(self.shards):
            self.flush_shard(index)
            for fid, lst in shard.miner.lists().items():
                if len(lst) > 0 and route(fid) == index:
                    per_fid[fid] = (len(lst), lst.top(1)[0].degree)
        if not per_fid:
            return CorrelationSnapshot(0, 0, 0.0, 0, 0.0)
        ordered = [per_fid[fid] for fid in sorted(per_fid)]
        lengths = [length for length, _ in ordered]
        tops = [top for _, top in ordered]
        return CorrelationSnapshot(
            n_lists=len(lengths),
            n_entries=sum(lengths),
            mean_length=sum(lengths) / len(lengths),
            max_length=max(lengths),
            mean_top_degree=sum(tops) / len(tops),
        )

    def sim_cache_stats(self) -> SimCacheStats:
        """Service-level similarity-cache counters (shared cache's, or
        the per-shard caches summed)."""
        if self.sim_cache is not None:
            return self.sim_cache.stats()
        return combine_cache_stats(
            [shard.sim_cache_stats() for shard in self.shards]
        )

    def memory_bytes(self) -> int:
        """Total footprint; shared components are counted exactly once.
        Queued-but-undelivered echoes are transport, not mining state,
        and are not counted (the records are owned by the trace)."""
        total = self.vocabulary.approx_bytes() + self.vector_store.approx_bytes()
        if self.sim_cache is not None:
            total += self.sim_cache.approx_bytes()
        # shards skip the injected (non-owned) components themselves
        total += sum(shard.memory_bytes() for shard in self.shards)
        if self._replicator is not None:
            # warm standbys are real resident state (the availability
            # premium replication pays); shared stores counted above
            total += self._replicator.memory_bytes()
        return total

    @property
    def n_observed(self) -> int:
        """Requests the service accepted (echoes not double-counted)."""
        return self._n_observed

    @property
    def n_boundary_echoes(self) -> int:
        """Boundary requests echoed to the predecessor's shard
        (enqueued; see :attr:`n_pending_echoes` for undelivered ones)."""
        return self._n_boundary_echoes

    @property
    def n_echo_flushes(self) -> int:
        """Echo-queue drain operations performed so far (each drain
        delivers a whole per-shard queue — the batching win is echoes
        per drain, not fewer echoes)."""
        return self._n_echo_flushes

    def stats(self) -> ServiceStats:
        """Aggregated per-shard stats, cache counters and memory
        (pending echoes are delivered first so every counter reflects
        the full routed stream; ``echo_queue_depths`` is captured
        *before* that drain — it reports the queues as the caller found
        them, not the zeros the drain leaves behind)."""
        depths = self.echo_queue_depths
        self.flush_echoes()
        replicator = self._replicator
        return ServiceStats(
            n_shards=self.config.n_shards,
            n_observed=self._n_observed,
            n_boundary_echoes=self._n_boundary_echoes,
            shards=tuple(shard.stats() for shard in self.shards),
            sim_cache=self.sim_cache_stats(),
            memory_bytes=self.memory_bytes(),
            n_echo_flushes=self._n_echo_flushes,
            n_rebalances=self._n_rebalances,
            n_migrated_fids=self._n_migrated_fids,
            n_idle_drains=self._n_idle_drains,
            n_echoes_dropped=self._n_echoes_dropped,
            n_failovers=self._n_failovers,
            n_standby_syncs=replicator.n_barriers if replicator else 0,
            echo_queue_depths=depths,
            echo_drops_by_shard=tuple(self._echo_drops_by_dest),
            n_echoes_shed=self._n_echoes_shed,
        )

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def rebalance(
        self,
        n_shards: int | None = None,
        *,
        policy: str | None = None,
        weights: Sequence[float] | None = None,
        router: ShardRouter | None = None,
    ) -> RebalanceReport:
        """Install a new topology and migrate only the fids that moved.

        Args:
            n_shards: new shard count (default: keep the current count).
            policy: new router policy (``"hash"`` / ``"range"`` /
                ``"consistent_hash"``; default: keep the current one).
            weights: per-shard weights for the consistent-hash ring
                (need not sum to 1; a zero empties that shard's slice).
                Default: keep the current ring's weights. If the
                current ring has explicit weights and the shard count
                changes, matching-length weights must be passed — a
                silent reset to uniform would re-populate a
                deliberately drained shard.
            router: an explicit pre-built router — overrides ``policy``
                / ``weights`` and must agree with the final shard count.

        Returns:
            A :class:`RebalanceReport` (how much of the namespace
            moved, and how long migration took).

        Migration semantics: pending echoes are delivered first; every
        fid whose owner changed has its graph node and freshly-ranked
        Correlator List shipped from the old owner to the new one
        (`CoMiner.flush_nodes_report` ranks, ``extract_state`` /
        ``adopt_migrated`` move — the same serialization seam the
        process-backend runner uses), so no re-mining happens and
        post-rebalance queries serve exactly the lists the old owners
        would have served. Shards beyond a shrunken count are dropped
        after their fids migrate out; new shards join sharing the same
        vocabulary, vector store and similarity cache. Halo state left
        behind on old shards (echo by-products for fids that moved) is
        unreachable through queries and is reclaimed as those graphs
        evolve.

        Equivalence scope: pre-rebalance query results are preserved
        verbatim for every fid; with ``window=1`` (boundary echoes then
        capture the cross-shard edge set exactly) a mined-then-
        rebalanced service is bit-identical to one freshly mined at the
        new topology. For wider windows, echoed deep-window edges are
        topology-dependent, so the from-scratch comparison is
        approximate while query preservation still holds exactly.
        """
        if self._failed:
            raise ShardFailedError(min(self._failed))
        start = time.perf_counter()
        old_n = len(self.shards)
        new_n = n_shards if n_shards is not None else old_n
        if router is not None:
            if router.n_shards != new_n:
                raise ConfigError(
                    f"router has {router.n_shards} shards, rebalance wants {new_n}"
                )
            new_policy = policy if policy is not None else self.config.shard_policy
        else:
            new_policy = policy if policy is not None else self.config.shard_policy
            if weights is not None and new_policy != "consistent_hash":
                raise ConfigError(
                    "per-shard weights require the consistent_hash policy"
                )
            # like n_shards and policy, explicit ring weights default to
            # "keep current" — silently rebuilding a uniform ring would
            # re-populate a shard an operator deliberately drained
            current_weights = getattr(self.router, "weights", None)
            if (
                weights is None
                and current_weights is not None
                and new_policy == "consistent_hash"
            ):
                if new_n == len(current_weights):
                    weights = current_weights
                else:
                    raise ConfigError(
                        "the current consistent-hash router has explicit "
                        f"per-shard weights ({len(current_weights)} shards); "
                        f"rebalancing to {new_n} shards needs weights= of "
                        "matching length (carrying the old ones over would "
                        "silently re-weight the ring)"
                    )
            router = make_router(
                new_policy,
                new_n,
                virtual_nodes=self.config.router_virtual_nodes,
                seed=self.config.router_seed,
                weights=weights,
            )
        # deliver everything queued under the old topology first: an
        # echo re-routed after the switch would land on the wrong shard
        self.flush_echoes()
        if new_n > old_n:
            shards = list(self.shards)
            shards.extend(
                Farmer(
                    self.config,
                    vocabulary=self.vocabulary,
                    vector_store=self.vector_store,
                    sim_cache=self.sim_cache,
                )
                for _ in range(new_n - old_n)
            )
            self.shards = tuple(shards)
            self._echo_queues.extend(deque() for _ in range(new_n - old_n))
            self._echo_drops_by_dest.extend(0 for _ in range(new_n - old_n))
            self._last_active.extend(
                self._n_observed for _ in range(new_n - old_n)
            )
        old_route = self.router.route
        n_owned = 0
        n_migrated = 0
        for index, shard in enumerate(self.shards):
            # owned fids only: halo nodes (echo by-products) are not
            # authoritative and must not overwrite the owner's state
            owned = [
                fid
                for fid in shard.constructor.graph.nodes()
                if old_route(fid) == index
            ]
            n_owned += len(owned)
            moved = [fid for fid in owned if router.route(fid) != index]
            if not moved:
                continue
            moved.sort()
            # rank at the source so the shipped list is exactly what
            # the old owner would have served (flush_nodes_report skips
            # tick-unchanged lists; those are already ranked)
            ranked = shard.miner.flush_nodes_report(moved)
            graph = shard.constructor.graph
            for fid in moved:
                node = graph.pop_node(fid)
                lst = shard.miner.extract_state(fid)
                lst = ranked.get(fid, lst)
                dest = self.shards[router.route(fid)]
                if node is not None:
                    dest.constructor.graph.adopt_node(fid, node)
                if lst is not None:
                    dest.miner.adopt_migrated(
                        fid, lst, node.change_tick if node is not None else 0
                    )
            n_migrated += len(moved)
        if new_n < old_n:
            self.shards = self.shards[:new_n]
            del self._echo_queues[new_n:]
            del self._echo_drops_by_dest[new_n:]
            del self._last_active[new_n:]
        self.router = router
        self.config = self.config.with_(n_shards=new_n, shard_policy=new_policy)
        # re-seed boundary detection under the new topology, exactly as
        # a from-scratch service would have routed the last request.
        # Explicit both ways: a destination shard that never existed
        # before this rebalance must start from well-defined boundary
        # state, so the no-stream case resets to None rather than
        # leaving whatever the old topology held.
        if self._prev_fid is not None:
            self._prev_owner = router.route(self._prev_fid)
        else:
            self._prev_owner = None
        self._n_rebalances += 1
        self._n_migrated_fids += n_migrated
        # every topology change resets the load-attribution window: the
        # namespace just moved, so pre-rebalance load no longer describes
        # the shards it landed on (auto_rebalance's convergence contract)
        self._mark_loads()
        if self._replicator is not None:
            # ownership moved wholesale: stale standbys are worthless,
            # so rebuild them and take a fresh barrier immediately
            self._replicator.resize()
            self.sync_standbys()
        return RebalanceReport(
            n_shards_before=old_n,
            n_shards_after=new_n,
            policy=new_policy,
            n_owned=n_owned,
            n_migrated=n_migrated,
            elapsed_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # load-aware rebalancing
    # ------------------------------------------------------------------

    def _raw_loads(self) -> tuple[float, ...]:
        """Lifetime per-shard load signals (no windowing)."""
        return tuple(
            load_signal(
                shard.n_observed, shard.miner.rerank_stats().entries_scanned
            )
            for shard in self.shards
        )

    def _mark_loads(self) -> None:
        """Reset the load-attribution window to now: subsequent
        ``shard_loads(since_decision=True)`` reads start from zero.
        Called at the end of every :meth:`rebalance` (any topology
        change invalidates prior attribution) and per shard at
        :meth:`promote_standby` (the promoted Farmer's counters restart
        at the standby's values)."""
        self._load_marks = list(self._raw_loads())

    def shard_loads(self, *, since_decision: bool = False) -> tuple[float, ...]:
        """Per-shard load signal: requests absorbed (owned + echoes)
        plus re-rank entries scanned — the same counters
        :class:`~repro.service.stats.ServiceStats` aggregates, read
        live without the full stats rollup.

        Args:
            since_decision: if True, return only the load observed
                since the last rebalance decision (or construction) —
                the window :meth:`auto_rebalance` feeds into ring
                weights. Default False returns the lifetime totals,
                which is what ``ServiceStats.shard_loads`` reports.
        """
        raw = self._raw_loads()
        if not since_decision:
            return raw
        marks = self._load_marks
        # clamped at zero: a promoted standby's counters restart below
        # the failed primary's mark
        return tuple(
            max(0.0, r - m) for r, m in zip(raw, marks)
        )

    def auto_rebalance(
        self, *, weight_floor: float = 0.25, weight_ceiling: float = 4.0
    ) -> AutoRebalanceReport:
        """Feed observed per-shard load back into consistent-hash ring
        weights and rebalance onto them.

        The decision reads each shard's load **since the previous
        rebalance decision** (``shard_loads(since_decision=True)``),
        not the lifetime totals. That windowing is the convergence
        contract: after a decision moves namespace off a hot shard, the
        next decision judges the shards by what they absorbed *under
        the new topology* — lifetime counters would keep penalising a
        shard for skew it already shed, pinning it at the weight floor
        forever. Every :meth:`rebalance` (manual or automatic) resets
        the window; :meth:`promote_standby` resets the promoted shard's
        mark to the standby's counters.

        Each shard's weight is the window's mean load over its own
        window load (clamped to ``[weight_floor, weight_ceiling]``), so
        weights are monotone *decreasing* in load: a shard that
        absorbed twice the average work gets half the average ring
        share and sheds namespace, a near-idle shard absorbs it. A
        window with **no observed load at all** (an immediate second
        decision, or a freshly-built service) installs no new opinion:
        the current ring weights are kept verbatim (uniform if the
        current router has none), so a signal-free decision is a no-op
        rather than a silent reset to uniform. The shard count is
        unchanged; the router policy becomes ``consistent_hash`` (the
        only weighted policy). Queries are invariant, exactly as for
        any :meth:`rebalance` (property-tested).

        Args:
            weight_floor: lower clamp — keeps a pathologically hot
                shard from being drained to zero by one decision.
            weight_ceiling: upper clamp — keeps a near-idle shard from
                swallowing the namespace.

        Returns:
            An :class:`AutoRebalanceReport` with the window loads read,
            the weights installed, and the underlying migration report.
        """
        if not 0.0 < weight_floor <= weight_ceiling:
            raise ConfigError(
                "need 0 < weight_floor <= weight_ceiling for auto_rebalance"
            )
        loads = self.shard_loads(since_decision=True)
        total = sum(loads)
        if total <= 0.0:
            current = getattr(self.router, "weights", None)
            weights = (
                tuple(current)
                if current is not None and len(current) == len(loads)
                else tuple(1.0 for _ in loads)
            )
        else:
            mean_load = total / len(loads)
            weights = tuple(
                min(weight_ceiling, max(weight_floor, mean_load / max(load, 1.0)))
                for load in loads
            )
        report = self.rebalance(policy="consistent_hash", weights=weights)
        return AutoRebalanceReport(
            loads=loads, weights=weights, rebalance=report
        )

    # ------------------------------------------------------------------
    # replication & failover
    # ------------------------------------------------------------------

    def _require_replication(self) -> ShardReplicator:
        if self._replicator is None:
            raise ReplicationError(
                "replication is disabled; construct the service with "
                "FarmerConfig(replication=True) to keep warm standbys"
            )
        return self._replicator

    def sync_standbys(self) -> StandbySyncReport:
        """Force a standby sync barrier now (healthy shards only).

        Runs automatically every ``standby_sync_interval`` accepted
        requests; public so a deployment can align barriers with its
        own checkpoints. Pending boundary echoes are delivered first —
        a standby must reflect every request already routed to its
        primary — then each primary's tick-changed nodes and
        freshly-ranked lists are copied to its standby.
        """
        replicator = self._require_replication()
        self.flush_echoes()
        report = replicator.sync_all()
        self._since_standby_sync = 0
        self._last_standby_sync = report.at_observed
        return report

    def fail_shard(self, index: int) -> None:
        """Simulate the loss of shard ``index``'s private mining state.

        The shard's graph, Correlator Lists and re-rank bookkeeping are
        discarded, and its queued (in-flight) boundary echoes are
        dropped — at-most-once delivery, exactly what a crashed
        destination costs. The shared vocabulary, vector store and
        similarity cache are namespace-global and unaffected. Until
        :meth:`promote_standby` runs, requests and queries routed to
        this shard raise :class:`ShardFailedError` while every other
        partition keeps serving; aggregate accounting (``snapshot`` /
        ``stats``) excludes the failed partition.
        """
        self._require_replication()
        if not 0 <= index < len(self.shards):
            raise ConfigError(f"no shard {index} in a {len(self.shards)}-shard service")
        if index in self._failed:
            raise ReplicationError(f"shard {index} is already failed")
        # in-flight echoes die with the destination
        dropped = len(self._echo_queues[index])
        self._echo_queues[index].clear()
        self._queued_shards.discard(index)
        self._n_echoes_dropped += dropped
        self._echo_drops_by_dest[index] += dropped
        shards = list(self.shards)
        # an empty placeholder keeps aggregate walks (stats/snapshot)
        # total; the _failed guard keeps routed traffic out of it
        shards[index] = Farmer(
            self.config,
            vocabulary=self.vocabulary,
            vector_store=self.vector_store,
            sim_cache=self.sim_cache,
        )
        self.shards = tuple(shards)
        self._failed.add(index)

    def promote_standby(self, index: int) -> FailoverReport:
        """Put shard ``index``'s warm standby in service and re-protect it.

        The promoted shard serves exactly what the failed primary
        served at the last sync barrier (bit-for-bit identical queries
        to a never-failed service fed the stream up to that barrier —
        property-tested), and immediately resumes observing its
        partition. A fresh standby is then built and fully synced from
        the promoted primary, so the shard is protected against the
        next failure without waiting for the interval cadence.
        """
        replicator = self._require_replication()
        if index not in self._failed:
            raise ReplicationError(
                f"shard {index} is not failed; fail_shard({index}) first"
            )
        start = time.perf_counter()
        replica = replicator.take(index)
        shards = list(self.shards)
        shards[index] = replica.farmer
        self.shards = tuple(shards)
        self._failed.discard(index)
        self._last_active[index] = self._n_observed
        # the promoted Farmer's counters restart at the standby's values
        # (below the failed primary's mark) — re-mark so the next
        # auto_rebalance window for this shard starts at zero, not at a
        # clamp artifact
        self._load_marks[index] = load_signal(
            replica.farmer.n_observed,
            replica.farmer.miner.rerank_stats().entries_scanned,
        )
        promote_s = time.perf_counter() - start
        start = time.perf_counter()
        replicator.reseed(index)
        reseed_s = time.perf_counter() - start
        self._n_failovers += 1
        return FailoverReport(
            shard=index,
            synced_at=replica.synced_at,
            lag=self._n_observed - replica.synced_at,
            n_nodes_restored=replica.farmer.constructor.graph.n_nodes(),
            promote_s=promote_s,
            reseed_s=reseed_s,
        )

    @property
    def failed_shards(self) -> tuple[int, ...]:
        """Currently-failed shard indexes, ascending (empty = healthy)."""
        return tuple(sorted(self._failed))

    @property
    def last_standby_sync(self) -> int:
        """Service-level accepted-request count at the most recent
        standby sync barrier (0 before the first barrier) — the point a
        failover right now would restore to."""
        return self._last_standby_sync

    @property
    def n_failovers(self) -> int:
        """Promotions performed so far."""
        return self._n_failovers

    @property
    def n_idle_drains(self) -> int:
        """Echo-queue drains triggered by the idle-shard rule."""
        return self._n_idle_drains

    @property
    def n_echoes_dropped(self) -> int:
        """Boundary echoes lost to failed destinations (in-flight at
        failure time, or enqueued while the destination was down)."""
        return self._n_echoes_dropped
