"""Aggregated accounting for the sharded mining service.

One report rolls the per-shard :class:`~repro.core.farmer.FarmerStats`
and similarity-cache counters into service-level totals, so experiments
and benchmarks read a single object instead of poking N shards (and the
shared vector store / vocabulary / cache are counted exactly once in the
memory total, not once per shard).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cominer import RerankStats
from repro.core.farmer import FarmerStats
from repro.core.simcache import SimCacheStats

__all__ = [
    "ServiceStats",
    "combine_cache_stats",
    "combine_rerank_stats",
    "load_signal",
]


def load_signal(n_observed: int, entries_scanned: int) -> float:
    """The per-shard load metric fed into load-aware rebalancing:
    requests absorbed (owned + echoes) plus re-rank entries scanned.

    One definition for both readers — ``ShardedFarmer.shard_loads``
    (the live decision input of ``auto_rebalance``) and
    ``ServiceStats.shard_loads`` (the reported signal) — so the two can
    never silently diverge.
    """
    return float(n_observed + entries_scanned)


def combine_cache_stats(stats: list[SimCacheStats]) -> SimCacheStats:
    """Sum similarity-cache counters across caches.

    With a shared cache every shard reports the same counters — pass the
    single shared snapshot. With per-shard caches, pass one snapshot per
    shard and the hit rate of the sum is the service-level rate.
    """
    if not stats:
        return SimCacheStats(
            hits=0, misses=0, stale=0, evictions=0, size=0, capacity=0
        )
    if len(stats) == 1:
        return stats[0]
    return SimCacheStats(
        hits=sum(s.hits for s in stats),
        misses=sum(s.misses for s in stats),
        stale=sum(s.stale for s in stats),
        evictions=sum(s.evictions for s in stats),
        size=sum(s.size for s in stats),
        capacity=sum(s.capacity for s in stats),
    )


def combine_rerank_stats(stats: list[RerankStats]) -> RerankStats:
    """Sum re-rank op counters across shards (each shard's counters are
    private, so the sum is the service-level op count)."""
    return RerankStats(
        n_reevaluations=sum(s.n_reevaluations for s in stats),
        entries_scanned=sum(s.entries_scanned for s in stats),
        entries_skipped_unchanged=sum(
            s.entries_skipped_unchanged for s in stats
        ),
        insort_ops=sum(s.insort_ops for s in stats),
    )


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Service-level rollup of a :class:`~repro.service.ShardedFarmer`.

    Attributes:
        n_shards: number of miner shards.
        n_observed: requests the *service* accepted (each counted once,
            even when a boundary request was echoed to a second shard).
        n_boundary_echoes: boundary requests additionally observed by
            the predecessor's shard (0 under strict partition isolation
            or when every adjacent pair was shard-local).
        shards: per-shard :class:`FarmerStats`; a shard's ``n_observed``
            includes the echoes it absorbed, so their sum can exceed the
            service total.
        sim_cache: service-level similarity-cache counters (the shared
            cache's, or the per-shard caches summed).
        memory_bytes: total footprint with shared components (vocabulary,
            vector store, shared cache) counted exactly once.
        n_echo_flushes: echo-queue drain operations performed (each
            drain delivers one shard's whole queue; the batching win is
            echoes amortized per drain, not fewer echoes).
        n_rebalances: topology changes applied via ``rebalance()``.
        n_migrated_fids: fids whose graph node + ranked list were
            shipped between shards across all rebalances.
        n_idle_drains: echo-queue drains triggered by the idle-shard
            rule (``FarmerConfig.echo_idle_drain``).
        n_echoes_dropped: boundary echoes lost to failed destinations
            (in-flight at failure time or enqueued while down).
        n_failovers: standby promotions performed.
        n_standby_syncs: standby sync barriers run (0 with replication
            disabled).
        echo_queue_depths: per-destination-shard boundary-echo queue
            depth **as the stats() caller found it** (the rollup drains
            the queues, so this is captured before the drain). This is
            the online backpressure policy's admission input: a
            destination that stopped draining shows up here before
            anything overflows.
        echo_drops_by_shard: per-destination-shard count of boundary
            echoes lost to that shard's failure; sums to
            ``n_echoes_dropped`` over the shard lifetime.
        n_echoes_shed: boundary echoes deliberately suppressed by
            overload shedding (records folded through
            ``ShardedFarmer.ingest_stream`` with ``allow_echo=False``
            that turned out to be boundary requests) — degradation the
            service *chose*, as opposed to ``n_echoes_dropped`` which
            it suffered.
    """

    n_shards: int
    n_observed: int
    n_boundary_echoes: int
    shards: tuple[FarmerStats, ...]
    sim_cache: SimCacheStats
    memory_bytes: int
    n_echo_flushes: int = 0
    n_rebalances: int = 0
    n_migrated_fids: int = 0
    n_idle_drains: int = 0
    n_echoes_dropped: int = 0
    n_failovers: int = 0
    n_standby_syncs: int = 0
    echo_queue_depths: tuple[int, ...] = ()
    echo_drops_by_shard: tuple[int, ...] = ()
    n_echoes_shed: int = 0

    @property
    def memory_megabytes(self) -> float:
        """Footprint in MB (10^6 bytes, as Table 4 reports)."""
        return self.memory_bytes / 1e6

    @property
    def n_files(self) -> int:
        """Graph nodes summed over shards (boundary files, present on
        two shards, count twice — the real resident state)."""
        return sum(s.n_files for s in self.shards)

    @property
    def n_edges(self) -> int:
        """Directed graph edges summed over shards."""
        return sum(s.n_edges for s in self.shards)

    @property
    def n_lists(self) -> int:
        """Correlator Lists summed over shards (includes the partial
        halo lists boundary echoes leave on neighbour shards — resident
        state, not the owner-filtered view ``snapshot()`` reports)."""
        return sum(s.n_lists for s in self.shards)

    @property
    def n_entries(self) -> int:
        """Correlator-List entries summed over shards (same scope as
        ``n_lists``)."""
        return sum(s.n_entries for s in self.shards)

    @property
    def rerank(self) -> RerankStats:
        """Service-level re-rank op counters (shard counters summed)."""
        return combine_rerank_stats([s.rerank for s in self.shards])

    @property
    def shard_loads(self) -> tuple[float, ...]:
        """Per-shard load signal (requests absorbed + re-rank entries
        scanned) — what ``ShardedFarmer.auto_rebalance`` feeds into the
        consistent-hash ring weights."""
        return tuple(
            load_signal(s.n_observed, s.rerank.entries_scanned)
            for s in self.shards
        )
