"""The HUSt-like storage substrate: event engine, LRU metadata cache,
Berkeley-DB-substitute KV store, dual priority queues, metadata servers,
object storage devices, trace-replay clients and the cluster wiring.

Exports resolve lazily (PEP 562) so the numpy-free submodules — the
tiering policies, the object storage device, the cache, queues and KV
store — stay importable on a bare interpreter; only touching a
simulation-layer name (cluster, MDS, latency model, replay client)
pulls in the numpy-backed modules.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.cache import CacheEntry, LRUCache
    from repro.storage.client import TraceReplayClient
    from repro.storage.cluster import HustCluster, SimulationConfig, run_simulation
    from repro.storage.engine import EventLoop
    from repro.storage.kvstore import BTreeKVStore
    from repro.storage.latency import LatencyModel
    from repro.storage.mds import MetadataServer
    from repro.storage.metrics import MetricsCollector, SimulationReport
    from repro.storage.osd import Extent, ObjectStorageDevice, ReadCost
    from repro.storage.prefetch import (
        FarmerPrefetcher,
        MdsShardView,
        NoPrefetcher,
        PredictorPrefetcher,
        PrefetchEngine,
        ShardedFarmerPrefetcher,
    )
    from repro.storage.queues import DualRequestQueue
    from repro.storage.requests import MetadataRequest, RequestKind
    from repro.storage.tiering import (
        TIER_POLICIES,
        CorrelatedTierPolicy,
        LfuTierPolicy,
        LruTierPolicy,
        TieredStore,
        TierPolicy,
        make_tier_policy,
    )

#: export name -> owning submodule
_EXPORTS = {
    "CacheEntry": "cache",
    "LRUCache": "cache",
    "TraceReplayClient": "client",
    "HustCluster": "cluster",
    "SimulationConfig": "cluster",
    "run_simulation": "cluster",
    "EventLoop": "engine",
    "BTreeKVStore": "kvstore",
    "LatencyModel": "latency",
    "MetadataServer": "mds",
    "MetricsCollector": "metrics",
    "SimulationReport": "metrics",
    "Extent": "osd",
    "ObjectStorageDevice": "osd",
    "ReadCost": "osd",
    "FarmerPrefetcher": "prefetch",
    "MdsShardView": "prefetch",
    "NoPrefetcher": "prefetch",
    "PredictorPrefetcher": "prefetch",
    "PrefetchEngine": "prefetch",
    "ShardedFarmerPrefetcher": "prefetch",
    "DualRequestQueue": "queues",
    "MetadataRequest": "requests",
    "RequestKind": "requests",
    "TIER_POLICIES": "tiering",
    "CorrelatedTierPolicy": "tiering",
    "LfuTierPolicy": "tiering",
    "LruTierPolicy": "tiering",
    "TieredStore": "tiering",
    "TierPolicy": "tiering",
    "make_tier_policy": "tiering",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> object:
    """Resolve an export on first touch and cache it on the package."""
    try:
        submodule = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
