"""The HUSt-like storage substrate: event engine, LRU metadata cache,
Berkeley-DB-substitute KV store, dual priority queues, metadata servers,
object storage devices, trace-replay clients and the cluster wiring.
"""

from repro.storage.cache import CacheEntry, LRUCache
from repro.storage.client import TraceReplayClient
from repro.storage.cluster import HustCluster, SimulationConfig, run_simulation
from repro.storage.engine import EventLoop
from repro.storage.kvstore import BTreeKVStore
from repro.storage.latency import LatencyModel
from repro.storage.mds import MetadataServer
from repro.storage.metrics import MetricsCollector, SimulationReport
from repro.storage.osd import Extent, ObjectStorageDevice, ReadCost
from repro.storage.prefetch import (
    FarmerPrefetcher,
    MdsShardView,
    NoPrefetcher,
    PredictorPrefetcher,
    PrefetchEngine,
    ShardedFarmerPrefetcher,
)
from repro.storage.queues import DualRequestQueue
from repro.storage.requests import MetadataRequest, RequestKind

__all__ = [
    "CacheEntry",
    "LRUCache",
    "TraceReplayClient",
    "HustCluster",
    "SimulationConfig",
    "run_simulation",
    "EventLoop",
    "BTreeKVStore",
    "LatencyModel",
    "MetadataServer",
    "MetricsCollector",
    "SimulationReport",
    "Extent",
    "ObjectStorageDevice",
    "ReadCost",
    "FarmerPrefetcher",
    "MdsShardView",
    "NoPrefetcher",
    "PredictorPrefetcher",
    "PrefetchEngine",
    "ShardedFarmerPrefetcher",
    "DualRequestQueue",
    "MetadataRequest",
    "RequestKind",
]
