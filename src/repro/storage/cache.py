"""The metadata cache: LRU replacement with prefetch bookkeeping.

LRU is both the MDS cache replacement policy and, with prefetching
disabled, the paper's standalone comparator. Entries remember whether
they were brought in by a prefetch and whether they have served a demand
hit since — that is exactly the bookkeeping prefetch *accuracy* (Table 3)
needs: a prefetched entry that gets a demand hit before eviction was a
good prefetch; one evicted untouched was cache pollution.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError

__all__ = ["CacheEntry", "LRUCache"]


@dataclass(slots=True)
class CacheEntry:
    """One cached metadata object plus prefetch provenance."""

    value: Any
    prefetched: bool = False
    used_since_prefetch: bool = True  # demand-loaded entries count as used


class LRUCache:
    """O(1) LRU cache over integer keys.

    ``on_evict(key, entry)`` fires for every eviction (not for explicit
    invalidation), letting the metrics layer count wasted prefetches.
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Callable[[int, CacheEntry], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[int, CacheEntry] = OrderedDict()
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def lookup(self, key: int) -> CacheEntry | None:
        """Demand lookup: recency-promoting, counts hit/miss, marks a
        prefetched entry as used on its first demand hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if entry.prefetched and not entry.used_since_prefetch:
            entry.used_since_prefetch = True
        return entry

    def peek(self, key: int) -> CacheEntry | None:
        """Non-promoting, non-counting lookup (used by the prefetcher to
        skip already-cached candidates)."""
        return self._entries.get(key)

    def insert(self, key: int, value: Any, prefetched: bool = False) -> None:
        """Insert or refresh an entry; evicts LRU victims as needed.

        Refreshing an existing entry with a demand load clears its
        prefetch provenance; refreshing with a prefetch keeps an existing
        demand entry's provenance (a prefetch of something already cached
        must not turn an earned entry into a speculative one).
        """
        existing = self._entries.get(key)
        if existing is not None:
            existing.value = value
            if not prefetched:
                existing.prefetched = False
                existing.used_since_prefetch = True
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            victim_key, victim = self._entries.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(victim_key, victim)
        self._entries[key] = CacheEntry(
            value=value,
            prefetched=prefetched,
            used_since_prefetch=not prefetched,
        )

    def invalidate(self, key: int) -> bool:
        """Drop an entry without firing the eviction callback."""
        return self._entries.pop(key, None) is not None

    def hit_ratio(self) -> float:
        """Demand hit ratio so far (NaN before any lookup)."""
        total = self.hits + self.misses
        if total == 0:
            return float("nan")
        return self.hits / total

    def keys(self) -> list[int]:
        """Keys in LRU→MRU order (diagnostics)."""
        return list(self._entries)

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (warm-up handling)."""
        self.hits = 0
        self.misses = 0
