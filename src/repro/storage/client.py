"""Trace-replay client: turns a trace into timed demand requests.

The client walks the trace and submits each record as a demand request at
its (scaled) timestamp. Scheduling is lazy — the next arrival is put on
the event loop only when the previous one fires — so memory stays O(1) in
trace length. A router function maps fids to metadata servers, supporting
the multi-MDS configuration (hash partitioning, as HUSt load-balances).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.storage.engine import EventLoop
from repro.storage.mds import MetadataServer
from repro.storage.requests import MetadataRequest, RequestKind
from repro.traces.record import TraceRecord

__all__ = ["TraceReplayClient"]


class TraceReplayClient:
    """Replays a trace against one or more metadata servers."""

    def __init__(
        self,
        engine: EventLoop,
        records: Sequence[TraceRecord],
        router: Callable[[int], MetadataServer],
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.engine = engine
        self.router = router
        self.time_scale = time_scale
        self._iter: Iterator[TraceRecord] = iter(records)
        self.submitted = 0

    def start(self) -> None:
        """Arm the first arrival (no-op on an empty trace)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        record = next(self._iter, None)
        if record is None:
            return
        arrival = int(record.ts * self.time_scale)
        # clamp into the present: trace timestamps are non-decreasing, but
        # scaling may round below the engine clock on the first event
        arrival = max(arrival, self.engine.now)
        self.engine.schedule_at(arrival, lambda: self._dispatch(record))

    def _dispatch(self, record: TraceRecord) -> None:
        request = MetadataRequest(
            fid=record.fid,
            kind=RequestKind.DEMAND,
            arrival_ns=self.engine.now,
            record=record,
        )
        self.router(record.fid).submit(request)
        self.submitted += 1
        self._schedule_next()
