"""HUSt cluster wiring: clients → metadata servers → Berkeley-DB stores.

:func:`run_simulation` is the one-call entry point every experiment uses:
give it a trace and a prefetch engine, get back a
:class:`~repro.storage.metrics.SimulationReport`. Multiple MDSes are
supported via fid hash partitioning (the paper's first answer to the
metadata bottleneck); each owns its cache, queues and store shard. The
prefetch engine is shared by default, as in HUSt's architecture
(Figure 4) — but an engine that offers per-shard views (the
:class:`~repro.storage.prefetch.ShardedFarmerPrefetcher`) is split so
each MDS drives its co-located miner shard instead of the single global
engine, and its prefetch candidates are filtered to the fids that MDS
actually stores. With ``SimulationConfig.routed_prefetch`` the non-local
candidates are not dropped but forwarded to the owning server's prefetch
queue (bounded per request by ``forward_budget``), capturing the
remaining cross-shard prefetch benefit.

With ``SimulationConfig.tiering`` each MDS additionally fronts its
metadata objects with a tiered object store
(:mod:`repro.storage.tiering`): a fast tier sized to ``tier_fraction``
of the server's objects, driven by the named placement policy. Demand
misses are charged a per-tier object read, and the correlated policy's
cross-server placement hints ride the same peer seam as routed prefetch
(bounded by ``forward_budget``, but active independently of
``routed_prefetch`` so tiering never silently changes the prefetch
comparison).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.storage.client import TraceReplayClient
from repro.storage.engine import EventLoop
from repro.storage.kvstore import BTreeKVStore
from repro.storage.latency import LatencyModel
from repro.storage.mds import MetadataServer
from repro.storage.metrics import MetricsCollector, SimulationReport
from repro.storage.osd import ObjectStorageDevice
from repro.storage.prefetch import PrefetchEngine
from repro.storage.tiering import TIER_POLICIES, TieredStore, TierPolicy, make_tier_policy
from repro.traces.record import TraceRecord
from repro.utils.rng import derive_rng

__all__ = ["SimulationConfig", "HustCluster", "run_simulation"]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Cluster-level simulation knobs.

    Attributes:
        cache_capacity: per-MDS metadata-cache entries.
        prefetch_limit: per-MDS prefetch-queue bound (overflow drops the
            newest speculative request).
        latency: the service-time model every request is charged with.
        n_mds: metadata servers; fids partition by ``fid % n_mds``.
        time_scale: trace inter-arrival scaling (< 1 compresses time).
        seed: RNG seed for latency jitter.
        routed_prefetch: if True (and ``n_mds > 1``), an MDS forwards
            prefetch candidates stored on another server to *that*
            server's prefetch queue instead of dropping them — the
            owner loads its own cache, where the future demand will
            look. Requires an engine exposing ``partition_candidates``
            (the sharded service's per-MDS views do).
        forward_budget: max candidates forwarded per completed demand
            request (bounds the cross-server control traffic the same
            way ``prefetch_limit`` bounds the speculative load). Also
            bounds per-request tier placement hints when tiering is on.
        tiering: tier-placement policy name (``lru`` / ``lfu`` /
            ``correlated``) or None for an untiered cluster.
        tier_fraction: fast-tier capacity as a fraction of each server's
            object count (at least one slot per server).
        tier_k: correlators co-promoted per access by the ``correlated``
            policy.
    """

    cache_capacity: int = 256
    prefetch_limit: int = 64
    latency: LatencyModel = field(default_factory=LatencyModel)
    n_mds: int = 1
    time_scale: float = 1.0
    seed: int = 0
    routed_prefetch: bool = False
    forward_budget: int = 4
    tiering: str | None = None
    tier_fraction: float = 0.1
    tier_k: int = 4

    def __post_init__(self) -> None:
        if self.cache_capacity < 1:
            raise ConfigError("cache_capacity must be >= 1")
        if self.prefetch_limit < 0:
            raise ConfigError("prefetch_limit must be >= 0")
        if self.n_mds < 1:
            raise ConfigError("n_mds must be >= 1")
        if self.time_scale <= 0:
            raise ConfigError("time_scale must be positive")
        if self.forward_budget < 0:
            raise ConfigError("forward_budget must be >= 0")
        if self.tiering is not None and self.tiering not in TIER_POLICIES:
            raise ConfigError(
                f"unknown tier policy {self.tiering!r}; expected one of "
                f"{', '.join(sorted(TIER_POLICIES))}"
            )
        if not 0.0 < self.tier_fraction <= 1.0:
            raise ConfigError("tier_fraction must be in (0, 1]")
        if self.tier_k < 0:
            raise ConfigError("tier_k must be >= 0")


def _metadata_value(record: TraceRecord) -> dict:
    """The metadata object stored per file (shape mirrors an inode)."""
    return {
        "fid": record.fid,
        "size": record.size,
        "uid": record.uid,
        "path": record.path,
        "dev": record.dev,
    }


class HustCluster:
    """A wired cluster ready to replay traces.

    ``tier_policy_factory`` overrides ``config.tiering``'s named policy
    with a custom one per server (capacity in, policy out) — the oracle
    headroom bound builds a correlated policy whose candidate source is
    the planted truth instead of the miner.
    """

    def __init__(
        self,
        config: SimulationConfig,
        prefetcher: PrefetchEngine,
        tier_policy_factory: Callable[[int], TierPolicy] | None = None,
    ) -> None:
        self.config = config
        self.prefetcher = prefetcher
        self.tier_policy_factory = tier_policy_factory
        self.tiered = config.tiering is not None or tier_policy_factory is not None
        self.engine = EventLoop()
        self.metrics = MetricsCollector()
        jitter_rng = (
            derive_rng(config.seed, "latency-jitter")
            if config.latency.jitter_sigma > 0
            else None
        )
        self.servers = [
            MetadataServer(
                engine=self.engine,
                kvstore=BTreeKVStore(),
                prefetcher=self._engine_for(i),
                metrics=self.metrics,
                latency=config.latency,
                cache_capacity=config.cache_capacity,
                prefetch_limit=config.prefetch_limit,
                rng=jitter_rng,
                name=f"mds{i}",
                forward_budget=(
                    config.forward_budget if config.routed_prefetch else 0
                ),
                hint_budget=(config.forward_budget if self.tiered else 0),
            )
            for i in range(config.n_mds)
        ]
        if (config.routed_prefetch or self.tiered) and config.n_mds > 1:
            # peers[i] stores the fids with fid % n_mds == i, matching
            # route(); forwarding (prefetches or placement hints) needs
            # every server to reach the owner
            for server in self.servers:
                server.peers = self.servers

    def _engine_for(self, server_index: int) -> PrefetchEngine:
        """The prefetch engine MDS ``server_index`` drives: a per-shard
        view when the engine offers one and the cluster is partitioned,
        else the shared global engine."""
        view_factory = getattr(self.prefetcher, "shard_view", None)
        if self.config.n_mds > 1 and callable(view_factory):
            return view_factory(server_index, self.config.n_mds)
        return self.prefetcher

    def route(self, fid: int) -> MetadataServer:
        """Owning MDS of a fid (hash partitioning)."""
        return self.servers[fid % len(self.servers)]

    def preload(self, records: Sequence[TraceRecord]) -> int:
        """Populate each MDS's store shard with every file's metadata.

        With tiering on, also builds each server's
        :class:`~repro.storage.tiering.TieredStore`: every local object
        starts on the slow tier (first-seen trace order), and the fast
        tier is sized to ``tier_fraction`` of the server's object count
        (at least one slot). Idempotent for the tier — a second preload
        keeps the existing store.
        """
        seen: set[int] = set()
        per_server: list[list[tuple[int, int]]] = [[] for _ in self.servers]
        for record in records:
            if record.fid in seen:
                continue
            seen.add(record.fid)
            server_index = record.fid % len(self.servers)
            self.servers[server_index].kvstore.put(
                record.fid, _metadata_value(record)
            )
            per_server[server_index].append((record.fid, record.size))
        if self.tiered:
            for server, placements in zip(self.servers, per_server):
                if server.tier is None:
                    server.tier = self._build_tier(server.name, placements)
        return len(seen)

    def _make_tier_policy(self, capacity: int) -> TierPolicy:
        if self.tier_policy_factory is not None:
            return self.tier_policy_factory(capacity)
        return make_tier_policy(
            self.config.tiering, capacity, k=self.config.tier_k
        )

    def _build_tier(
        self, server_name: str, placements: list[tuple[int, int]]
    ) -> TieredStore:
        capacity = max(1, round(self.config.tier_fraction * len(placements)))
        policy = self._make_tier_policy(capacity)
        device = ObjectStorageDevice(
            name=f"{server_name}-osd", fast_capacity=policy.capacity
        )
        store = TieredStore(device, policy, self.metrics)
        for fid, size in placements:
            store.place(fid, max(1024, size))
        return store

    def run(self, records: Sequence[TraceRecord]) -> SimulationReport:
        """Preload, replay the full trace, and return the report."""
        self.preload(records)
        client = TraceReplayClient(
            self.engine, records, self.route, time_scale=self.config.time_scale
        )
        client.start()
        self.engine.run()
        self.metrics.makespan_ns = self.engine.now
        return self.metrics.report(miner_memory_bytes=self.prefetcher.memory_bytes())


def run_simulation(
    records: Sequence[TraceRecord],
    prefetcher: PrefetchEngine,
    config: SimulationConfig | None = None,
    tier_policy_factory: Callable[[int], TierPolicy] | None = None,
) -> SimulationReport:
    """Replay ``records`` through a fresh cluster with ``prefetcher``."""
    cluster = HustCluster(
        config if config is not None else SimulationConfig(),
        prefetcher,
        tier_policy_factory=tier_policy_factory,
    )
    return cluster.run(records)
