"""HUSt cluster wiring: clients → metadata servers → Berkeley-DB stores.

:func:`run_simulation` is the one-call entry point every experiment uses:
give it a trace and a prefetch engine, get back a
:class:`~repro.storage.metrics.SimulationReport`. Multiple MDSes are
supported via fid hash partitioning (the paper's first answer to the
metadata bottleneck); each owns its cache, queues and store shard. The
prefetch engine is shared by default, as in HUSt's architecture
(Figure 4) — but an engine that offers per-shard views (the
:class:`~repro.storage.prefetch.ShardedFarmerPrefetcher`) is split so
each MDS drives its co-located miner shard instead of the single global
engine, and its prefetch candidates are filtered to the fids that MDS
actually stores.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.storage.client import TraceReplayClient
from repro.storage.engine import EventLoop
from repro.storage.kvstore import BTreeKVStore
from repro.storage.latency import LatencyModel
from repro.storage.mds import MetadataServer
from repro.storage.metrics import MetricsCollector, SimulationReport
from repro.storage.prefetch import PrefetchEngine
from repro.traces.record import TraceRecord
from repro.utils.rng import derive_rng

__all__ = ["SimulationConfig", "HustCluster", "run_simulation"]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Cluster-level simulation knobs."""

    cache_capacity: int = 256
    prefetch_limit: int = 64
    latency: LatencyModel = field(default_factory=LatencyModel)
    n_mds: int = 1
    time_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cache_capacity < 1:
            raise ConfigError("cache_capacity must be >= 1")
        if self.prefetch_limit < 0:
            raise ConfigError("prefetch_limit must be >= 0")
        if self.n_mds < 1:
            raise ConfigError("n_mds must be >= 1")
        if self.time_scale <= 0:
            raise ConfigError("time_scale must be positive")


def _metadata_value(record: TraceRecord) -> dict:
    """The metadata object stored per file (shape mirrors an inode)."""
    return {
        "fid": record.fid,
        "size": record.size,
        "uid": record.uid,
        "path": record.path,
        "dev": record.dev,
    }


class HustCluster:
    """A wired cluster ready to replay traces."""

    def __init__(self, config: SimulationConfig, prefetcher: PrefetchEngine) -> None:
        self.config = config
        self.prefetcher = prefetcher
        self.engine = EventLoop()
        self.metrics = MetricsCollector()
        jitter_rng = (
            derive_rng(config.seed, "latency-jitter")
            if config.latency.jitter_sigma > 0
            else None
        )
        self.servers = [
            MetadataServer(
                engine=self.engine,
                kvstore=BTreeKVStore(),
                prefetcher=self._engine_for(i),
                metrics=self.metrics,
                latency=config.latency,
                cache_capacity=config.cache_capacity,
                prefetch_limit=config.prefetch_limit,
                rng=jitter_rng,
                name=f"mds{i}",
            )
            for i in range(config.n_mds)
        ]

    def _engine_for(self, server_index: int) -> PrefetchEngine:
        """The prefetch engine MDS ``server_index`` drives: a per-shard
        view when the engine offers one and the cluster is partitioned,
        else the shared global engine."""
        view_factory = getattr(self.prefetcher, "shard_view", None)
        if self.config.n_mds > 1 and callable(view_factory):
            return view_factory(server_index, self.config.n_mds)
        return self.prefetcher

    def route(self, fid: int) -> MetadataServer:
        """Owning MDS of a fid (hash partitioning)."""
        return self.servers[fid % len(self.servers)]

    def preload(self, records: Sequence[TraceRecord]) -> int:
        """Populate each MDS's store shard with every file's metadata."""
        seen: set[int] = set()
        for record in records:
            if record.fid in seen:
                continue
            seen.add(record.fid)
            self.route(record.fid).kvstore.put(record.fid, _metadata_value(record))
        return len(seen)

    def run(self, records: Sequence[TraceRecord]) -> SimulationReport:
        """Preload, replay the full trace, and return the report."""
        self.preload(records)
        client = TraceReplayClient(
            self.engine, records, self.route, time_scale=self.config.time_scale
        )
        client.start()
        self.engine.run()
        self.metrics.makespan_ns = self.engine.now
        return self.metrics.report(miner_memory_bytes=self.prefetcher.memory_bytes())


def run_simulation(
    records: Sequence[TraceRecord],
    prefetcher: PrefetchEngine,
    config: SimulationConfig | None = None,
) -> SimulationReport:
    """Replay ``records`` through a fresh cluster with ``prefetcher``."""
    cluster = HustCluster(config if config is not None else SimulationConfig(), prefetcher)
    return cluster.run(records)
