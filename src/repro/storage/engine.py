"""Minimal discrete-event engine for the storage simulator.

Simulated time is integer nanoseconds (no float drift). Events are
``(time, sequence, callback)`` triples in a binary heap; the sequence
number makes event ordering total and deterministic — two events at the
same instant fire in scheduling order, so identical seeds give identical
simulations on every platform.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["EventLoop"]


class EventLoop:
    """Deterministic heapq-based event loop."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0
        self._processed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    def schedule_at(self, when: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when``.

        Raises:
            SimulationError: if ``when`` is in the simulated past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} ns; current time is {self._now} ns"
            )
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` ns from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def run(self, max_events: int | None = None) -> int:
        """Dispatch events until the heap is empty (or ``max_events``).

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self._heap:
            if max_events is not None and dispatched >= max_events:
                break
            when, _, callback = heapq.heappop(self._heap)
            self._now = when
            callback()
            self._processed += 1
            dispatched += 1
        return dispatched

    def pending(self) -> int:
        """Number of events currently scheduled."""
        return len(self._heap)
