"""An ordered key/value store standing in for Berkeley DB.

HUSt keeps file and object metadata (and FARMER's Correlator Lists) in
Berkeley DB; we implement the piece of it the simulator exercises: an
ordered map with point lookups, inserts, range scans and cursors, backed
by a genuine B-tree (CLRS insertion with node splits; deletes are
tombstoned, which is how log-structured stores sidestep B-tree deletion
as well). Operation counts are tracked so experiments can report I/O
volume; *timing* is charged by the metadata server through the latency
model, keeping the data structure pure.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path
from typing import Any

from repro.errors import KVStoreError

__all__ = ["BTreeKVStore"]

_TOMBSTONE = object()


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.children: list["_Node"] | None = None if leaf else []

    @property
    def leaf(self) -> bool:
        """True when the node has no children (bottom of the tree)."""
        return self.children is None


class BTreeKVStore:
    """In-memory B-tree keyed by integers (CLRS minimum degree ``t``)."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise KVStoreError("min_degree must be >= 2")
        self._t = min_degree
        self._root = _Node(leaf=True)
        self._len = 0
        self.gets = 0
        self.puts = 0
        self.scans = 0

    # ------------------------------------------------------------------
    # point operations
    # ------------------------------------------------------------------

    def get(self, key: int, default: Any = None) -> Any:
        """Value for ``key`` (or ``default``); counts one get."""
        self.gets += 1
        node = self._root
        while True:
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                value = node.values[i]
                return default if value is _TOMBSTONE else value
            if node.leaf:
                return default
            node = node.children[i]

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        found = self.get(key, sentinel)
        self.gets -= 1  # membership probes are not charged
        return found is not sentinel

    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``; counts one put."""
        if value is _TOMBSTONE:
            raise KVStoreError("reserved value")
        self.puts += 1
        slot = self._find_slot(key)
        if slot is not None:
            node, i = slot
            if node.values[i] is _TOMBSTONE:
                self._len += 1  # resurrecting a deleted key
            node.values[i] = value
            return
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)
        self._len += 1

    def delete(self, key: int) -> bool:
        """Tombstone ``key``; returns True if it was live."""
        slot = self._find_slot(key)
        if slot is None:
            return False
        node, i = slot
        if node.values[i] is _TOMBSTONE:
            return False
        node.values[i] = _TOMBSTONE
        self._len -= 1
        return True

    def batch_get(self, keys: list[int]) -> list[Any]:
        """Point-get each key (None for misses); one get charged per key."""
        return [self.get(k) for k in keys]

    # ------------------------------------------------------------------
    # range operations
    # ------------------------------------------------------------------

    def range(self, lo: int | None = None, hi: int | None = None) -> Iterator[tuple[int, Any]]:
        """Yield (key, value) pairs with lo <= key <= hi in key order."""
        self.scans += 1
        yield from self._walk(self._root, lo, hi)

    def _walk(self, node: _Node, lo: int | None, hi: int | None) -> Iterator[tuple[int, Any]]:
        start = 0 if lo is None else self._lower_bound(node.keys, lo)
        for i in range(start, len(node.keys)):
            key = node.keys[i]
            if hi is not None and key > hi:
                if not node.leaf:
                    yield from self._walk(node.children[i], lo, hi)
                return
            if not node.leaf:
                yield from self._walk(node.children[i], lo, hi)
            value = node.values[i]
            if value is not _TOMBSTONE:
                yield key, value
        if not node.leaf:
            yield from self._walk(node.children[len(node.keys)], lo, hi)

    def keys(self) -> list[int]:
        """All live keys in order (materialised; test/diagnostic use)."""
        out = [k for k, _ in self.range()]
        self.scans -= 1
        return out

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @staticmethod
    def _lower_bound(keys: list[int], key: int) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _find_slot(self, key: int) -> tuple[_Node, int] | None:
        """Locate the (node, index) slot holding ``key`` (live or dead)."""
        node = self._root
        while True:
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node, i
            if node.leaf:
                return None
            node = node.children[i]

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        mid_key = child.keys[t - 1]
        mid_val = child.values[t - 1]
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, mid_key)
        parent.values.insert(index, mid_val)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: int, value: Any) -> None:
        while not node.leaf:
            i = self._lower_bound(node.keys, key)
            child = node.children[i]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if key > node.keys[i]:
                    i += 1
                child = node.children[i]
            node = child
        i = self._lower_bound(node.keys, key)
        node.keys.insert(i, key)
        node.values.insert(i, value)

    # ------------------------------------------------------------------
    # introspection / persistence
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def height(self) -> int:
        """Tree height (1 for a lone root leaf)."""
        h, node = 1, self._root
        while not node.leaf:
            h += 1
            node = node.children[0]
        return h

    def node_count(self) -> int:
        """Total node count (structure tests)."""

        def count(node: _Node) -> int:
            if node.leaf:
                return 1
            return 1 + sum(count(c) for c in node.children)

        return count(self._root)

    def check_invariants(self) -> None:
        """Assert B-tree invariants; raises KVStoreError on violation."""
        t = self._t

        def check(node: _Node, lo: int | None, hi: int | None, is_root: bool, depth: int) -> int:
            if not is_root and len(node.keys) < t - 1:
                raise KVStoreError("underfull node")
            if len(node.keys) > 2 * t - 1:
                raise KVStoreError("overfull node")
            for a, b in zip(node.keys, node.keys[1:]):
                if a >= b:
                    raise KVStoreError("keys not strictly increasing")
            if node.keys:
                if lo is not None and node.keys[0] <= lo:
                    raise KVStoreError("key below subtree bound")
                if hi is not None and node.keys[-1] >= hi:
                    raise KVStoreError("key above subtree bound")
            if node.leaf:
                return depth
            if len(node.children) != len(node.keys) + 1:
                raise KVStoreError("child count mismatch")
            depths = set()
            bounds = [lo, *node.keys, hi]
            for i, child in enumerate(node.children):
                depths.add(check(child, bounds[i], bounds[i + 1], False, depth + 1))
            if len(depths) != 1:
                raise KVStoreError("leaves at unequal depth")
            return depths.pop()

        check(self._root, None, None, True, 0)

    def dump(self, path: str | Path) -> int:
        """Persist live pairs as JSON lines; returns the pair count."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for key, value in self.range():
                fh.write(json.dumps([key, value], separators=(",", ":")))
                fh.write("\n")
                n += 1
        self.scans -= 1
        return n

    @classmethod
    def load(cls, path: str | Path, min_degree: int = 16) -> "BTreeKVStore":
        """Rebuild a store from :meth:`dump` output."""
        store = cls(min_degree=min_degree)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                key, value = json.loads(line)
                store.put(int(key), value)
        store.puts = 0
        return store

    def approx_bytes(self) -> int:
        """Approximate resident size of keys + node overhead."""
        return 64 + self.node_count() * 96 + self._len * 24
