"""Latency model for the metadata-server simulator.

The paper measured wall-clock latencies on 2008 hardware (Berkeley DB on
disk behind an object-storage stack); we model the same *structure* with
configurable constants plus optional lognormal jitter:

* a cache hit costs a memory lookup and a reply;
* a cache miss adds a Berkeley-DB B-tree lookup touching disk;
* a prefetch item is cheaper than a demand miss because correlated
  metadata is batch-read with cursor locality (§4.2's layout argument);
* the miner charges a small per-request overhead (FARMER's "reasonable
  overhead" claim is measured, not assumed);
* with tiered storage (:mod:`repro.storage.tiering`), every demand
  additionally reads the object from its tier: a fast-tier (flash)
  resident costs ``fast_tier_ns``, a slow-tier resident the much larger
  ``slow_tier_ns`` — the gap is what a placement policy competes over.

Absolute values are not the point — EXPERIMENTS.md compares shapes and
ratios, which are governed by hit ratios and queueing, not by constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["LatencyModel"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Service-time constants (nanoseconds) with optional jitter.

    Attributes:
        cache_hit_ns: demand service time on a metadata-cache hit.
        kv_lookup_ns: extra time for a Berkeley-DB lookup on a miss.
        prefetch_item_ns: service time for one prefetched entry.
        network_ns: one-way client<->MDS latency added to every response.
        jitter_sigma: lognormal sigma; 0 disables jitter entirely.
        fast_tier_ns: tiered object read when the object is fast-tier
            resident (charged on every demand request, but only when
            the cluster runs with ``SimulationConfig.tiering``).
        slow_tier_ns: tiered object read from the slow tier; must be at
            least ``fast_tier_ns`` (a "fast" tier slower than the slow
            one is a misconfiguration, not a policy).
    """

    cache_hit_ns: int = 25_000
    kv_lookup_ns: int = 450_000
    prefetch_item_ns: int = 180_000
    network_ns: int = 0
    jitter_sigma: float = 0.0
    fast_tier_ns: int = 60_000
    slow_tier_ns: int = 650_000

    def __post_init__(self) -> None:
        if min(self.cache_hit_ns, self.kv_lookup_ns, self.prefetch_item_ns) <= 0:
            raise ConfigError("service times must be positive")
        if self.network_ns < 0:
            raise ConfigError("network_ns must be >= 0")
        if self.jitter_sigma < 0:
            raise ConfigError("jitter_sigma must be >= 0")
        if self.fast_tier_ns <= 0 or self.slow_tier_ns <= 0:
            raise ConfigError("tier read times must be positive")
        if self.slow_tier_ns < self.fast_tier_ns:
            raise ConfigError("slow_tier_ns must be >= fast_tier_ns")

    def _jitter(self, base: int, rng: np.random.Generator | None) -> int:
        if rng is None or self.jitter_sigma == 0.0:
            return base
        factor = float(np.exp(rng.normal(0.0, self.jitter_sigma)))
        return max(1, int(base * factor))

    def demand_service_ns(
        self, hit: bool, rng: np.random.Generator | None = None
    ) -> int:
        """Service time of a demand request given hit/miss."""
        base = self.cache_hit_ns if hit else self.cache_hit_ns + self.kv_lookup_ns
        return self._jitter(base, rng)

    def prefetch_service_ns(self, rng: np.random.Generator | None = None) -> int:
        """Service time of one prefetch item."""
        return self._jitter(self.prefetch_item_ns, rng)

    def tier_read_ns(
        self, fast: bool, rng: np.random.Generator | None = None
    ) -> int:
        """Object read time from the resident tier (tiered clusters only)."""
        return self._jitter(self.fast_tier_ns if fast else self.slow_tier_ns, rng)
