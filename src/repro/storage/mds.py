"""The metadata server (MDS): cache + Berkeley-DB store + dual queues.

One MDS is a single service unit: it serves requests one at a time, the
demand queue strictly before the prefetch queue (§4.1's priority
scheduling). A demand request costs a cache lookup (hit) or a cache
lookup plus a KV fetch (miss); on completion the prefetch engine observes
the request and may enqueue speculative loads, which the server performs
whenever no demand is waiting. All service time is charged through the
latency model, including the miner's per-request overhead.

Cluster-routed prefetch: when the cluster wires ``peers`` and a positive
``forward_budget``, candidates owned by another server are forwarded to
that server's prefetch queue (via :meth:`MetadataServer.
accept_forwarded_prefetch`) instead of dropped — the owner performs the
speculative load into *its* cache, where the future demand request will
actually look. Forwards are bounded per request and counted in
``prefetch_forwarded``; they respect the owner's queue limit and dedup
exactly like locally-issued prefetches.

Tiered storage: when the cluster attaches a :class:`~repro.storage.
tiering.TieredStore`, every demand request is charged an object read
from its *pre-access* tier (fast or slow) on top of the metadata
service time, and on completion drives the tier policy — the correlated policy co-promotes
the file's mined correlators, and correlators owned by a peer travel
the same forwarding seam as routed prefetch, arriving via
:meth:`MetadataServer.accept_placement_hint` (bounded per request by
``hint_budget``, counted in ``tier_hints_forwarded``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.storage.cache import CacheEntry, LRUCache
from repro.storage.engine import EventLoop
from repro.storage.kvstore import BTreeKVStore
from repro.storage.latency import LatencyModel
from repro.storage.metrics import MetricsCollector
from repro.storage.prefetch import PrefetchEngine
from repro.storage.queues import DualRequestQueue
from repro.storage.requests import MetadataRequest, RequestKind
from repro.traces.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.tiering import TieredStore

__all__ = ["MetadataServer"]


class MetadataServer:
    """Event-driven metadata server with FARMER-style prefetching."""

    def __init__(
        self,
        engine: EventLoop,
        kvstore: BTreeKVStore,
        prefetcher: PrefetchEngine,
        metrics: MetricsCollector,
        latency: LatencyModel | None = None,
        cache_capacity: int = 256,
        prefetch_limit: int = 64,
        rng: np.random.Generator | None = None,
        name: str = "mds0",
        forward_budget: int = 0,
        hint_budget: int = 0,
    ) -> None:
        self.name = name
        self.engine = engine
        self.kvstore = kvstore
        self.prefetcher = prefetcher
        self.metrics = metrics
        self.latency = latency if latency is not None else LatencyModel()
        self.queue = DualRequestQueue(prefetch_limit=prefetch_limit)
        self.cache = LRUCache(cache_capacity, on_evict=self._on_evict)
        self._rng = rng
        self._busy = False
        self.forward_budget = forward_budget
        self.hint_budget = hint_budget
        # wired by the cluster when routed prefetch or tiering is on:
        # peers[i] is the MDS storing the fids with `fid % n_mds == i`
        self.peers: list["MetadataServer"] | None = None
        # wired by the cluster during preload when tiering is on
        self.tier: "TieredStore | None" = None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, request: MetadataRequest) -> None:
        """Enqueue a request and start serving if idle."""
        self.queue.push(request)
        self._maybe_start()

    # ------------------------------------------------------------------
    # service loop
    # ------------------------------------------------------------------

    def _maybe_start(self) -> None:
        if self._busy:
            return
        request = self.queue.pop()
        if request is None:
            return
        self._busy = True
        request.start_ns = self.engine.now
        if request.kind is RequestKind.DEMAND:
            self._start_demand(request)
        else:
            self._start_prefetch(request)

    def _start_demand(self, request: MetadataRequest) -> None:
        fid = request.fid
        before = self.cache.peek(fid)
        first_prefetch_use = (
            before is not None and before.prefetched and not before.used_since_prefetch
        )
        entry = self.cache.lookup(fid)
        request.hit = entry is not None
        if first_prefetch_use:
            self.metrics.prefetch_used += 1
        service = self.latency.demand_service_ns(request.hit, self._rng)
        service += self.prefetcher.overhead_ns
        if self.tier is not None:
            # the demand reads the object itself from whichever tier it
            # occupies now, independent of the metadata-cache outcome
            request.tier_fast = self.tier.peek_fast(fid)
            service += self.latency.tier_read_ns(request.tier_fast, self._rng)
        self.metrics.record_busy(service)
        self.engine.schedule_after(service, lambda: self._complete_demand(request))

    def _complete_demand(self, request: MetadataRequest) -> None:
        fid = request.fid
        if not request.hit:
            value = self.kvstore.get(fid)
            if value is None:
                raise SimulationError(f"fid {fid} missing from metadata store")
            self.cache.insert(fid, value, prefetched=False)
        request.completion_ns = self.engine.now
        self.metrics.record_demand(
            response_ns=request.response_ns + self.latency.network_ns,
            wait_ns=request.wait_ns,
            hit=request.hit,
        )
        if request.record is None:
            raise SimulationError("demand request lacks its trace record")
        self.prefetcher.observe(request.record)
        local, remote = self._candidates(request.record)
        self._tier_access(request, local, remote)
        self._issue_prefetches(request, local, remote)
        self._busy = False
        self._maybe_start()

    def _candidates(
        self, record: TraceRecord
    ) -> tuple[list[int], list[tuple[int, int]]]:
        """Mined candidates split into local fids and (fid, owner) pairs.

        The split needs an engine exposing ``partition_candidates`` and
        wired peers; otherwise everything is local (an unsharded engine
        proposes fids this server may not store — the tier drops the
        unplaced ones, and prefetches of them fizzle as before).
        """
        partition = getattr(self.prefetcher, "partition_candidates", None)
        if self.peers is not None and callable(partition):
            return partition(record)
        return self.prefetcher.candidates(record), []

    def _tier_access(
        self,
        request: MetadataRequest,
        local: list[int],
        remote: list[tuple[int, int]],
    ) -> None:
        """Drive the tier policy with the completed demand and forward
        placement hints for correlators a peer server stores."""
        if self.tier is None:
            return
        correlates: list[int] = []
        if self.tier.policy.uses_correlates:
            correlates = self.tier.candidates_for(request.fid, local)
        self.tier.access(request.fid, correlates, was_fast=request.tier_fast)
        if self.peers is None or self.hint_budget <= 0:
            return
        if not self.tier.policy.uses_correlates:
            return
        # like forward_budget, the hint budget bounds attempted
        # cross-server messages, not accepted ones
        for fid, owner in remote[: self.hint_budget]:
            self.peers[owner].accept_placement_hint(fid)
            self.metrics.tier_hints_forwarded += 1

    def accept_placement_hint(self, fid: int) -> bool:
        """Apply a peer's tier-placement hint to this server's tier.

        The correlated policy co-promotes the fid exactly as if a local
        access had named it as a correlator. Returns False when this
        server runs no tier, doesn't store the fid (a stale route), or
        its policy ignores hints.
        """
        if self.tier is None:
            return False
        return self.tier.hint(fid)

    def _issue_prefetches(
        self,
        request: MetadataRequest,
        local: list[int],
        remote: list[tuple[int, int]],
    ) -> None:
        for fid in local:
            if fid == request.fid:
                continue
            if self.cache.peek(fid) is not None:
                continue
            if self.queue.has_queued_prefetch(fid):
                continue
            pf = MetadataRequest(
                fid=fid, kind=RequestKind.PREFETCH, arrival_ns=self.engine.now
            )
            if self.queue.push(pf):
                self.metrics.prefetch_issued += 1
            else:
                self.metrics.prefetch_dropped += 1
        # the budget bounds cross-server messages (attempts), not just
        # accepted forwards — a rejected forward still costs traffic
        for fid, owner in remote[: self.forward_budget]:
            self.peers[owner].accept_forwarded_prefetch(fid)

    def accept_forwarded_prefetch(self, fid: int) -> bool:
        """Enqueue a prefetch forwarded by a peer MDS.

        Same dedup and queue-bound rules as a locally-issued prefetch;
        returns True when the request was enqueued (it then counts
        toward both ``prefetch_issued`` and ``prefetch_forwarded``),
        False when it was redundant (already cached/queued here) or the
        prefetch queue overflowed (counted as a drop).
        """
        if self.cache.peek(fid) is not None:
            return False
        if self.queue.has_queued_prefetch(fid):
            return False
        pf = MetadataRequest(
            fid=fid, kind=RequestKind.PREFETCH, arrival_ns=self.engine.now
        )
        if not self.queue.push(pf):
            self.metrics.prefetch_dropped += 1
            return False
        self.metrics.prefetch_issued += 1
        self.metrics.prefetch_forwarded += 1
        self._maybe_start()
        return True

    def _start_prefetch(self, request: MetadataRequest) -> None:
        service = self.latency.prefetch_service_ns(self._rng)
        self.metrics.record_busy(service)
        self.engine.schedule_after(service, lambda: self._complete_prefetch(request))

    def _complete_prefetch(self, request: MetadataRequest) -> None:
        fid = request.fid
        if self.cache.peek(fid) is not None:
            # a demand raced us and already loaded it
            self.metrics.prefetch_redundant += 1
        else:
            value = self.kvstore.get(fid)
            if value is not None:
                self.cache.insert(fid, value, prefetched=True)
                self.metrics.prefetch_completed += 1
            else:
                self.metrics.prefetch_redundant += 1
        self._busy = False
        self._maybe_start()

    # ------------------------------------------------------------------
    # callbacks
    # ------------------------------------------------------------------

    def _on_evict(self, key: int, entry: CacheEntry) -> None:
        if entry.prefetched and not entry.used_since_prefetch:
            self.metrics.prefetch_wasted += 1
