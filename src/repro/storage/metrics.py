"""Measurement: the quantities the paper's evaluation reports.

* **cache hit ratio** — demand hits / demand requests (Figures 3, 5, 7);
* **prefetch accuracy** — prefetched entries that served a demand hit
  before eviction, over completed prefetches (Table 3, Figure 7's
  accuracy discussion);
* **average response time** — demand arrival→completion (Figures 6, 8);
* server utilisation, queue statistics and FARMER's memory overhead
  (Table 4);
* **forwarded prefetches** — cross-server candidates routed to the
  owning MDS's queue instead of dropped (the cluster-routed prefetch
  extension; ``prefetch_forwarded`` is a subset of ``prefetch_issued``);
* **tier placement** — when the cluster runs tiered storage
  (:mod:`repro.storage.tiering`): ``tier_fast_hits`` / ``tier_slow_hits``
  count every demand request against the object's *pre-access* tier, so
  the fast-hit ratio has a policy-independent denominator; promotion,
  co-promotion and demotion counters expose each policy's traffic and
  churn, and ``tier_hints_forwarded`` the cross-server placement hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import OnlineStats, ReservoirSample

__all__ = ["MetricsCollector", "SimulationReport"]


@dataclass(frozen=True, slots=True)
class SimulationReport:
    """Immutable summary of one simulation run."""

    demand_requests: int
    demand_hits: int
    prefetch_issued: int
    prefetch_completed: int
    prefetch_redundant: int
    prefetch_dropped: int
    prefetch_used: int
    prefetch_wasted: int
    mean_response_ns: float
    p50_response_ns: float
    p95_response_ns: float
    max_response_ns: float
    mean_wait_ns: float
    server_busy_ns: int
    makespan_ns: int
    miner_memory_bytes: int = 0
    prefetch_forwarded: int = 0
    tier_fast_hits: int = 0
    tier_slow_hits: int = 0
    tier_promotions: int = 0
    tier_co_promotions: int = 0
    tier_demotions: int = 0
    tier_hints_forwarded: int = 0

    @property
    def hit_ratio(self) -> float:
        """Demand cache hit ratio in [0, 1]."""
        if self.demand_requests == 0:
            return float("nan")
        return self.demand_hits / self.demand_requests

    @property
    def prefetch_accuracy(self) -> float:
        """Used / completed prefetches (NaN when nothing was prefetched)."""
        if self.prefetch_completed == 0:
            return float("nan")
        return self.prefetch_used / self.prefetch_completed

    @property
    def utilization(self) -> float:
        """Server busy fraction over the simulated makespan."""
        if self.makespan_ns == 0:
            return float("nan")
        return self.server_busy_ns / self.makespan_ns

    @property
    def mean_response_ms(self) -> float:
        """Mean demand response time in milliseconds."""
        return self.mean_response_ns / 1e6

    @property
    def fast_hit_ratio(self) -> float:
        """Demand accesses served from the fast tier, in [0, 1].

        NaN on untiered runs (no tier accesses were recorded).
        """
        total = self.tier_fast_hits + self.tier_slow_hits
        if total == 0:
            return float("nan")
        return self.tier_fast_hits / total


class MetricsCollector:
    """Streaming accumulation during a simulation run."""

    def __init__(self, reservoir_capacity: int = 8192) -> None:
        self.demand_requests = 0
        self.demand_hits = 0
        self.prefetch_issued = 0
        self.prefetch_completed = 0
        self.prefetch_redundant = 0
        self.prefetch_dropped = 0
        self.prefetch_used = 0
        self.prefetch_wasted = 0
        self.prefetch_forwarded = 0
        self.tier_fast_hits = 0
        self.tier_slow_hits = 0
        self.tier_promotions = 0
        self.tier_co_promotions = 0
        self.tier_demotions = 0
        self.tier_hints_forwarded = 0
        self.server_busy_ns = 0
        self.makespan_ns = 0
        self._response = OnlineStats()
        self._wait = OnlineStats()
        self._reservoir = ReservoirSample(capacity=reservoir_capacity)

    def record_demand(self, response_ns: int, wait_ns: int, hit: bool) -> None:
        """Fold one completed demand request into the statistics."""
        self.demand_requests += 1
        if hit:
            self.demand_hits += 1
        self._response.add(float(response_ns))
        self._wait.add(float(wait_ns))
        self._reservoir.add(float(response_ns))

    def record_busy(self, service_ns: int) -> None:
        """Accumulate server busy time."""
        self.server_busy_ns += service_ns

    def record_tier_access(self, fast: bool) -> None:
        """Count one demand access against its pre-access tier."""
        if fast:
            self.tier_fast_hits += 1
        else:
            self.tier_slow_hits += 1

    def report(self, miner_memory_bytes: int = 0) -> SimulationReport:
        """Freeze the current counters into a report."""
        return SimulationReport(
            demand_requests=self.demand_requests,
            demand_hits=self.demand_hits,
            prefetch_issued=self.prefetch_issued,
            prefetch_completed=self.prefetch_completed,
            prefetch_redundant=self.prefetch_redundant,
            prefetch_dropped=self.prefetch_dropped,
            prefetch_used=self.prefetch_used,
            prefetch_wasted=self.prefetch_wasted,
            mean_response_ns=self._response.mean,
            p50_response_ns=self._reservoir.percentile(50),
            p95_response_ns=self._reservoir.percentile(95),
            max_response_ns=self._response.max if self._response.count else float("nan"),
            mean_wait_ns=self._wait.mean,
            server_busy_ns=self.server_busy_ns,
            makespan_ns=self.makespan_ns,
            miner_memory_bytes=miner_memory_bytes,
            prefetch_forwarded=self.prefetch_forwarded,
            tier_fast_hits=self.tier_fast_hits,
            tier_slow_hits=self.tier_slow_hits,
            tier_promotions=self.tier_promotions,
            tier_co_promotions=self.tier_co_promotions,
            tier_demotions=self.tier_demotions,
            tier_hints_forwarded=self.tier_hints_forwarded,
        )
