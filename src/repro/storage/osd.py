"""Object storage device: placement and batched-read cost model.

The OSD backs the §4.2 layout application. Objects are allocated extents
on a linear device; reading a batch of objects costs one seek per
*discontiguity* in the sorted extent list plus transfer time. Correlation
-directed layout wins exactly when it turns a scattered batch into a
contiguous run — the seek count is the experiment's headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError

__all__ = ["Extent", "ReadCost", "ObjectStorageDevice"]


@dataclass(frozen=True, slots=True)
class Extent:
    """A placed object's location on the device."""

    object_id: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        """First byte past the extent."""
        return self.offset + self.length


@dataclass(frozen=True, slots=True)
class ReadCost:
    """Cost of one batched read."""

    n_objects: int
    n_seeks: int
    bytes_read: int
    latency_ns: int


class ObjectStorageDevice:
    """Linear device with a sequential allocator and a seek cost model."""

    def __init__(
        self,
        seek_ns: int = 4_000_000,
        transfer_ns_per_kb: int = 10_000,
        name: str = "osd0",
    ) -> None:
        if seek_ns < 0 or transfer_ns_per_kb < 0:
            raise ConfigError("cost constants must be >= 0")
        self.name = name
        self.seek_ns = seek_ns
        self.transfer_ns_per_kb = transfer_ns_per_kb
        self._extents: dict[int, Extent] = {}
        self._cursor = 0
        self.reads = 0
        self.total_seeks = 0

    def place(self, object_id: int, length: int) -> Extent:
        """Allocate the next extent for ``object_id``.

        Raises:
            SimulationError: if the object is already placed.
        """
        if object_id in self._extents:
            raise SimulationError(f"object {object_id} already placed")
        if length <= 0:
            raise ConfigError("object length must be positive")
        extent = Extent(object_id=object_id, offset=self._cursor, length=length)
        self._extents[object_id] = extent
        self._cursor += length
        return extent

    def place_group(self, object_ids: list[int], lengths: list[int]) -> list[Extent]:
        """Place a correlated group contiguously, in the given order."""
        if len(object_ids) != len(lengths):
            raise ConfigError("ids and lengths must align")
        return [self.place(oid, ln) for oid, ln in zip(object_ids, lengths)]

    def locate(self, object_id: int) -> Extent:
        """Extent of a placed object.

        Raises:
            KeyError: if the object was never placed.
        """
        return self._extents[object_id]

    def is_placed(self, object_id: int) -> bool:
        """Whether the object has an extent."""
        return object_id in self._extents

    def read_batch(self, object_ids: list[int]) -> ReadCost:
        """Cost of reading the given objects in one request.

        The device sorts the extents by offset (as an elevator would) and
        charges one seek for the initial position plus one per gap
        between consecutive extents.
        """
        if not object_ids:
            return ReadCost(0, 0, 0, 0)
        extents = sorted(
            (self._extents[oid] for oid in object_ids), key=lambda e: e.offset
        )
        seeks = 1
        total_bytes = extents[0].length
        for prev, cur in zip(extents, extents[1:]):
            if cur.offset != prev.end:
                seeks += 1
            total_bytes += cur.length
        latency = seeks * self.seek_ns + (total_bytes // 1024) * self.transfer_ns_per_kb
        self.reads += 1
        self.total_seeks += seeks
        return ReadCost(
            n_objects=len(object_ids),
            n_seeks=seeks,
            bytes_read=total_bytes,
            latency_ns=latency,
        )

    def __len__(self) -> int:
        return len(self._extents)
