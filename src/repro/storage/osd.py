"""Object storage device: placement, tiers, and batched-read cost model.

The OSD backs the §4.2 layout application. Objects are allocated extents
on a linear device; reading a batch of objects costs one seek per
*discontiguity* in the sorted extent list plus transfer time. Correlation
-directed layout wins exactly when it turns a scattered batch into a
contiguous run — the seek count is the experiment's headline metric.

A device may additionally carry a capacity-bounded **fast tier** (flash
in front of the spinning slow tier): ``promote``/``demote`` move an
object between tiers, and :meth:`ObjectStorageDevice.read_batch` charges
each tier with its own cost constants — the slow tier pays seeks plus
rotational transfer, the fast tier a flat per-object read plus flash
transfer. Which objects deserve the fast slots is a *policy* decision
and lives in :mod:`repro.storage.tiering`; the device only enforces the
capacity bound and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError

__all__ = ["Extent", "ReadCost", "ObjectStorageDevice"]


@dataclass(frozen=True, slots=True)
class Extent:
    """A placed object's location on the device."""

    object_id: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        """First byte past the extent."""
        return self.offset + self.length


@dataclass(frozen=True, slots=True)
class ReadCost:
    """Cost of one batched read.

    ``n_objects`` counts *distinct* objects: a batch that names the same
    object twice touches its extent once (the second read is served from
    the request buffer, not the platter). ``n_seeks`` is a slow-tier
    quantity; fast-tier (flash) reads are seek-free and show up only in
    ``n_fast`` and the latency. On an untiered device every object is a
    slow-tier read (``n_slow == n_objects``).
    """

    n_objects: int
    n_seeks: int
    bytes_read: int
    latency_ns: int
    n_fast: int = 0
    n_slow: int = 0


class ObjectStorageDevice:
    """Linear device with a sequential allocator and a seek cost model.

    With ``fast_capacity > 0`` the device also models a fast tier of at
    most that many objects; :meth:`promote` refuses to overfill it, so a
    tiering policy must :meth:`demote` a victim first.
    """

    def __init__(
        self,
        seek_ns: int = 4_000_000,
        transfer_ns_per_kb: int = 10_000,
        name: str = "osd0",
        fast_capacity: int = 0,
        fast_read_ns: int = 100_000,
        fast_transfer_ns_per_kb: int = 1_000,
    ) -> None:
        if min(seek_ns, transfer_ns_per_kb, fast_read_ns, fast_transfer_ns_per_kb) < 0:
            raise ConfigError("cost constants must be >= 0")
        if fast_capacity < 0:
            raise ConfigError("fast_capacity must be >= 0")
        self.name = name
        self.seek_ns = seek_ns
        self.transfer_ns_per_kb = transfer_ns_per_kb
        self.fast_capacity = fast_capacity
        self.fast_read_ns = fast_read_ns
        self.fast_transfer_ns_per_kb = fast_transfer_ns_per_kb
        self._extents: dict[int, Extent] = {}
        self._fast: set[int] = set()  # membership only — never iterated
        self._cursor = 0
        self.reads = 0
        self.total_seeks = 0
        self.promotions = 0
        self.demotions = 0

    def place(self, object_id: int, length: int) -> Extent:
        """Allocate the next extent for ``object_id`` (slow tier).

        Raises:
            SimulationError: if the object is already placed.
        """
        if object_id in self._extents:
            raise SimulationError(f"object {object_id} already placed")
        if length <= 0:
            raise ConfigError("object length must be positive")
        extent = Extent(object_id=object_id, offset=self._cursor, length=length)
        self._extents[object_id] = extent
        self._cursor += length
        return extent

    def place_group(self, object_ids: list[int], lengths: list[int]) -> list[Extent]:
        """Place a correlated group contiguously, in the given order."""
        if len(object_ids) != len(lengths):
            raise ConfigError("ids and lengths must align")
        return [self.place(oid, ln) for oid, ln in zip(object_ids, lengths)]

    def locate(self, object_id: int) -> Extent:
        """Extent of a placed object.

        Raises:
            KeyError: if the object was never placed.
        """
        return self._extents[object_id]

    def is_placed(self, object_id: int) -> bool:
        """Whether the object has an extent."""
        return object_id in self._extents

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------

    @property
    def fast_count(self) -> int:
        """Objects currently resident in the fast tier."""
        return len(self._fast)

    def in_fast(self, object_id: int) -> bool:
        """Whether the object is resident in the fast tier."""
        return object_id in self._fast

    def promote(self, object_id: int) -> bool:
        """Copy an object into the fast tier; False if already there.

        Raises:
            SimulationError: if the object is unplaced, or the fast tier
                is full (the policy must demote a victim first) or has
                zero capacity.
        """
        if object_id not in self._extents:
            raise SimulationError(f"cannot promote unplaced object {object_id}")
        if object_id in self._fast:
            return False
        if len(self._fast) >= self.fast_capacity:
            raise SimulationError(
                f"fast tier of {self.name} is full "
                f"({len(self._fast)}/{self.fast_capacity}); demote first"
            )
        self._fast.add(object_id)
        self.promotions += 1
        return True

    def demote(self, object_id: int) -> bool:
        """Drop an object back to the slow tier; False if not fast."""
        if object_id not in self._fast:
            return False
        self._fast.discard(object_id)
        self.demotions += 1
        return True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_batch(self, object_ids: list[int]) -> ReadCost:
        """Cost of reading the given objects in one request.

        Duplicate ids are read once (the extent is touched a single
        time; repeats hit the request buffer). Slow-tier extents are
        sorted by offset (as an elevator would) and charged one seek for
        the initial position plus one per gap between consecutive
        extents; fast-tier objects are charged a flat per-object read.
        An empty batch costs nothing.

        Raises:
            SimulationError: if any object was never placed.
        """
        if not object_ids:
            return ReadCost(0, 0, 0, 0)
        unique: dict[int, None] = dict.fromkeys(object_ids)
        fast_extents: list[Extent] = []
        slow_extents: list[Extent] = []
        for oid in unique:
            extent = self._extents.get(oid)
            if extent is None:
                raise SimulationError(f"cannot read unplaced object {oid}")
            (fast_extents if oid in self._fast else slow_extents).append(extent)
        seeks = 0
        slow_bytes = 0
        if slow_extents:
            slow_extents.sort(key=lambda e: e.offset)
            seeks = 1
            slow_bytes = slow_extents[0].length
            for prev, cur in zip(slow_extents, slow_extents[1:]):
                if cur.offset != prev.end:
                    seeks += 1
                slow_bytes += cur.length
        fast_bytes = sum(e.length for e in fast_extents)
        latency = (
            seeks * self.seek_ns
            + (slow_bytes // 1024) * self.transfer_ns_per_kb
            + len(fast_extents) * self.fast_read_ns
            + (fast_bytes // 1024) * self.fast_transfer_ns_per_kb
        )
        self.reads += 1
        self.total_seeks += seeks
        return ReadCost(
            n_objects=len(unique),
            n_seeks=seeks,
            bytes_read=slow_bytes + fast_bytes,
            latency_ns=latency,
            n_fast=len(fast_extents),
            n_slow=len(slow_extents),
        )

    def __len__(self) -> int:
        return len(self._extents)
