"""Prefetch engines: the policy layer between miners and the MDS.

A prefetch engine sees every completed demand request and proposes
metadata to load speculatively. Three policies reproduce the paper's
three systems:

* :class:`FarmerPrefetcher` — FPA (§4.1): the head of the requested
  file's Correlator List, already filtered by ``max_strength``;
* :class:`PredictorPrefetcher` — adapter for any
  :class:`~repro.baselines.base.Predictor` (used for Nexus and the other
  baselines), with a fixed aggressive group size and no filtering;
* :class:`NoPrefetcher` — the LRU comparator.

``overhead_ns`` is the per-request mining cost charged to the server, so
FARMER's "reasonable overhead" is part of the measured response times
rather than assumed away.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.baselines.base import Predictor
from repro.core.farmer import Farmer
from repro.traces.record import TraceRecord

__all__ = [
    "PrefetchEngine",
    "NoPrefetcher",
    "FarmerPrefetcher",
    "PredictorPrefetcher",
]


@runtime_checkable
class PrefetchEngine(Protocol):
    """Structural protocol the MDS drives."""

    overhead_ns: int

    def observe(self, record: TraceRecord) -> None:
        """Learn from one completed demand request."""
        ...  # pragma: no cover - protocol stub

    def candidates(self, record: TraceRecord) -> list[int]:
        """Fids to prefetch after this request."""
        ...  # pragma: no cover - protocol stub

    def memory_bytes(self) -> int:
        """Additional memory the engine consumes (Table 4)."""
        ...  # pragma: no cover - protocol stub


class NoPrefetcher:
    """No mining, no prefetching: plain LRU behaviour."""

    overhead_ns = 0

    def observe(self, record: TraceRecord) -> None:
        """Nothing to learn."""

    def candidates(self, record: TraceRecord) -> list[int]:
        """Never proposes anything."""
        return []

    def memory_bytes(self) -> int:
        """Zero additional memory."""
        return 0


class FarmerPrefetcher:
    """FPA: FARMER-driven, threshold-filtered prefetching."""

    def __init__(self, farmer: Farmer, overhead_ns: int = 8_000) -> None:
        self.farmer = farmer
        self.overhead_ns = overhead_ns

    def observe(self, record: TraceRecord) -> None:
        """Run the four FARMER stages on the request."""
        self.farmer.observe(record)

    def candidates(self, record: TraceRecord) -> list[int]:
        """Head of the Correlator List (already above ``max_strength``)."""
        return self.farmer.predict(record.fid)

    def memory_bytes(self) -> int:
        """FARMER's mining-state footprint."""
        return self.farmer.memory_bytes()


class PredictorPrefetcher:
    """Adapter running any baseline predictor as the prefetch policy."""

    def __init__(
        self, predictor: Predictor, k: int = 4, overhead_ns: int = 5_000
    ) -> None:
        if k < 0:
            raise ValueError("k must be >= 0")
        self.predictor = predictor
        self.k = k
        self.overhead_ns = overhead_ns

    def observe(self, record: TraceRecord) -> None:
        """Feed the underlying predictor."""
        self.predictor.observe(record)

    def candidates(self, record: TraceRecord) -> list[int]:
        """Top-k predictions, unfiltered (aggressive policy)."""
        return self.predictor.predict(record.fid, self.k)

    def memory_bytes(self) -> int:
        """Footprint if the predictor reports one, else 0."""
        reporter = getattr(self.predictor, "approx_bytes", None)
        return int(reporter()) if callable(reporter) else 0
