"""Prefetch engines: the policy layer between miners and the MDS.

A prefetch engine sees every completed demand request and proposes
metadata to load speculatively. Three policies reproduce the paper's
three systems:

* :class:`FarmerPrefetcher` — FPA (§4.1): the head of the requested
  file's Correlator List, already filtered by ``max_strength``;
* :class:`PredictorPrefetcher` — adapter for any
  :class:`~repro.baselines.base.Predictor` (used for Nexus and the other
  baselines), with a fixed aggressive group size and no filtering;
* :class:`NoPrefetcher` — the LRU comparator.

:class:`ShardedFarmerPrefetcher` runs the sharded mining service as the
FPA policy; its :meth:`~ShardedFarmerPrefetcher.shard_view` hands each
metadata server a per-shard engine, so an ``n_mds > 1`` cluster pairs
every MDS with its co-located miner shard instead of funnelling all
servers through one global engine.

``overhead_ns`` is the per-request mining cost charged to the server, so
FARMER's "reasonable overhead" is part of the measured response times
rather than assumed away.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.baselines.base import Predictor
from repro.core.farmer import Farmer
from repro.service.sharded import ShardedFarmer
from repro.traces.record import TraceRecord

__all__ = [
    "PrefetchEngine",
    "NoPrefetcher",
    "FarmerPrefetcher",
    "PredictorPrefetcher",
    "ShardedFarmerPrefetcher",
    "MdsShardView",
]


@runtime_checkable
class PrefetchEngine(Protocol):
    """Structural protocol the MDS drives."""

    overhead_ns: int

    def observe(self, record: TraceRecord) -> None:
        """Learn from one completed demand request."""
        ...  # pragma: no cover - protocol stub

    def candidates(self, record: TraceRecord) -> list[int]:
        """Fids to prefetch after this request."""
        ...  # pragma: no cover - protocol stub

    def memory_bytes(self) -> int:
        """Additional memory the engine consumes (Table 4)."""
        ...  # pragma: no cover - protocol stub


class NoPrefetcher:
    """No mining, no prefetching: plain LRU behaviour."""

    overhead_ns = 0

    def observe(self, record: TraceRecord) -> None:
        """Nothing to learn."""

    def candidates(self, record: TraceRecord) -> list[int]:
        """Never proposes anything."""
        return []

    def memory_bytes(self) -> int:
        """Zero additional memory."""
        return 0


class FarmerPrefetcher:
    """FPA: FARMER-driven, threshold-filtered prefetching."""

    def __init__(self, farmer: Farmer, overhead_ns: int = 8_000) -> None:
        self.farmer = farmer
        self.overhead_ns = overhead_ns

    def observe(self, record: TraceRecord) -> None:
        """Run the four FARMER stages on the request."""
        self.farmer.observe(record)

    def candidates(self, record: TraceRecord) -> list[int]:
        """Head of the Correlator List (already above ``max_strength``)."""
        return self.farmer.predict(record.fid)

    def memory_bytes(self) -> int:
        """FARMER's mining-state footprint."""
        return self.farmer.memory_bytes()


class ShardedFarmerPrefetcher:
    """FPA on the sharded mining service.

    As a plain engine it behaves like :class:`FarmerPrefetcher` with the
    routing hidden inside the service. In an ``n_mds > 1`` cluster, the
    wiring calls :meth:`shard_view` to give every MDS its own engine
    view: observations still flow through the service (which keeps the
    global boundary-echo state consistent), but each view filters the
    prefetch candidates down to the fids its own server stores — a
    cross-shard candidate would only be queued locally, miss the local
    KV shard and be dropped, so the view spends its prefetch budget on
    actionable fids only.
    """

    def __init__(self, service: ShardedFarmer, overhead_ns: int = 8_000) -> None:
        self.service = service
        self.overhead_ns = overhead_ns

    def observe(self, record: TraceRecord) -> None:
        """Route the request through the service (owner + boundary echo)."""
        self.service.observe(record)

    def candidates(self, record: TraceRecord) -> list[int]:
        """Owner shard's Correlator-List head for the requested file."""
        return self.service.predict(record.fid)

    def memory_bytes(self) -> int:
        """Whole-service footprint (shared components counted once)."""
        return self.service.memory_bytes()

    def shard_view(self, server_index: int, n_servers: int) -> "MdsShardView":
        """Per-server engine view for MDS ``server_index`` of ``n_servers``."""
        return MdsShardView(self, server_index, n_servers)


class MdsShardView:
    """One metadata server's view of the sharded mining service.

    :meth:`candidates` keeps the drop semantics (local fids only — a
    foreign candidate queued locally could only fizzle against the
    local KV shard). :meth:`partition_candidates` additionally exposes
    the non-local candidates with their owning server, which is what
    the cluster-routed prefetch path forwards to the owner's queue
    instead of dropping (``SimulationConfig.routed_prefetch``).
    """

    __slots__ = ("parent", "server_index", "n_servers", "overhead_ns")

    def __init__(
        self, parent: ShardedFarmerPrefetcher, server_index: int, n_servers: int
    ) -> None:
        if not 0 <= server_index < n_servers:
            raise ValueError("server_index must be in range(n_servers)")
        self.parent = parent
        self.server_index = server_index
        self.n_servers = n_servers
        self.overhead_ns = parent.overhead_ns

    def observe(self, record: TraceRecord) -> None:
        """Feed the service (global echo state lives in one place)."""
        self.parent.service.observe(record)

    def candidates(self, record: TraceRecord) -> list[int]:
        """Service predictions restricted to fids this MDS stores
        (the cluster routes metadata by ``fid % n_mds``)."""
        return self.partition_candidates(record)[0]

    def partition_candidates(
        self, record: TraceRecord
    ) -> tuple[list[int], list[tuple[int, int]]]:
        """Split the service's predictions into ``(local, remote)``.

        ``local`` is exactly what :meth:`candidates` returns; ``remote``
        pairs each non-local candidate with the index of the MDS that
        stores it (strongest-first order is preserved in both, so a
        bounded forward budget spends itself on the best candidates).
        """
        local: list[int] = []
        remote: list[tuple[int, int]] = []
        for fid in self.parent.service.predict(record.fid):
            owner = fid % self.n_servers
            if owner == self.server_index:
                local.append(fid)
            else:
                remote.append((fid, owner))
        return local, remote

    def memory_bytes(self) -> int:
        """This server's share of the service footprint (the whole
        service is reported once by the parent; views split it evenly so
        per-server accounting still sums to the total)."""
        total = self.parent.service.memory_bytes()
        share = total // self.n_servers
        if self.server_index == 0:
            share += total % self.n_servers
        return share


class PredictorPrefetcher:
    """Adapter running any baseline predictor as the prefetch policy."""

    def __init__(
        self, predictor: Predictor, k: int = 4, overhead_ns: int = 5_000
    ) -> None:
        if k < 0:
            raise ValueError("k must be >= 0")
        self.predictor = predictor
        self.k = k
        self.overhead_ns = overhead_ns

    def observe(self, record: TraceRecord) -> None:
        """Feed the underlying predictor."""
        self.predictor.observe(record)

    def candidates(self, record: TraceRecord) -> list[int]:
        """Top-k predictions, unfiltered (aggressive policy)."""
        return self.predictor.predict(record.fid, self.k)

    def memory_bytes(self) -> int:
        """Footprint if the predictor reports one, else 0."""
        reporter = getattr(self.predictor, "approx_bytes", None)
        return int(reporter()) if callable(reporter) else 0
