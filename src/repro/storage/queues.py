"""The MDS dual request queues (paper §4.1).

"A metadata server uses two request queues to guarantee the availability
of service for the demand requests queue that is of higher priority than
the prefetching request queue." — demand requests always pop first;
prefetch requests are served only when no demand is waiting, and their
queue is bounded so a flood of speculative work can never grow without
limit (overflow drops the *newest* prefetch, which is the least likely to
be needed soonest under FARMER's sorted Correlator Lists).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError
from repro.storage.requests import MetadataRequest, RequestKind

__all__ = ["DualRequestQueue"]


class DualRequestQueue:
    """Two-level non-preemptive priority queue."""

    def __init__(self, prefetch_limit: int = 64) -> None:
        if prefetch_limit < 0:
            raise ConfigError("prefetch_limit must be >= 0")
        self.prefetch_limit = prefetch_limit
        self._demand: deque[MetadataRequest] = deque()
        self._prefetch: deque[MetadataRequest] = deque()
        self._queued_fids: set[int] = set()  # fids with a queued prefetch
        self.demand_enqueued = 0
        self.prefetch_enqueued = 0
        self.prefetch_dropped = 0

    def push(self, request: MetadataRequest) -> bool:
        """Enqueue; returns False when a prefetch is dropped on overflow."""
        if request.kind is RequestKind.DEMAND:
            self._demand.append(request)
            self.demand_enqueued += 1
            return True
        if len(self._prefetch) >= self.prefetch_limit:
            self.prefetch_dropped += 1
            return False
        self._prefetch.append(request)
        self._queued_fids.add(request.fid)
        self.prefetch_enqueued += 1
        return True

    def pop(self) -> MetadataRequest | None:
        """Next request to serve: demand first, then prefetch, else None."""
        if self._demand:
            return self._demand.popleft()
        if self._prefetch:
            request = self._prefetch.popleft()
            self._queued_fids.discard(request.fid)
            return request
        return None

    def has_queued_prefetch(self, fid: int) -> bool:
        """True if a prefetch for ``fid`` is already waiting (dedup)."""
        return fid in self._queued_fids

    def __len__(self) -> int:
        return len(self._demand) + len(self._prefetch)

    @property
    def demand_depth(self) -> int:
        """Current demand-queue length."""
        return len(self._demand)

    @property
    def prefetch_depth(self) -> int:
        """Current prefetch-queue length."""
        return len(self._prefetch)
