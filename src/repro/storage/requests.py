"""Request objects flowing through the metadata server."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.traces.record import TraceRecord

__all__ = ["RequestKind", "MetadataRequest"]


class RequestKind(Enum):
    """Demand requests come from clients; prefetch requests from FARMER/Nexus."""

    DEMAND = "demand"
    PREFETCH = "prefetch"


@dataclass(slots=True)
class MetadataRequest:
    """One metadata request and its lifecycle timestamps (ns).

    ``record`` is present on demand requests only (the prefetcher needs
    the semantic attributes); prefetch requests carry just the fid.
    """

    fid: int
    kind: RequestKind
    arrival_ns: int
    record: TraceRecord | None = None
    start_ns: int = -1
    completion_ns: int = -1
    hit: bool = False
    #: pre-access fast-tier residency (None on untiered runs)
    tier_fast: bool | None = None

    @property
    def response_ns(self) -> int:
        """Arrival→completion latency (valid after completion)."""
        return self.completion_ns - self.arrival_ns

    @property
    def wait_ns(self) -> int:
        """Queueing delay before service started."""
        return self.start_ns - self.arrival_ns
