"""Tier-placement policies: who deserves the fast slots of an OSD.

Each metadata server owns one :class:`~repro.storage.osd.
ObjectStorageDevice` with a capacity-bounded fast tier; on every demand
request the server asks its :class:`TieredStore` to record the access,
and the store's :class:`TierPolicy` decides which objects to *promote*
into the fast tier and which resident victims to *demote* under
capacity pressure. Three policies fight the showdown the ``ext_tiering``
experiment runs:

* :class:`LruTierPolicy` — pure temporal locality: promote the accessed
  object, demote the least-recently-touched resident;
* :class:`LfuTierPolicy` — frequency: promote the accessed object,
  demote the resident with the fewest lifetime accesses (ties broken by
  oldest promotion, so the decision is deterministic);
* :class:`CorrelatedTierPolicy` — FARMER-driven: on access, *co-promote*
  the file's top mined correlators alongside it and refresh residents
  the access re-correlates, so cold correlation *clusters* age out
  together while a hot cluster keeps all its members fast. Placement
  hints for correlators owned by another server travel the
  routed-prefetch forwarding seam (:meth:`~repro.storage.mds.
  MetadataServer.accept_placement_hint`).

Policies are deliberately hash-seed-independent: residency bookkeeping
is insertion-ordered (:class:`collections.OrderedDict`), victims are
chosen by explicit scans, and no set is ever iterated — the property
tests replay a cluster under different ``PYTHONHASHSEED`` values and
require bit-identical simulation metrics.

This module is numpy-free by design (pure policy logic over the
numpy-free OSD), so the no-numpy CI leg exercises it directly.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.errors import ConfigError, SimulationError
from repro.storage.osd import ObjectStorageDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.metrics import MetricsCollector

__all__ = [
    "TIER_POLICIES",
    "TierPolicy",
    "LruTierPolicy",
    "LfuTierPolicy",
    "CorrelatedTierPolicy",
    "TieredStore",
    "make_tier_policy",
]

# op verbs a policy emits, applied in order by the store
_PROMOTE = "promote"
_CO_PROMOTE = "co_promote"
_DEMOTE = "demote"


class TierPolicy:
    """Base policy: fast-tier residency bookkeeping plus the op log.

    Subclasses override :meth:`on_access` (and optionally
    :meth:`on_hint`) to return an ordered list of ``(verb, object_id)``
    ops — ``"promote"`` / ``"co_promote"`` / ``"demote"`` — which the
    :class:`TieredStore` applies to the device and the metrics in
    sequence. Ops must be *sequentially valid*: a victim is demoted
    before the admission that displaces it, so the device's capacity
    bound holds at every intermediate step (the shared :meth:`_admit`
    helper guarantees this).
    """

    name = "base"
    #: whether :meth:`on_access` wants the mined correlator candidates
    uses_correlates = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError("tier capacity must be >= 1")
        self.capacity = capacity
        self._resident: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident(self) -> list[int]:
        """Fast-tier residents, oldest-touched first (diagnostics)."""
        return list(self._resident)

    def on_access(
        self, object_id: int, correlates: Sequence[int] = ()
    ) -> list[tuple[str, int]]:
        """Ops for one demand access (subclasses implement)."""
        raise NotImplementedError

    def on_hint(self, object_id: int) -> list[tuple[str, int]]:
        """Ops for a forwarded placement hint (default: ignore)."""
        return []

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _admit(
        self, object_id: int, ops: list[tuple[str, int]], verb: str = _PROMOTE
    ) -> None:
        """Refresh a resident or admit a newcomer (recency semantics),
        demoting the oldest-touched residents first when at capacity so
        the op sequence never overfills the device."""
        if object_id in self._resident:
            self._resident.move_to_end(object_id)
            return
        while len(self._resident) >= self.capacity:
            victim, _ = self._resident.popitem(last=False)
            ops.append((_DEMOTE, victim))
        self._resident[object_id] = None
        ops.append((verb, object_id))


class LruTierPolicy(TierPolicy):
    """Recency baseline: the fast tier is the last-touched objects."""

    name = "lru"

    def on_access(
        self, object_id: int, correlates: Sequence[int] = ()
    ) -> list[tuple[str, int]]:
        """Promote/refresh the accessed object; demote the oldest."""
        ops: list[tuple[str, int]] = []
        self._admit(object_id, ops)
        return ops


class LfuTierPolicy(TierPolicy):
    """Frequency baseline: residents with the fewest accesses go first.

    Access counts are global (an object keeps its count across
    demotions, as a frequency sketch would); the victim scan is over
    residents in promotion order, so equal counts demote the
    longest-resident object — a deterministic tie-break.
    """

    name = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq: dict[int, int] = {}

    def frequency(self, object_id: int) -> int:
        """Lifetime access count of an object (0 if never accessed)."""
        return self._freq.get(object_id, 0)

    def on_access(
        self, object_id: int, correlates: Sequence[int] = ()
    ) -> list[tuple[str, int]]:
        """Count the access; promote if absent, first demoting the
        min-freq resident (evict-before-admit keeps the device's
        capacity bound intact at every op, and means a cold newcomer
        can never be its own admission's victim)."""
        self._freq[object_id] = self._freq.get(object_id, 0) + 1
        if object_id in self._resident:
            return []
        ops: list[tuple[str, int]] = []
        while len(self._resident) >= self.capacity:
            victim = None
            victim_freq = None
            for oid in self._resident:
                freq = self._freq.get(oid, 0)
                if victim_freq is None or freq < victim_freq:
                    victim, victim_freq = oid, freq
            del self._resident[victim]
            ops.append((_DEMOTE, victim))
        self._resident[object_id] = None
        ops.append((_PROMOTE, object_id))
        return ops


class CorrelatedTierPolicy(TierPolicy):
    """FARMER-driven placement: accesses promote their correlators too.

    On access the object *and* the head of its mined Correlator List
    (``correlates[:k]``) are promoted or recency-refreshed; eviction is
    oldest-touch, so an untouched correlation cluster cools down and
    ages out as a unit while every member of a hot cluster stays fast
    even if only one of them is being re-accessed. ``source`` overrides
    the mined candidates with an external lookup (the planted-truth
    *oracle* of the workload scenarios uses this to bound how much
    fast-hit ratio perfect correlation knowledge could buy).
    """

    name = "correlated"
    uses_correlates = True

    def __init__(
        self,
        capacity: int,
        k: int = 4,
        source: Callable[[int], Sequence[int]] | None = None,
    ) -> None:
        super().__init__(capacity)
        if k < 0:
            raise ConfigError("co-promotion k must be >= 0")
        self.k = k
        self.source = source

    def on_access(
        self, object_id: int, correlates: Sequence[int] = ()
    ) -> list[tuple[str, int]]:
        """Promote/refresh the object, co-promote its correlators;
        each admission demotes the oldest-touched resident first."""
        ops: list[tuple[str, int]] = []
        self._admit(object_id, ops)
        for candidate in list(correlates)[: self.k]:
            if candidate != object_id:
                self._admit(candidate, ops, verb=_CO_PROMOTE)
        return ops

    def on_hint(self, object_id: int) -> list[tuple[str, int]]:
        """A peer's placement hint co-promotes like a local correlator."""
        ops: list[tuple[str, int]] = []
        self._admit(object_id, ops, verb=_CO_PROMOTE)
        return ops


TIER_POLICIES: dict[str, type[TierPolicy]] = {
    "lru": LruTierPolicy,
    "lfu": LfuTierPolicy,
    "correlated": CorrelatedTierPolicy,
}


def make_tier_policy(name: str, capacity: int, k: int = 4) -> TierPolicy:
    """Construct a registered policy by name.

    Raises:
        ConfigError: for unknown policy names.
    """
    cls = TIER_POLICIES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown tier policy {name!r}; expected one of "
            f"{', '.join(sorted(TIER_POLICIES))}"
        )
    if cls is CorrelatedTierPolicy:
        return CorrelatedTierPolicy(capacity, k=k)
    return cls(capacity)


class TieredStore:
    """One metadata server's tiered object store: device + policy + metrics.

    The store is the only writer of both the policy's residency
    bookkeeping and the device's fast set, so the two can never drift;
    ``check_consistent`` asserts it. Accesses are recorded against the
    *pre-access* tier (you can't be sped up by a promotion your own
    access triggered), which makes the fast-hit ratio a pure measure of
    placement foresight.
    """

    def __init__(
        self,
        device: ObjectStorageDevice,
        policy: TierPolicy,
        metrics: "MetricsCollector",
    ) -> None:
        if device.fast_capacity != policy.capacity:
            raise ConfigError(
                f"device fast_capacity {device.fast_capacity} != policy "
                f"capacity {policy.capacity}"
            )
        self.device = device
        self.policy = policy
        self.metrics = metrics

    def place(self, object_id: int, length: int) -> None:
        """Preload one object onto the slow tier."""
        self.device.place(object_id, max(1, length))

    def is_placed(self, object_id: int) -> bool:
        """Whether this server stores the object at all."""
        return self.device.is_placed(object_id)

    def peek_fast(self, object_id: int) -> bool:
        """Non-mutating tier probe (the latency charge reads this)."""
        return self.device.in_fast(object_id)

    def candidates_for(self, object_id: int, mined: Sequence[int]) -> list[int]:
        """Co-promotion candidates: the policy's ``source`` override
        (the oracle) when present, else the mined candidates the server
        passed in."""
        source = getattr(self.policy, "source", None)
        if source is not None:
            return list(source(object_id))
        return list(mined)

    def access(
        self,
        object_id: int,
        correlates: Sequence[int] = (),
        was_fast: bool | None = None,
    ) -> bool:
        """Record one demand access; returns the pre-access residency.

        ``was_fast`` lets the server pass the residency it peeked when
        it charged the read latency, so the reported fast-hit ratio is
        exactly the tier that was billed; by default the current
        residency is used. Candidates not stored on this device
        (another server's fids) are dropped here — the server forwards
        those as placement hints to their owners instead.
        """
        if was_fast is None:
            was_fast = self.device.in_fast(object_id)
        self.metrics.record_tier_access(was_fast)
        local = [
            c
            for c in correlates
            if c != object_id and self.device.is_placed(c)
        ]
        self._apply(self.policy.on_access(object_id, local))
        return was_fast

    def hint(self, object_id: int) -> bool:
        """Apply a forwarded placement hint; False if the object isn't
        stored here (a stale route) or the policy ignores hints."""
        if not self.device.is_placed(object_id):
            return False
        before = self.device.fast_count
        self._apply(self.policy.on_hint(object_id))
        return self.device.fast_count >= before

    def _apply(self, ops: Sequence[tuple[str, int]]) -> None:
        for verb, oid in ops:
            if verb == _DEMOTE:
                self.device.demote(oid)
                self.metrics.tier_demotions += 1
            elif verb == _PROMOTE:
                self.device.promote(oid)
                self.metrics.tier_promotions += 1
            elif verb == _CO_PROMOTE:
                self.device.promote(oid)
                self.metrics.tier_promotions += 1
                self.metrics.tier_co_promotions += 1
            else:  # pragma: no cover - policy bug guard
                raise SimulationError(f"unknown tier op {verb!r}")

    def check_consistent(self) -> None:
        """Assert policy residency == device fast set (test hook).

        Raises:
            SimulationError: on any drift between the two.
        """
        resident = self.policy.resident()
        if len(resident) != self.device.fast_count:
            raise SimulationError("policy/device fast-set size drift")
        for oid in resident:
            if not self.device.in_fast(oid):
                raise SimulationError(f"policy resident {oid} not fast on device")
        if self.device.fast_count > self.policy.capacity:
            raise SimulationError("fast tier over capacity")
