"""Trace substrate: the record schema, serialisation, statistics,
attribute filtering and the synthetic workload generators.

Everything above this layer (the miner, the baselines, the simulator)
consumes ``TraceRecord`` streams, so real traces can be substituted for
the synthetic ones by parsing them into this schema via
:mod:`repro.traces.io`.
"""

from repro.traces.filters import iter_substreams, partition_key, split_by_attributes
from repro.traces.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.traces.record import (
    ATTRIBUTE_NAMES,
    TraceRecord,
    attribute_tuple,
    attribute_value,
)
from repro.traces.stats import (
    TraceSummary,
    filtered_predictability,
    successor_counts,
    successor_predictability,
    summarize_trace,
)
# The synthetic workload generators are numpy-backed; they are
# re-exported lazily (PEP 562) so the mining core — which only consumes
# TraceRecord streams — stays importable on a numpy-free interpreter
# (the no-numpy CI leg pins this).
_SYNTHETIC_NAMES = ("TRACE_NAMES", "Workload", "generate_trace", "make_workload")


def __getattr__(name: str):
    if name in _SYNTHETIC_NAMES:
        from repro.traces import synthetic

        return getattr(synthetic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "TraceRecord",
    "ATTRIBUTE_NAMES",
    "attribute_value",
    "attribute_tuple",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "partition_key",
    "split_by_attributes",
    "iter_substreams",
    "successor_counts",
    "successor_predictability",
    "filtered_predictability",
    "TraceSummary",
    "summarize_trace",
    "TRACE_NAMES",
    "Workload",
    "generate_trace",
    "make_workload",
]
