"""Attribute-based stream filtering (the paper's §2.2 methodology).

The statistical-evidence experiment (Figure 1) splits a trace into
sub-streams that agree on one or more semantic attributes — all requests
by the same pid, the same uid, the same directory, … — and measures how
predictable file successions become *within* each sub-stream. These
helpers perform that partitioning.

For the ``path`` attribute the partition key is the *parent directory*
(requests touching files in the same directory belong together); using the
full path would put every file in its own stream and make succession
trivially empty.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from typing import Any

from repro.traces.record import TraceRecord, attribute_value

__all__ = ["partition_key", "split_by_attributes", "iter_substreams"]


def _dirname(path: str | None) -> str | None:
    if path is None:
        return None
    idx = path.rfind("/")
    if idx <= 0:
        return "/"
    return path[:idx]


def partition_key(record: TraceRecord, attrs: Sequence[str]) -> tuple[Any, ...]:
    """Partitioning key of ``record`` for the given attribute combination.

    ``path`` maps to the parent directory; every other attribute maps to
    its raw value. An empty ``attrs`` yields the constant key ``()`` —
    i.e. the unfiltered stream, the paper's "none" case.
    """
    key = []
    for name in attrs:
        if name == "path":
            key.append(_dirname(record.path))
        else:
            key.append(attribute_value(record, name))
    return tuple(key)


def split_by_attributes(
    records: Iterable[TraceRecord], attrs: Sequence[str]
) -> dict[tuple[Any, ...], list[TraceRecord]]:
    """Partition a trace into attribute-agreeing sub-streams.

    Relative order inside each sub-stream is preserved (it is the
    projection of the global order), which is what makes within-stream
    successor statistics meaningful.
    """
    streams: dict[tuple[Any, ...], list[TraceRecord]] = defaultdict(list)
    for record in records:
        streams[partition_key(record, attrs)].append(record)
    return dict(streams)


def iter_substreams(
    records: Iterable[TraceRecord], attrs: Sequence[str], min_length: int = 2
) -> Iterable[list[TraceRecord]]:
    """Yield each attribute-filtered sub-stream with at least ``min_length``
    records (shorter streams carry no succession information)."""
    for stream in split_by_attributes(records, attrs).values():
        if len(stream) >= min_length:
            yield stream
