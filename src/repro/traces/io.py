"""Trace serialisation: CSV and JSON-lines readers/writers.

The synthetic generators produce records in memory, but a real deployment
mines multi-gigabyte trace files, so the library ships streaming parsers.
Both formats round-trip exactly (including ``path=None``); the readers are
generators so arbitrarily large traces can be mined without loading them.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import TraceFormatError
from repro.traces.record import TraceRecord

__all__ = [
    "CSV_COLUMNS",
    "write_csv",
    "read_csv",
    "write_jsonl",
    "read_jsonl",
    "record_to_dict",
    "record_from_dict",
]

CSV_COLUMNS = ("ts", "fid", "uid", "pid", "host", "path", "op", "size", "dev")


def record_to_dict(record: TraceRecord) -> dict:
    """Plain-dict view of a record (JSON-safe; path may be null)."""
    return {
        "ts": record.ts,
        "fid": record.fid,
        "uid": record.uid,
        "pid": record.pid,
        "host": record.host,
        "path": record.path,
        "op": record.op,
        "size": record.size,
        "dev": record.dev,
    }


def record_from_dict(data: dict, line: int | None = None) -> TraceRecord:
    """Parse a dict (e.g. one JSONL object) into a record.

    Raises:
        TraceFormatError: on missing keys or un-coercible values.
    """
    try:
        return TraceRecord(
            ts=int(data["ts"]),
            fid=int(data["fid"]),
            uid=int(data["uid"]),
            pid=int(data["pid"]),
            host=int(data["host"]),
            path=data.get("path") or None,
            op=str(data.get("op", "open")),
            size=int(data.get("size", 0)),
            dev=int(data.get("dev", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad trace record: {exc!r}", line) from exc


def write_csv(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records as CSV with a header row; returns the record count."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_COLUMNS)
        for r in records:
            writer.writerow(
                (r.ts, r.fid, r.uid, r.pid, r.host, r.path or "", r.op, r.size, r.dev)
            )
            count += 1
    return count


def read_csv(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from a CSV trace written by :func:`write_csv`.

    Raises:
        TraceFormatError: if the header or any row is malformed.
    """
    with open(path, "r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            return
        if tuple(header) != CSV_COLUMNS:
            raise TraceFormatError(f"unexpected CSV header {header!r}", 1)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(CSV_COLUMNS):
                raise TraceFormatError(
                    f"expected {len(CSV_COLUMNS)} fields, got {len(row)}", lineno
                )
            try:
                yield TraceRecord(
                    ts=int(row[0]),
                    fid=int(row[1]),
                    uid=int(row[2]),
                    pid=int(row[3]),
                    host=int(row[4]),
                    path=row[5] or None,
                    op=row[6],
                    size=int(row[7]),
                    dev=int(row[8]),
                )
            except ValueError as exc:
                raise TraceFormatError(f"bad field: {exc}", lineno) from exc


def write_jsonl(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records as JSON lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for r in records:
            fh.write(json.dumps(record_to_dict(r), separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from a JSONL trace written by :func:`write_jsonl`."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"invalid JSON: {exc}", lineno) from exc
            yield record_from_dict(data, lineno)


def dumps_csv(records: Iterable[TraceRecord]) -> str:
    """In-memory CSV serialisation (testing / small traces)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(CSV_COLUMNS)
    for r in records:
        writer.writerow(
            (r.ts, r.fid, r.uid, r.pid, r.host, r.path or "", r.op, r.size, r.dev)
        )
    return buf.getvalue()
