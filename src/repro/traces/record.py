"""The trace record schema shared by generators, miners and the simulator.

A :class:`TraceRecord` carries exactly the information the paper's
Extracting stage consumes: a timestamp, the file identity (numeric id
plus, when the trace format provides it, a full path), and the semantic
attributes of the request (user, process, host, device). The LLNL and HP
traces carry full path information; the INS and RES traces identify files
only by ``(fid, dev)`` — the reproduction preserves that asymmetry because
it is the paper's explanation for FARMER's smaller win on INS/RES.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "TraceRecord",
    "ATTRIBUTE_NAMES",
    "attribute_value",
    "attribute_tuple",
    "records_equal_ignoring_time",
]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One file-system request event.

    Attributes:
        ts: event time in integer nanoseconds since trace start.
        fid: stable numeric file id (unique per file per trace).
        uid: numeric user id of the requester.
        pid: numeric process id of the requester.
        host: numeric host id the request originated from.
        path: full file path, or ``None`` for path-less traces (INS/RES).
        op: operation mnemonic (``open``/``read``/``write``/``stat``/``close``).
        size: bytes transferred (0 for metadata-only ops).
        dev: numeric device id (meaningful for INS/RES).
    """

    ts: int
    fid: int
    uid: int
    pid: int
    host: int
    path: str | None = None
    op: str = "open"
    size: int = 0
    dev: int = 0

    def with_ts(self, ts: int) -> "TraceRecord":
        """Copy of this record at a different timestamp."""
        return replace(self, ts=ts)


# Semantic attribute registry. "file" exposes the fid itself as an
# attribute (the File ID rows of the paper's Table 5 for INS/RES);
# "path" is None-able and the extractor skips absent attributes.
_GETTERS: dict[str, Callable[[TraceRecord], Any]] = {
    "user": lambda r: r.uid,
    "process": lambda r: r.pid,
    "host": lambda r: r.host,
    "path": lambda r: r.path,
    "file": lambda r: r.fid,
    "dev": lambda r: r.dev,
}

ATTRIBUTE_NAMES: tuple[str, ...] = tuple(_GETTERS)


def attribute_value(record: TraceRecord, name: str) -> Any:
    """Value of semantic attribute ``name`` on ``record``.

    Raises:
        KeyError: for an unknown attribute name (the valid names are in
            :data:`ATTRIBUTE_NAMES`).
    """
    return _GETTERS[name](record)


def attribute_getter(name: str) -> Callable[["TraceRecord"], Any]:
    """The accessor for attribute ``name`` — resolve once, call per
    record (the per-record name lookup of :func:`attribute_value` is
    measurable on the ingest hot path).

    Raises:
        KeyError: for an unknown attribute name.
    """
    return _GETTERS[name]


def attribute_tuple(record: TraceRecord, names: Iterable[str]) -> tuple[Any, ...]:
    """Tuple of attribute values, used as a stream-partitioning key."""
    return tuple(_GETTERS[name](record) for name in names)


def records_equal_ignoring_time(a: TraceRecord, b: TraceRecord) -> bool:
    """Structural equality modulo the timestamp (round-trip test helper)."""
    return replace(a, ts=0) == replace(b, ts=0)
