"""Trace statistics: successor probabilities and summary descriptors.

The key measurement is the paper's *inter-file access probability*
(§2.2): for a file A with successors, the probability that the next
access after A goes to A's most likely successor. Averaged over files
(weighted by how often each file is followed at all), this quantifies how
predictable the stream is — and comparing the unfiltered stream against
attribute-filtered sub-streams reproduces Figure 1.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.traces.filters import iter_substreams
from repro.traces.record import TraceRecord

__all__ = [
    "successor_counts",
    "successor_predictability",
    "filtered_predictability",
    "TraceSummary",
    "summarize_trace",
]


def successor_counts(
    records: Sequence[TraceRecord], window: int = 1
) -> dict[int, Counter]:
    """Count successor occurrences per file.

    ``window`` is the look-ahead distance: with ``window=1`` only the
    immediately following access counts as a successor; larger windows
    credit every file within that many positions (used by the
    Probability-Graph and Nexus baselines).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    counts: dict[int, Counter] = defaultdict(Counter)
    n = len(records)
    for i in range(n - 1):
        fid = records[i].fid
        limit = min(n, i + 1 + window)
        for j in range(i + 1, limit):
            succ = records[j].fid
            if succ != fid:
                counts[fid][succ] += 1
    return dict(counts)


def successor_predictability(records: Sequence[TraceRecord]) -> float:
    """Probability that the next access matches the file's modal successor.

    This is the paper's inter-file access probability: per file A,
    ``max_B N_AB / N_A`` with ``N_A`` the number of times A was followed
    by anything; averaged across files weighted by ``N_A``. Returns NaN
    for streams with no successions.
    """
    counts = successor_counts(records, window=1)
    hits = 0.0
    total = 0
    for succ_counter in counts.values():
        n_a = sum(succ_counter.values())
        if n_a == 0:
            continue
        hits += max(succ_counter.values())
        total += n_a
    if total == 0:
        return float("nan")
    return hits / total


def filtered_predictability(
    records: Sequence[TraceRecord], attrs: Sequence[str]
) -> float:
    """Successor predictability after filtering by an attribute combination.

    The trace is partitioned into attribute-agreeing sub-streams
    (:mod:`repro.traces.filters`) and the modal-successor probability is
    computed within each, aggregated weighted by the number of
    successions each sub-stream contributes. Passing ``attrs=()``
    computes the unfiltered ("none") probability.
    """
    hits = 0.0
    total = 0
    for stream in iter_substreams(records, attrs):
        counts = successor_counts(stream, window=1)
        for succ_counter in counts.values():
            n_a = sum(succ_counter.values())
            if n_a == 0:
                continue
            hits += max(succ_counter.values())
            total += n_a
    if total == 0:
        return float("nan")
    return hits / total


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Descriptive statistics of a trace (README/EXPERIMENTS reporting)."""

    n_events: int
    n_files: int
    n_users: int
    n_processes: int
    n_hosts: int
    n_directories: int
    has_paths: bool
    duration_ns: int
    mean_interarrival_ns: float

    def rows(self) -> list[tuple[str, str]]:
        """Key/value rows for table rendering."""
        return [
            ("events", str(self.n_events)),
            ("files", str(self.n_files)),
            ("users", str(self.n_users)),
            ("processes", str(self.n_processes)),
            ("hosts", str(self.n_hosts)),
            ("directories", str(self.n_directories)),
            ("has paths", str(self.has_paths)),
            ("duration (ms)", f"{self.duration_ns / 1e6:.3f}"),
            ("mean interarrival (us)", f"{self.mean_interarrival_ns / 1e3:.3f}"),
        ]


def summarize_trace(records: Sequence[TraceRecord]) -> TraceSummary:
    """Compute a :class:`TraceSummary` over an in-memory trace."""
    files: set[int] = set()
    users: set[int] = set()
    procs: set[int] = set()
    hosts: set[int] = set()
    dirs: set[str] = set()
    has_paths = False
    for r in records:
        files.add(r.fid)
        users.add(r.uid)
        procs.add(r.pid)
        hosts.add(r.host)
        if r.path is not None:
            has_paths = True
            idx = r.path.rfind("/")
            dirs.add(r.path[:idx] if idx > 0 else "/")
    n = len(records)
    duration = records[-1].ts - records[0].ts if n >= 2 else 0
    mean_inter = duration / (n - 1) if n >= 2 else float("nan")
    return TraceSummary(
        n_events=n,
        n_files=len(files),
        n_users=len(users),
        n_processes=len(procs),
        n_hosts=len(hosts),
        n_directories=len(dirs),
        has_paths=has_paths,
        duration_ns=duration,
        mean_interarrival_ns=mean_inter,
    )
