"""Synthetic workload generators standing in for the paper's traces.

The paper evaluates on four proprietary traces (LLNL, INS, RES, HP); this
subpackage generates statistically comparable streams — see DESIGN.md §2
for the substitution argument.
"""

from repro.traces.synthetic.namespace import Namespace, SyntheticFile
from repro.traces.synthetic.profiles import (
    TRACE_NAMES,
    Workload,
    generate_trace,
    make_workload,
)
from repro.traces.synthetic.programs import (
    ProgramSpec,
    build_program,
    generate_run_sequence,
)
from repro.traces.synthetic.workload import (
    EngineParams,
    RunPlan,
    TraceEngine,
    zipf_weights,
)

__all__ = [
    "Namespace",
    "SyntheticFile",
    "TRACE_NAMES",
    "Workload",
    "generate_trace",
    "make_workload",
    "ProgramSpec",
    "build_program",
    "generate_run_sequence",
    "EngineParams",
    "RunPlan",
    "TraceEngine",
    "zipf_weights",
]
