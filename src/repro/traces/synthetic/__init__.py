"""Synthetic workload generators standing in for the paper's traces.

The paper evaluates on four proprietary traces (LLNL, INS, RES, HP); this
subpackage generates statistically comparable streams — see DESIGN.md §2
for the substitution argument.

The namespace, program model and interleaving engine are numpy-free (the
scenario suite in :mod:`repro.workloads` drives them with a pure-python
PRNG on the no-numpy CI leg); only the four paper profiles draw from
``numpy.random``, so their names are re-exported lazily (PEP 562).
"""

from repro.traces.synthetic.namespace import Namespace, SyntheticFile
from repro.traces.synthetic.programs import (
    ProgramSpec,
    build_program,
    generate_run_sequence,
    planted_pairs,
)
from repro.traces.synthetic.workload import (
    EngineParams,
    RunPlan,
    TraceEngine,
    zipf_weights,
)

_PROFILE_NAMES = ("TRACE_NAMES", "Workload", "generate_trace", "make_workload")


def __getattr__(name: str):
    """Lazily resolve the numpy-backed profile builders (PEP 562)."""
    if name in _PROFILE_NAMES:
        from repro.traces.synthetic import profiles

        return getattr(profiles, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Namespace",
    "SyntheticFile",
    "TRACE_NAMES",
    "Workload",
    "generate_trace",
    "make_workload",
    "ProgramSpec",
    "build_program",
    "generate_run_sequence",
    "planted_pairs",
    "EngineParams",
    "RunPlan",
    "TraceEngine",
    "zipf_weights",
]
