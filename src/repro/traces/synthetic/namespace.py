"""Synthetic file-system namespace: directories, files and ids.

The namespace assigns every created file a stable ``fid`` and (optionally)
a full path. Generators build per-user home trees, shared system trees
(``/usr/bin``, ``/usr/lib``), project directories and scratch areas, so
the directory attribute carries the same kind of signal the paper's HP
trace exposes: files that belong together usually live together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SyntheticFile", "Namespace"]


@dataclass(frozen=True, slots=True)
class SyntheticFile:
    """A file in the synthetic namespace."""

    fid: int
    path: str
    dev: int = 0
    size: int = 0
    read_only: bool = False


@dataclass
class Namespace:
    """Grows a file tree and hands out dense fids.

    Paths are plain strings (always ``/``-separated, absolute). The
    namespace never deletes — traces reference files by fid and the
    experiments only need creation.
    """

    _files: list[SyntheticFile] = field(default_factory=list)
    _by_path: dict[str, int] = field(default_factory=dict)

    def create(
        self,
        directory: str,
        name: str,
        dev: int = 0,
        size: int = 0,
        read_only: bool = False,
    ) -> SyntheticFile:
        """Create (or return the existing) file ``directory``/``name``."""
        directory = directory.rstrip("/") or ""
        path = f"{directory}/{name}"
        existing = self._by_path.get(path)
        if existing is not None:
            return self._files[existing]
        fid = len(self._files)
        f = SyntheticFile(fid=fid, path=path, dev=dev, size=size, read_only=read_only)
        self._files.append(f)
        self._by_path[path] = fid
        return f

    def create_many(
        self,
        directory: str,
        names: list[str],
        dev: int = 0,
        size: int = 0,
        read_only: bool = False,
    ) -> list[SyntheticFile]:
        """Create a batch of files in one directory."""
        return [
            self.create(directory, name, dev=dev, size=size, read_only=read_only)
            for name in names
        ]

    def by_fid(self, fid: int) -> SyntheticFile:
        """Look up a file by id."""
        return self._files[fid]

    def by_path(self, path: str) -> SyntheticFile:
        """Look up a file by its full path.

        Raises:
            KeyError: if no file with that path exists.
        """
        return self._files[self._by_path[path]]

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._by_path

    def files(self) -> list[SyntheticFile]:
        """All files in fid order (a copy)."""
        return list(self._files)

    def directories(self) -> set[str]:
        """The set of parent directories present in the namespace."""
        out = set()
        for f in self._files:
            idx = f.path.rfind("/")
            out.add(f.path[:idx] if idx > 0 else "/")
        return out
