"""The four workload profiles standing in for the paper's traces.

Each builder constructs a file namespace, a program population and a
:class:`~repro.traces.synthetic.workload.RunFactory` whose statistics
mirror the environment the paper describes:

* ``llnl`` — parallel scientific applications on a large cluster: a job
  fans out over many ranks/hosts that share input files and write
  per-rank checkpoints; extreme interleaving, little cross-job reuse.
* ``ins`` — instructional HP-UX pool: many students on lab machines all
  running the same small set of course programs over shared course
  material; very high reuse. Records carry no path (``fid``+``dev`` only).
* ``res`` — research desktops: few machines, every user with a private,
  diverse working set; low reuse. No path information either.
* ``hp`` — a time-sharing server: hundreds of users on a handful of
  hosts, a mix of shared system tools and private project trees; full
  path information is available (this is why the paper's HP results show
  the largest FARMER advantage).

Absolute scales are reduced relative to the 2008 originals so experiments
run in seconds; the knobs that drive the paper's *relative* findings
(concurrency, noise, sharing, path availability) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.traces.record import TraceRecord
from repro.traces.synthetic.namespace import Namespace, SyntheticFile
from repro.traces.synthetic.programs import ProgramSpec, build_program, generate_run_sequence
from repro.traces.synthetic.workload import (
    EngineParams,
    RunPlan,
    TraceEngine,
    zipf_weights,
)
from repro.utils.rng import derive_rng

__all__ = [
    "TRACE_NAMES",
    "Workload",
    "make_workload",
    "generate_trace",
    "NoiseKnobs",
    "PoolFactory",
    "ParallelJobFactory",
]

TRACE_NAMES: tuple[str, ...] = ("llnl", "ins", "res", "hp")


@dataclass(frozen=True, slots=True)
class NoiseKnobs:
    """Per-profile sequence-perturbation intensities."""

    order_noise: float = 0.1
    revisit_rate: float = 0.05
    truncate: float = 0.1
    subset: float = 1.0
    head_bias: float = 0.0


class PoolFactory:
    """Runs drawn from a pool of programs with Zipf popularity.

    Programs are either *shared* (any user may run them — course tools,
    system binaries) or *private* (bound to an owning uid). Users are
    picked with their own Zipf activity skew; each user is pinned to a
    small fixed host set.

    ``borrow_rate`` models collaboration: with that probability a run
    also reads a few consecutive files from *another* program's group
    (a colleague's sources, a shared dataset). Borrowed files accumulate
    both contexts in their semantic vectors, which is precisely the
    multi-user ambiguity the paper says defeats naive predictors — and
    which FARMER's frequency term + validity threshold filters out.
    """

    def __init__(
        self,
        namespace: Namespace,
        entries: list[tuple[ProgramSpec, int | None]],
        user_hosts: dict[int, list[int]],
        noise: NoiseKnobs,
        program_zipf_s: float = 1.0,
        user_zipf_s: float = 0.8,
        borrow_rate: float = 0.0,
    ) -> None:
        if not entries:
            raise ConfigError("PoolFactory needs at least one program")
        if not 0.0 <= borrow_rate < 1.0:
            raise ConfigError("borrow_rate must be in [0, 1)")
        self.namespace = namespace
        self._entries = entries
        self._user_hosts = user_hosts
        self._users = sorted(user_hosts)
        self._noise = noise
        self._borrow_rate = borrow_rate
        self._program_weights = zipf_weights(len(entries), program_zipf_s)
        self._user_weights = zipf_weights(len(self._users), user_zipf_s)

    def next_runs(self, rng: np.random.Generator) -> list[RunPlan]:
        """One run: pick a program, an eligible user, a host, a sequence."""
        idx = int(rng.choice(len(self._entries), p=self._program_weights))
        spec, owner = self._entries[idx]
        if owner is not None:
            uid = owner
        else:
            uid = self._users[int(rng.choice(len(self._users), p=self._user_weights))]
        hosts = self._user_hosts[uid]
        host = hosts[int(rng.integers(0, len(hosts)))]
        files = generate_run_sequence(
            spec,
            rng,
            order_noise=self._noise.order_noise,
            revisit_rate=self._noise.revisit_rate,
            truncate=self._noise.truncate,
            subset=self._noise.subset,
            head_bias=self._noise.head_bias,
        )
        if self._borrow_rate > 0.0 and rng.random() < self._borrow_rate:
            other_spec, _ = self._entries[int(rng.integers(0, len(self._entries)))]
            if other_spec.program_id != spec.program_id and len(other_spec.group) >= 2:
                take = int(rng.integers(2, min(4, len(other_spec.group)) + 1))
                start = int(rng.integers(0, len(other_spec.group) - take + 1))
                borrowed = list(other_spec.group[start : start + take])
                at = int(rng.integers(1, len(files) + 1))
                files[at:at] = borrowed
        return [RunPlan(uid=uid, host=host, program_id=spec.program_id, files=files)]


@dataclass(frozen=True, slots=True)
class ParallelApp:
    """One LLNL-style parallel application."""

    program_id: int
    owner_uid: int
    binary: SyntheticFile
    shared_inputs: tuple[SyntheticFile, ...]
    rank_files: tuple[tuple[SyntheticFile, ...], ...]  # [rank][k]


class ParallelJobFactory:
    """LLNL-style jobs: every job yields one run per rank.

    All ranks read the binary and shared inputs in the same order, then
    touch their private checkpoint files; the engine's interleaving of the
    ranks produces the heavily mixed global stream characteristic of
    parallel I/O traces.
    """

    def __init__(
        self,
        namespace: Namespace,
        apps: list[ParallelApp],
        n_hosts: int,
        noise: NoiseKnobs,
        app_zipf_s: float = 0.9,
    ) -> None:
        if not apps:
            raise ConfigError("ParallelJobFactory needs at least one app")
        self.namespace = namespace
        self._apps = apps
        self._n_hosts = n_hosts
        self._noise = noise
        self._weights = zipf_weights(len(apps), app_zipf_s)

    def next_runs(self, rng: np.random.Generator) -> list[RunPlan]:
        """Plan one job: one RunPlan per rank on distinct hosts."""
        app = self._apps[int(rng.choice(len(self._apps), p=self._weights))]
        ranks = len(app.rank_files)
        hosts = rng.choice(self._n_hosts, size=min(ranks, self._n_hosts), replace=False)
        plans = []
        for rank in range(ranks):
            files: list[SyntheticFile] = [app.binary, *app.shared_inputs]
            private = list(app.rank_files[rank])
            if len(private) > 1 and rng.random() < self._noise.order_noise:
                swap = int(rng.integers(0, len(private) - 1))
                private[swap], private[swap + 1] = private[swap + 1], private[swap]
            files.extend(private)
            plans.append(
                RunPlan(
                    uid=app.owner_uid,
                    host=int(hosts[rank % len(hosts)]),
                    program_id=app.program_id,
                    files=files,
                )
            )
        return plans


@dataclass(frozen=True, slots=True)
class Workload:
    """A fully wired workload: namespace + engine, ready to generate."""

    name: str
    namespace: Namespace
    engine: TraceEngine
    params: EngineParams

    def generate(self, n_events: int) -> list[TraceRecord]:
        """Generate ``n_events`` trace records."""
        return self.engine.generate(n_events)


def _make_lib_pool(ns: Namespace, count: int, dev: int = 0) -> list[SyntheticFile]:
    return ns.create_many(
        "/usr/lib", [f"lib{i:02d}.so" for i in range(count)], dev=dev, read_only=True
    )


def _pick_libs(
    pool: list[SyntheticFile], rng: np.random.Generator, lo: int, hi: int
) -> list[SyntheticFile]:
    k = int(rng.integers(lo, hi + 1))
    idx = rng.choice(len(pool), size=min(k, len(pool)), replace=False)
    return [pool[i] for i in sorted(int(i) for i in idx)]


def _build_ins(seed: int) -> Workload:
    """Instructional pool: shared courseware, massive reuse, no paths."""
    rng = derive_rng(seed, "ins-population")
    ns = Namespace()
    libs = _make_lib_pool(ns, 24, dev=1)
    n_users, n_hosts = 48, 20
    user_hosts = {uid: [uid % n_hosts] for uid in range(n_users)}
    entries: list[tuple[ProgramSpec, int | None]] = []
    for p in range(10):
        spec = build_program(
            ns,
            program_id=p,
            name=f"course{p:02d}",
            group_dir=f"/courses/cs{100 + p}",
            group_size=int(rng.integers(10, 19)),
            libraries=_pick_libs(libs, rng, 3, 6),
            dev=1,
        )
        entries.append((spec, None))
    # private scratch files: touched only through background noise
    for uid in range(n_users):
        ns.create_many(
            f"/home/stu{uid:03d}", [f"hw{i}.txt" for i in range(8)], dev=2
        )
    factory = PoolFactory(
        ns,
        entries,
        user_hosts,
        NoiseKnobs(order_noise=0.15, revisit_rate=0.08, truncate=0.08, subset=0.7),
        program_zipf_s=1.1,
        user_zipf_s=0.6,
    )
    params = EngineParams(
        concurrency=10,
        mean_interarrival_ns=500_000,
        random_access_rate=0.02,
        include_paths=False,
        stat_rate=0.1,
        pid_space=240,
        burst_mean=3.5,
    )
    engine = TraceEngine(factory, params, derive_rng(seed, "ins-engine"))
    return Workload("ins", ns, engine, params)


def _build_res(seed: int) -> Workload:
    """Research desktops: private diverse working sets, no paths."""
    rng = derive_rng(seed, "res-population")
    ns = Namespace()
    libs = _make_lib_pool(ns, 40, dev=1)
    n_users, n_hosts = 26, 13
    user_hosts = {uid: [uid % n_hosts] for uid in range(n_users)}
    entries: list[tuple[ProgramSpec, int | None]] = []
    pid_counter = 0
    for uid in range(n_users):
        for k in range(5):
            spec = build_program(
                ns,
                program_id=pid_counter,
                name=f"u{uid:02d}tool{k}",
                group_dir=f"/home/res{uid:02d}/proj{k}",
                group_size=int(rng.integers(12, 22)),
                libraries=_pick_libs(libs, rng, 3, 6),
                dev=2 + uid % 11,
            )
            entries.append((spec, uid))
            pid_counter += 1
    factory = PoolFactory(
        ns,
        entries,
        user_hosts,
        NoiseKnobs(order_noise=0.16, revisit_rate=0.10, truncate=0.15, subset=0.5, head_bias=3.0),
        program_zipf_s=0.85,
        user_zipf_s=0.8,
        borrow_rate=0.35,
    )
    params = EngineParams(
        concurrency=10,
        mean_interarrival_ns=500_000,
        random_access_rate=0.05,
        include_paths=False,
        stat_rate=0.12,
        pid_space=320,
        burst_mean=4.0,
    )
    engine = TraceEngine(factory, params, derive_rng(seed, "res-engine"))
    return Workload("res", ns, engine, params)


def _build_hp(seed: int) -> Workload:
    """Time-sharing server: many users, few hosts, full path info."""
    rng = derive_rng(seed, "hp-population")
    ns = Namespace()
    libs = _make_lib_pool(ns, 32, dev=0)
    n_users, n_hosts = 60, 4
    user_hosts = {
        uid: sorted({uid % n_hosts, int(rng.integers(0, n_hosts))})
        for uid in range(n_users)
    }
    entries: list[tuple[ProgramSpec, int | None]] = []
    pid_counter = 0
    for p in range(24):  # shared system tools
        spec = build_program(
            ns,
            program_id=pid_counter,
            name=f"tool{p:02d}",
            group_dir=f"/usr/share/tool{p:02d}",
            group_size=int(rng.integers(6, 12)),
            libraries=_pick_libs(libs, rng, 3, 7),
            dev=0,
        )
        entries.append((spec, None))
        pid_counter += 1
    for uid in range(n_users):  # two private project trees per user
        for k in range(2):
            spec = build_program(
                ns,
                program_id=pid_counter,
                name=f"u{uid:03d}proj{k}",
                group_dir=f"/home/user{uid:03d}/work/proj{k}/src",
                group_size=int(rng.integers(6, 12)),
                libraries=_pick_libs(libs, rng, 2, 5),
                bin_dir=f"/home/user{uid:03d}/bin",
                dev=0,
            )
            entries.append((spec, uid))
            pid_counter += 1
    factory = PoolFactory(
        ns,
        entries,
        user_hosts,
        NoiseKnobs(order_noise=0.12, revisit_rate=0.08, truncate=0.10, subset=0.65),
        program_zipf_s=1.0,
        user_zipf_s=0.75,
    )
    params = EngineParams(
        concurrency=12,
        mean_interarrival_ns=500_000,
        random_access_rate=0.03,
        include_paths=True,
        stat_rate=0.1,
        pid_space=320,
        burst_mean=5.0,
    )
    engine = TraceEngine(factory, params, derive_rng(seed, "hp-engine"))
    return Workload("hp", ns, engine, params)


def _build_llnl(seed: int) -> Workload:
    """Parallel scientific cluster: jobs fan out over ranks and hosts."""
    rng = derive_rng(seed, "llnl-population")
    ns = Namespace()
    n_hosts = 64
    n_apps, ranks = 16, 12
    apps: list[ParallelApp] = []
    for a in range(n_apps):
        binary = ns.create("/apps/bin", f"sim{a:02d}", read_only=True)
        inputs = tuple(
            ns.create_many(
                f"/data/sim{a:02d}/input",
                [f"mesh{i:02d}.dat" for i in range(int(rng.integers(6, 11)))],
                size=4 * 1024 * 1024,
                read_only=True,
            )
        )
        rank_files = tuple(
            tuple(
                ns.create_many(
                    f"/scratch/sim{a:02d}/rank{r:03d}",
                    [f"ckpt{i}.bin" for i in range(6)],
                    size=16 * 1024 * 1024,
                )
            )
            for r in range(ranks)
        )
        apps.append(
            ParallelApp(
                program_id=a,
                owner_uid=a % 8,
                binary=binary,
                shared_inputs=inputs,
                rank_files=rank_files,
            )
        )
    factory = ParallelJobFactory(
        ns,
        apps,
        n_hosts=n_hosts,
        noise=NoiseKnobs(order_noise=0.05, revisit_rate=0.0, truncate=0.0),
        app_zipf_s=0.9,
    )
    params = EngineParams(
        concurrency=ranks,
        mean_interarrival_ns=650_000,
        random_access_rate=0.01,
        include_paths=True,
        stat_rate=0.05,
        pid_space=480,
        burst_mean=2.0,
    )
    engine = TraceEngine(factory, params, derive_rng(seed, "llnl-engine"))
    return Workload("llnl", ns, engine, params)


_BUILDERS = {
    "ins": _build_ins,
    "res": _build_res,
    "hp": _build_hp,
    "llnl": _build_llnl,
}


def make_workload(name: str, seed: int = 0) -> Workload:
    """Build a named workload (see :data:`TRACE_NAMES`).

    Raises:
        ConfigError: for an unknown workload name.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown trace {name!r}; expected one of {TRACE_NAMES}"
        ) from None
    return builder(seed)


def generate_trace(name: str, n_events: int, seed: int = 0) -> list[TraceRecord]:
    """Generate ``n_events`` records of the named synthetic trace."""
    return make_workload(name, seed).generate(n_events)
