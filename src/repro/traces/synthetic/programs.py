"""Program model for the synthetic workloads.

A *program* owns an ordered group of working files (sources, data,
configuration) that it reads mostly in the same canonical order on every
run — the paper's gcc example — plus an executable and a set of shared
libraries linked at start-up. Every *run* of a program produces an access
sequence:

    exec, lib_1 .. lib_L, then the working group in canonical order,

perturbed by order noise (occasional swaps/skips/repeats) so the sequence
signal is strong but not degenerate. The executable/library prefix is the
paper's §3.2.1 motivating case for IPA: an executable and its libraries
share *no* path prefix yet are strongly correlated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotations only; module is numpy-free
    import numpy as np

from repro.traces.synthetic.namespace import Namespace, SyntheticFile

__all__ = [
    "ProgramSpec",
    "generate_run_sequence",
    "build_program",
    "planted_pairs",
]


@dataclass(frozen=True, slots=True)
class ProgramSpec:
    """Static description of a program and its file working group.

    Attributes:
        program_id: dense program index within the workload.
        name: human-readable name (becomes the executable file name).
        executable: the program binary.
        libraries: shared libraries loaded at start (may be shared across
            programs — this creates genuine cross-directory correlations).
        group: the ordered working-file group.
    """

    program_id: int
    name: str
    executable: SyntheticFile
    libraries: tuple[SyntheticFile, ...]
    group: tuple[SyntheticFile, ...]

    def all_files(self) -> tuple[SyntheticFile, ...]:
        """Every file a clean run touches, in canonical order."""
        return (self.executable, *self.libraries, *self.group)


def build_program(
    ns: Namespace,
    program_id: int,
    name: str,
    group_dir: str,
    group_size: int,
    libraries: list[SyntheticFile],
    bin_dir: str = "/usr/bin",
    dev: int = 0,
    file_size: int = 128 * 1024,
) -> ProgramSpec:
    """Create a program: its binary, link set and working group.

    The working group lives in ``group_dir`` so the directory attribute
    agrees across the group; the binary lives in ``bin_dir`` so the
    binary<->group correlation is invisible to path-prefix similarity.
    """
    executable = ns.create(bin_dir, name, dev=dev, read_only=True)
    group = ns.create_many(
        group_dir,
        [f"{name}.f{i:03d}" for i in range(group_size)],
        dev=dev,
        size=file_size,
    )
    return ProgramSpec(
        program_id=program_id,
        name=name,
        executable=executable,
        libraries=tuple(libraries),
        group=tuple(group),
    )


def planted_pairs(
    spec: ProgramSpec,
    *,
    depth: int = 1,
    decay: float = 0.5,
    prefix_strength: float = 1.0,
    group_strength: float = 1.0,
) -> list[tuple[int, int, float]]:
    """Ground-truth successor pairs one run of ``spec`` plants.

    A clean run accesses ``exec, lib_1..lib_L, group_0..group_n`` in
    canonical order, so every pair within ``depth`` positions of that
    sequence is a *true* correlation — the oracle the scenario suite
    evaluates mined lists against (``depth`` mirrors the miner's
    look-ahead window; successors ``d`` positions ahead are derated by
    ``decay ** (d - 1)``, the same shape as the LDA weight schedule).
    Returns ``(src_fid, dst_fid, strength)`` triples: pairs fully inside
    the executable/library prefix (never perturbed by run noise) start
    from ``prefix_strength``; pairs reaching into the working group
    start from ``group_strength``, which callers derate for their noise
    knobs (order noise, subsetting and truncation all dilute observed
    adjacency).
    """
    if depth < 1:
        raise ValueError("planted_pairs needs depth >= 1")
    files = spec.all_files()
    n_prefix = 1 + len(spec.libraries)
    pairs: list[tuple[int, int, float]] = []
    for i in range(len(files) - 1):
        for d in range(1, min(depth, len(files) - 1 - i) + 1):
            base = prefix_strength if i + d < n_prefix else group_strength
            pairs.append((files[i].fid, files[i + d].fid, base * decay ** (d - 1)))
    return pairs


def generate_run_sequence(
    spec: ProgramSpec,
    rng: np.random.Generator,
    order_noise: float = 0.1,
    revisit_rate: float = 0.0,
    truncate: float = 0.0,
    subset: float = 1.0,
    head_bias: float = 0.0,
) -> list[SyntheticFile]:
    """Access sequence for one run of ``spec``.

    Args:
        rng: the run's private random stream.
        order_noise: probability that each adjacent pair of group files is
            swapped (models compiler/editor reordering).
        revisit_rate: probability of re-touching a random earlier group
            file after each group access (models re-reads).
        truncate: probability that the run stops early, uniformly over the
            remaining suffix (models aborted runs).
        subset: fraction of the working group one run touches, as a
            contiguous slice at a random offset. Real runs rarely touch
            the whole project (gcc compiles some sources, an editor opens
            a few files), so two files can be semantically near-identical
            yet rarely co-accessed — the effect that makes the paper's
            *blend* of semantics and frequency beat either extreme.
        head_bias: skews the slice start toward the group head (Beta(1,
            1+head_bias)). Project trees have cold tails — files that sit
            in the same directory (semantically identical) but are almost
            never touched; a pure-semantics ranker prefetches them, the
            frequency term filters them.

    The executable/library prefix is never perturbed — link order is
    deterministic on real systems too.
    """
    if not 0.0 < subset <= 1.0:
        raise ValueError("subset must be in (0, 1]")
    seq: list[SyntheticFile] = [spec.executable, *spec.libraries]
    group = list(spec.group)
    if subset < 1.0 and len(group) > 2:
        take = max(2, round(subset * len(group)))
        if take < len(group):
            span = len(group) - take + 1
            if head_bias > 0.0:
                start = min(span - 1, int(span * rng.beta(1.0, 1.0 + head_bias)))
            else:
                start = int(rng.integers(0, span))
            group = group[start : start + take]
    # Adjacent swaps: a single left-to-right pass, each boundary flips
    # independently. Keeps the sequence "mostly canonical".
    i = 0
    while i < len(group) - 1:
        if rng.random() < order_noise:
            group[i], group[i + 1] = group[i + 1], group[i]
            i += 2
        else:
            i += 1
    if truncate > 0.0 and rng.random() < truncate and len(group) > 1:
        cut = int(rng.integers(1, len(group)))
        group = group[:cut]
    for idx, f in enumerate(group):
        seq.append(f)
        if revisit_rate > 0.0 and idx > 0 and rng.random() < revisit_rate:
            back = int(rng.integers(0, idx))
            seq.append(group[back])
    return seq
