"""The trace engine: interleaves concurrent program runs into one stream.

This is the mechanism that makes the reproduction honest. Real
distributed-file-system traces are the OS-scheduler interleaving of many
concurrent processes; a pure sequence miner sees the *merged* stream and
its successor statistics are polluted by cross-process adjacencies. The
engine reproduces that: it keeps ``concurrency`` runs active at once and
at every step lets a random active run emit its next access. Semantic
attributes (uid/pid/host/path) travel with each record, so an
attribute-aware miner can undo the interleaving — exactly the effect the
paper measures in Figure 1 and exploits in FARMER.

The engine is generator-agnostic: it only calls ``random()``,
``integers(low, high)`` and ``exponential(mean)`` on the stream it is
given, so both ``numpy.random.Generator`` (the four paper profiles) and
the pure-python :class:`repro.workloads.prng.PureRng` (the scenario
suite, which must run on a numpy-free interpreter) drive it. The module
itself imports numpy lazily for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

from repro.errors import ConfigError
from repro.traces.record import TraceRecord
from repro.traces.synthetic.namespace import Namespace, SyntheticFile

__all__ = ["RunPlan", "RunFactory", "EngineParams", "TraceEngine", "zipf_weights"]


def zipf_weights(n: int, s: float) -> "np.ndarray":
    """Normalised Zipf(s) weights over ``n`` ranks (rank 0 most popular)."""
    import numpy as np  # deferred: the engine itself is numpy-free

    if n <= 0:
        raise ConfigError("zipf_weights needs n >= 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-s)
    return w / w.sum()


@dataclass(slots=True)
class RunPlan:
    """One planned program run: who runs what, where, over which files."""

    uid: int
    host: int
    program_id: int
    files: list[SyntheticFile]


class RunFactory(Protocol):
    """Profile-specific run production (population + popularity model)."""

    namespace: Namespace

    def next_runs(self, rng: np.random.Generator) -> list[RunPlan]:
        """Produce the next batch of runs (parallel jobs return one per rank)."""
        ...  # pragma: no cover - protocol stub


@dataclass(frozen=True, slots=True)
class EngineParams:
    """Engine-level knobs shared by all profiles.

    Attributes:
        concurrency: number of simultaneously active runs; higher values
            interleave harder and hurt pure sequence mining more.
        mean_interarrival_ns: mean of the exponential inter-arrival time.
        random_access_rate: probability that a step emits an access to a
            uniformly random namespace file instead of the run's next file
            (daemon/background noise).
        include_paths: whether records carry full paths (HP/LLNL) or only
            ``(fid, dev)`` (INS/RES).
        stat_rate: fraction of accesses emitted as metadata-only ``stat``.
        pid_space: size of the OS pid space; pids are recycled modulo this
            value as real kernels do, so the process attribute aliases a
            little instead of being a perfect run identifier.
        burst_mean: mean number of consecutive accesses one run issues
            before the scheduler switches away (geometric). Real traces
            are bursty — a process performs several I/Os per scheduling
            quantum — so same-process adjacency in the merged stream is
            much higher than 1/concurrency. Lower values interleave
            harder (LLNL), higher values preserve more sequence locality.
    """

    concurrency: int = 8
    mean_interarrival_ns: int = 500_000
    random_access_rate: float = 0.02
    include_paths: bool = True
    stat_rate: float = 0.1
    pid_space: int = 320
    burst_mean: float = 4.0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ConfigError("concurrency must be >= 1")
        if self.mean_interarrival_ns <= 0:
            raise ConfigError("mean_interarrival_ns must be positive")
        if not 0.0 <= self.random_access_rate < 1.0:
            raise ConfigError("random_access_rate must be in [0, 1)")
        if not 0.0 <= self.stat_rate <= 1.0:
            raise ConfigError("stat_rate must be in [0, 1]")
        if self.pid_space < self.concurrency:
            raise ConfigError("pid_space must be >= concurrency")
        if self.burst_mean < 1.0:
            raise ConfigError("burst_mean must be >= 1")


@dataclass(slots=True)
class _ActiveRun:
    plan: RunPlan
    pid: int
    position: int = 0

    def exhausted(self) -> bool:
        return self.position >= len(self.plan.files)

    def next_file(self) -> SyntheticFile:
        f = self.plan.files[self.position]
        self.position += 1
        return f


class TraceEngine:
    """Drives a :class:`RunFactory` to produce an interleaved trace."""

    def __init__(
        self,
        factory: RunFactory,
        params: EngineParams,
        rng: np.random.Generator,
    ) -> None:
        self._factory = factory
        self._params = params
        self._rng = rng
        self._active: list[_ActiveRun] = []
        self._pending: list[RunPlan] = []
        self._run_counter = 0
        self._clock_ns = 0
        # the in-flight burst survives across generate() calls, so a
        # stream produced in slices is bit-identical to one produced in
        # a single call (the scenario suite's resumability contract)
        self._current: _ActiveRun | None = None

    def _admit_runs(self) -> None:
        """Top the active set back up to the concurrency level."""
        while len(self._active) < self._params.concurrency:
            if not self._pending:
                self._pending = list(self._factory.next_runs(self._rng))
                if not self._pending:
                    raise RuntimeError("run factory produced no runs")
            plan = self._pending.pop(0)
            if not plan.files:
                continue
            pid = 1000 + (self._run_counter % self._params.pid_space)
            self._active.append(_ActiveRun(plan=plan, pid=pid))
            self._run_counter += 1

    def _emit(self, run: _ActiveRun, f: SyntheticFile) -> TraceRecord:
        self._clock_ns += max(
            1, int(self._rng.exponential(self._params.mean_interarrival_ns))
        )
        op = "stat" if self._rng.random() < self._params.stat_rate else "open"
        return TraceRecord(
            ts=self._clock_ns,
            fid=f.fid,
            uid=run.plan.uid,
            pid=run.pid,
            host=run.plan.host,
            path=f.path if self._params.include_paths else None,
            op=op,
            size=f.size,
            dev=f.dev,
        )

    def generate(self, n_events: int) -> list[TraceRecord]:
        """Produce exactly ``n_events`` interleaved records.

        The scheduler is bursty: it picks an active run, lets it issue a
        geometric(1/burst_mean) number of accesses, then switches. This
        reproduces the partial sequence locality of real multi-process
        traces (Figure 1's "none" probabilities are well above
        1/concurrency for exactly this reason).
        """
        if n_events < 0:
            raise ConfigError("n_events must be >= 0")
        records: list[TraceRecord] = []
        ns = self._factory.namespace
        p_switch = 1.0 / self._params.burst_mean
        while len(records) < n_events:
            self._admit_runs()
            if self._current is None or self._rng.random() < p_switch:
                self._current = self._active[
                    int(self._rng.integers(0, len(self._active)))
                ]
            run = self._current
            if self._rng.random() < self._params.random_access_rate and len(ns) > 0:
                f = ns.by_fid(int(self._rng.integers(0, len(ns))))
            else:
                f = run.next_file()
                if run.exhausted():
                    self._active.remove(run)
                    self._current = None
            records.append(self._emit(run, f))
        return records
