"""Shared utilities: deterministic RNG plumbing, string interning,
streaming statistics, memory accounting and table rendering.

These are deliberately dependency-light; everything above them in the
package graph (traces, vsm, graph, core, storage) builds on these
primitives.
"""

from repro.utils.intern import Interner
from repro.utils.memory import MemoryMeter, approx_sizeof
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.stats import (
    OnlineMean,
    OnlineStats,
    ReservoirSample,
    percentile,
)
from repro.utils.tables import format_table, format_percent

__all__ = [
    "Interner",
    "MemoryMeter",
    "approx_sizeof",
    "derive_rng",
    "spawn_rngs",
    "OnlineMean",
    "OnlineStats",
    "ReservoirSample",
    "percentile",
    "format_table",
    "format_percent",
]
