"""Shared utilities: deterministic RNG plumbing, string interning,
streaming statistics, memory accounting and table rendering.

These are deliberately dependency-light; everything above them in the
package graph (traces, vsm, graph, core, storage) builds on these
primitives.
"""

from repro.utils.intern import Interner
from repro.utils.memory import MemoryMeter, approx_sizeof
from repro.utils.tables import format_table, format_percent

# rng and stats are numpy-backed (seeded Generators, percentile math);
# re-exported lazily (PEP 562) so the mining core's import chain stays
# numpy-free (the no-numpy CI leg pins this)
_LAZY = {
    "derive_rng": "repro.utils.rng",
    "spawn_rngs": "repro.utils.rng",
    "OnlineMean": "repro.utils.stats",
    "OnlineStats": "repro.utils.stats",
    "ReservoirSample": "repro.utils.stats",
    "percentile": "repro.utils.stats",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is not None:
        import importlib

        return getattr(importlib.import_module(module), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Interner",
    "MemoryMeter",
    "approx_sizeof",
    "derive_rng",
    "spawn_rngs",
    "OnlineMean",
    "OnlineStats",
    "ReservoirSample",
    "percentile",
    "format_table",
    "format_percent",
]
