"""String interning: map hashable tokens to dense integer ids.

The mining hot loops (graph updates, semantic-vector intersection) never
touch strings; they operate on the small integers produced here. This is
the single biggest constant-factor win in the whole library — set
intersections over ints are ~5x faster than over strings and the memory
accounting (Table 4 reproduction) becomes exact.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

__all__ = ["Interner"]


class Interner:
    """Bidirectional token <-> dense-id mapping.

    Ids are assigned in first-seen order starting at 0, so an
    ``Interner`` also doubles as an insertion-ordered vocabulary. Lookup
    in both directions is O(1).
    """

    __slots__ = ("_to_id", "_to_token")

    def __init__(self, tokens: Iterable[Hashable] = ()) -> None:
        self._to_id: dict[Hashable, int] = {}
        self._to_token: list[Hashable] = []
        for token in tokens:
            self.intern(token)

    def intern(self, token: Hashable) -> int:
        """Return the id for ``token``, allocating a new id on first sight."""
        existing = self._to_id.get(token)
        if existing is not None:
            return existing
        new_id = len(self._to_token)
        self._to_id[token] = new_id
        self._to_token.append(token)
        return new_id

    def intern_many(self, tokens: Iterable[Hashable]) -> list[int]:
        """Intern a batch of tokens, preserving order (duplicates allowed)."""
        return [self.intern(token) for token in tokens]

    def id_of(self, token: Hashable) -> int:
        """Return the id of an already-interned token.

        Raises:
            KeyError: if the token has never been interned.
        """
        return self._to_id[token]

    def get(self, token: Hashable, default: int | None = None) -> int | None:
        """Return the id of ``token`` or ``default`` if it is unknown."""
        return self._to_id.get(token, default)

    def token_of(self, token_id: int) -> Hashable:
        """Inverse lookup: the token that was assigned ``token_id``."""
        return self._to_token[token_id]

    def __contains__(self, token: Hashable) -> bool:
        return token in self._to_id

    def __len__(self) -> int:
        return len(self._to_token)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._to_token)

    def tokens(self) -> list[Hashable]:
        """All interned tokens in id order (a copy; safe to mutate)."""
        return list(self._to_token)

    def approx_bytes(self) -> int:
        """Rough resident size used by the Table 4 memory accounting."""
        # dict entry ~ 104 bytes, list slot 8 bytes, plus the token payloads.
        token_bytes = sum(
            len(t) if isinstance(t, (str, bytes)) else 8 for t in self._to_token
        )
        return 104 * len(self._to_id) + 8 * len(self._to_token) + token_bytes
