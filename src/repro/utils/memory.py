"""Memory accounting for the Table 4 (space overhead) reproduction.

``sys.getsizeof`` does not recurse and wildly under-reports container
payloads, so we provide a small structural accountant: components that
want to appear in the space-overhead table implement ``approx_bytes()``
and register themselves with a :class:`MemoryMeter`. This mirrors how the
paper reports FARMER's *additional* footprint (Correlator Lists plus
per-file bookkeeping), not the resident size of the whole process.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping, Sequence
from typing import Any, Protocol, runtime_checkable

__all__ = ["approx_sizeof", "MemoryMeter", "SupportsApproxBytes"]


@runtime_checkable
class SupportsApproxBytes(Protocol):
    """Anything that can report its approximate resident size in bytes."""

    def approx_bytes(self) -> int:  # pragma: no cover - protocol stub
        ...


def approx_sizeof(obj: Any, _depth: int = 0) -> int:
    """Recursively approximate the resident size of a Python object.

    Containers are charged for their own header plus their elements;
    recursion is depth-capped to keep pathological self-referencing
    structures from looping (shared sub-objects are double counted, which
    is the conservative direction for an *overhead* estimate).
    """
    if _depth > 8:
        return sys.getsizeof(obj)
    if isinstance(obj, SupportsApproxBytes) and not isinstance(obj, type):
        return obj.approx_bytes()
    size = sys.getsizeof(obj)
    if isinstance(obj, Mapping):
        size += sum(
            approx_sizeof(k, _depth + 1) + approx_sizeof(v, _depth + 1)
            for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)) or (
        isinstance(obj, Sequence) and not isinstance(obj, (str, bytes, bytearray))
    ):
        size += sum(approx_sizeof(item, _depth + 1) for item in obj)
    return size


class MemoryMeter:
    """Aggregates the approximate footprint of named components.

    Components are registered once and re-measured on demand so the meter
    can be sampled repeatedly while a simulation runs (Table 4 reports the
    final value; the ablation benches sample the growth curve).
    """

    def __init__(self) -> None:
        self._components: dict[str, Any] = {}

    def register(self, name: str, component: Any) -> None:
        """Track ``component`` under ``name`` (replaces a previous entry)."""
        self._components[name] = component

    def unregister(self, name: str) -> None:
        """Stop tracking ``name``; missing names are ignored."""
        self._components.pop(name, None)

    def measure(self) -> dict[str, int]:
        """Bytes per registered component at this instant."""
        return {name: approx_sizeof(c) for name, c in self._components.items()}

    def total_bytes(self) -> int:
        """Sum of all component footprints."""
        return sum(self.measure().values())

    def total_megabytes(self) -> float:
        """Total footprint in MB (10^6 bytes, as the paper reports)."""
        return self.total_bytes() / 1e6
