"""Deterministic random-number plumbing.

Every stochastic component in the library (trace generators, latency
models, interleaving schedulers) draws from a ``numpy.random.Generator``
that is *derived* from a root seed plus a stable string label. Two runs
with the same seed therefore produce bit-identical traces and simulation
outcomes, and changing one component's label never perturbs another
component's stream — the property the hpc guides call "reproducible by
construction".
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

import numpy as np

__all__ = ["derive_rng", "spawn_rngs", "stable_hash64"]


def stable_hash64(label: str) -> int:
    """Return a stable (across processes and Python versions) 64-bit hash.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    to derive reproducible seeds. We use blake2b which is fast and stable.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Create a generator for component ``label`` derived from ``seed``.

    The (seed, label) pair fully determines the stream: independent
    components use independent labels and therefore independent streams.
    """
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, stable_hash64(label)]))


def spawn_rngs(seed: int, labels: Iterable[str]) -> dict[str, np.random.Generator]:
    """Derive one generator per label; convenience for multi-part models."""
    return {label: derive_rng(seed, label) for label in labels}
