"""Streaming statistics used by the simulator's metric collection.

The metadata-server simulator processes hundreds of thousands of events;
storing every response time and post-processing would dominate memory.
These accumulators are O(1) per observation (Welford for mean/variance,
bounded reservoir for percentiles) which keeps the measurement machinery
invisible in profiles, as the optimisation guide prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["OnlineMean", "OnlineStats", "ReservoirSample", "percentile"]


class OnlineMean:
    """Numerically stable streaming mean (no variance tracking)."""

    __slots__ = ("count", "mean")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the mean."""
        self.count += 1
        self.mean += (value - self.mean) / self.count

    def merge(self, other: "OnlineMean") -> None:
        """Combine with another accumulator (order-independent)."""
        total = self.count + other.count
        if total == 0:
            return
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineMean(count={self.count}, mean={self.mean:.6g})"


class OnlineStats:
    """Welford streaming mean/variance/min/max."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        """Fold one observation into mean/variance/extremes."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance; 0.0 with fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return self.variance**0.5

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.stddev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


@dataclass
class ReservoirSample:
    """Vitter reservoir sampling for streaming percentile estimates.

    Keeps a uniform sample of at most ``capacity`` observations from a
    stream of unknown length; percentiles computed from the reservoir are
    unbiased estimates of the stream percentiles.
    """

    capacity: int = 4096
    seed: int = 0
    count: int = 0
    _values: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self._rng = np.random.default_rng(self.seed)

    def add(self, value: float) -> None:
        """Offer one observation to the reservoir."""
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        slot = int(self._rng.integers(0, self.count))
        if slot < self.capacity:
            self._values[slot] = value

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (q in [0, 100]) of the stream."""
        if not self._values:
            return float("nan")
        return float(np.percentile(self._values, q))

    def values(self) -> np.ndarray:
        """Snapshot of the current reservoir contents."""
        return np.asarray(self._values, dtype=np.float64)


def percentile(values: np.ndarray | list[float], q: float) -> float:
    """Percentile helper that tolerates empty inputs (returns NaN)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))
