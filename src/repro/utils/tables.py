"""Plain-text table rendering for the experiment harness.

Every experiment prints its result in the same row/column layout as the
paper's table or figure legend, so a reader can diff our output against
the publication side by side. No third-party table library — the format
is deliberately boring and stable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["format_table", "format_percent", "format_float"]


def format_percent(value: float, digits: int = 2) -> str:
    """Render a ratio in [0,1] as the paper's percent notation (e.g. 64.04%)."""
    return f"{value * 100:.{digits}f}%"


def format_float(value: float, digits: int = 4) -> str:
    """Render a float with fixed digits, NaN-safe."""
    if value != value:  # NaN
        return "nan"
    return f"{value:.{digits}f}"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Column widths are computed from the content; floats are shown with
    four digits unless the caller pre-formats them into strings.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
