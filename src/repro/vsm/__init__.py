"""Vector Space Model machinery: vocabularies, semantic vectors and the
DPA/IPA similarity functions (the paper's Function 1 and Table 2)."""

from repro.vsm.path import parent_directory, tokenize_path
from repro.vsm.similarity import (
    SIMILARITY_METHODS,
    directory_similarity,
    dpa_similarity,
    ipa_similarity,
    similarity,
)
from repro.vsm.vector import SemanticVector, bag_intersection
from repro.vsm.vocabulary import Vocabulary


def __getattr__(name: str):
    # SemanticMatrix is numpy-backed analysis machinery, not part of
    # the mining hot path — re-exported lazily so the core import chain
    # stays numpy-free (the no-numpy CI leg pins this)
    if name == "SemanticMatrix":
        from repro.vsm.matrix import SemanticMatrix

        return SemanticMatrix
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SemanticMatrix",
    "parent_directory",
    "tokenize_path",
    "SIMILARITY_METHODS",
    "directory_similarity",
    "dpa_similarity",
    "ipa_similarity",
    "similarity",
    "SemanticVector",
    "bag_intersection",
    "Vocabulary",
]
