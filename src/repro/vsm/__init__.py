"""Vector Space Model machinery: vocabularies, semantic vectors and the
DPA/IPA similarity functions (the paper's Function 1 and Table 2)."""

from repro.vsm.matrix import SemanticMatrix
from repro.vsm.path import parent_directory, tokenize_path
from repro.vsm.similarity import (
    SIMILARITY_METHODS,
    directory_similarity,
    dpa_similarity,
    ipa_similarity,
    similarity,
)
from repro.vsm.vector import SemanticVector, bag_intersection
from repro.vsm.vocabulary import Vocabulary

__all__ = [
    "SemanticMatrix",
    "parent_directory",
    "tokenize_path",
    "SIMILARITY_METHODS",
    "directory_similarity",
    "dpa_similarity",
    "ipa_similarity",
    "similarity",
    "SemanticVector",
    "bag_intersection",
    "Vocabulary",
]
