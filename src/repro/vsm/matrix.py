"""Bulk semantic-vector storage as a sparse matrix.

The paper stores semantic vectors "as columns of a single matrix" and
computes similarities with basic vector operations. For the *online*
miner the per-pair merge in :mod:`repro.vsm.similarity` is faster, but
the offline analyses (attribute studies, clustering for the layout
application) want all-pairs similarity over thousands of files at once —
that is what this module vectorises with scipy.sparse.

The matrix uses set semantics (an item is present or absent); duplicate
items within one vector are collapsed, which only matters for DPA vectors
containing repeated path components and is documented behaviour.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.vsm.vector import SemanticVector

__all__ = ["SemanticMatrix"]


class SemanticMatrix:
    """Accumulates vectors and computes bulk pairwise similarities."""

    def __init__(self) -> None:
        self._rows: list[tuple[int, ...]] = []
        self._keys: list[int] = []

    def add(self, key: int, vector: SemanticVector) -> None:
        """Append a vector under an opaque integer key (e.g. a fid)."""
        self._rows.append(tuple(sorted(set(vector.dpa_items()))))
        self._keys.append(key)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def keys(self) -> list[int]:
        """Keys in insertion order (matrix row order)."""
        return list(self._keys)

    def to_csr(self) -> sp.csr_matrix:
        """Binary file-by-item CSR matrix."""
        indptr = [0]
        indices: list[int] = []
        for row in self._rows:
            indices.extend(row)
            indptr.append(len(indices))
        n_cols = (max(indices) + 1) if indices else 0
        data = np.ones(len(indices), dtype=np.float64)
        return sp.csr_matrix(
            (data, np.asarray(indices, dtype=np.int64), np.asarray(indptr, dtype=np.int64)),
            shape=(len(self._rows), n_cols),
        )

    def pairwise_dpa(self) -> np.ndarray:
        """All-pairs DPA similarity (set semantics): |A∩B| / max(|A|, |B|).

        Returns a dense (n, n) symmetric matrix with unit diagonal for
        non-empty vectors. O(n²) output — intended for analysis scales
        (thousands of files), not trace scales.
        """
        m = self.to_csr()
        inter = (m @ m.T).toarray()
        sizes = np.asarray(m.sum(axis=1)).ravel()
        denom = np.maximum.outer(sizes, sizes)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(denom > 0, inter / denom, 0.0)
        return out

    def nearest(self, index: int, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` most similar vectors to row ``index`` (key, sim) pairs."""
        m = self.to_csr()
        row = m.getrow(index)
        inter = np.asarray((m @ row.T).todense()).ravel()
        sizes = np.asarray(m.sum(axis=1)).ravel()
        denom = np.maximum(sizes, sizes[index])
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = np.where(denom > 0, inter / denom, 0.0)
        sims[index] = -1.0  # exclude self
        order = np.argsort(-sims)[:k]
        return [(self._keys[i], float(sims[i])) for i in order if sims[i] > 0.0]
