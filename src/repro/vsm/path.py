"""Path tokenisation for the Divided/Integrated Path Algorithms.

A path is split into its components *including the final file name* —
the paper's Table 2 example counts ``/home/user1/paper/a`` as four
components (``home``, ``user1``, ``paper``, ``a``) and uses that count as
the denominator of the directory similarity.
"""

from __future__ import annotations

__all__ = ["tokenize_path", "parent_directory"]


def tokenize_path(path: str) -> tuple[str, ...]:
    """Split a path into its non-empty components.

    Leading/trailing/duplicate slashes are tolerated; relative paths
    tokenize the same way (no special root marker — similarity is about
    shared components, not absoluteness).
    """
    return tuple(part for part in path.split("/") if part)


def parent_directory(path: str) -> str:
    """Parent directory of ``path`` ("/" for top-level entries)."""
    idx = path.rstrip("/").rfind("/")
    if idx <= 0:
        return "/"
    return path[:idx]
