"""Semantic-distance computation (the paper's Function 1).

``sim(A, B) = |A ∩ B| / max(|A|, |B|)`` over semantic-vector items, with
the file-path attribute handled by either of two algorithms:

* **DPA** (Divided Path Algorithm): every path component is an item of
  its own. Deep directories then dominate the denominator — the paper's
  executable/library example shows how DPA drowns genuinely correlated
  files, which is why FARMER defaults to IPA.
* **IPA** (Integrated Path Algorithm): the whole path is a single item
  whose intersection contribution equals the *directory similarity* —
  shared components over the larger component count (Table 2 computes
  3/4 = 0.75 for ``/home/user1/paper/{a,b}``).

Both reproduce the paper's Table 2 worked example exactly (tested in
``tests/vsm/test_table2.py``).
"""

from __future__ import annotations

from repro.vsm.vector import SemanticVector, bag_intersection

__all__ = [
    "directory_similarity",
    "dpa_similarity",
    "ipa_similarity",
    "similarity",
    "SIMILARITY_METHODS",
]

SIMILARITY_METHODS = ("ipa", "dpa")


def directory_similarity(
    a: tuple[int, ...] | None,
    b: tuple[int, ...] | None,
    mode: str = "bag",
) -> float:
    """Similarity of two component-id paths in [0, 1].

    ``mode="bag"`` counts shared components regardless of position (this
    matches the paper's worked example); ``mode="prefix"`` counts only the
    shared leading run, which penalises same-named components at
    different depths.
    Returns 0.0 when either path is absent.
    """
    if a is None or b is None or not a or not b:
        return 0.0
    denom = max(len(a), len(b))
    if mode == "bag":
        hits = bag_intersection(tuple(sorted(a)), tuple(sorted(b)))
    elif mode == "prefix":
        hits = 0
        for x, y in zip(a, b):
            if x != y:
                break
            hits += 1
    else:
        raise ValueError(f"unknown directory-similarity mode {mode!r}")
    return hits / denom


def dpa_similarity(a: SemanticVector, b: SemanticVector) -> float:
    """Function 1 with the Divided Path Algorithm."""
    denom = max(a.n_items("dpa"), b.n_items("dpa"))
    if denom == 0:
        return 0.0
    hits = bag_intersection(a.dpa_items(), b.dpa_items())
    return hits / denom


def ipa_similarity(
    a: SemanticVector, b: SemanticVector, path_mode: str = "bag"
) -> float:
    """Function 1 with the Integrated Path Algorithm.

    Scalar hits are a C-level set intersection (scalar ids are unique by
    construction, so bag and set semantics coincide); bag mode runs on
    the vectors' precomputed ``sorted_path`` tuples so the per-comparison
    cost is a single linear merge — no sorting on the hot path.
    """
    na, nb = a.n_ipa, b.n_ipa
    denom = na if na >= nb else nb
    if denom == 0:
        return 0.0
    sa = a._scalar_set
    if sa is None:
        sa = a.scalar_set  # builds and caches
    sb = b._scalar_set
    if sb is None:
        sb = b.scalar_set
    hits = float(len(sa & sb))
    pa, pb = a.path_ids, b.path_ids
    if pa and pb:
        if path_mode == "bag":
            hits += bag_intersection(a.sorted_path, b.sorted_path) / max(
                len(pa), len(pb)
            )
        else:
            hits += directory_similarity(pa, pb, mode=path_mode)
    return hits / denom


def similarity(
    a: SemanticVector, b: SemanticVector, method: str = "ipa", path_mode: str = "bag"
) -> float:
    """Dispatch to :func:`ipa_similarity` or :func:`dpa_similarity`.

    Raises:
        ValueError: for an unknown method name.
    """
    if method == "ipa":
        return ipa_similarity(a, b, path_mode=path_mode)
    if method == "dpa":
        return dpa_similarity(a, b)
    raise ValueError(f"unknown similarity method {method!r}; use one of {SIMILARITY_METHODS}")
