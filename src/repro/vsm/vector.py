"""Semantic vectors: the VSM representation of one file (or request).

A vector holds the interned scalar items (user, process, host, device,
file-id, …) plus — when the trace provides one — the ordered, interned
path components. The split lets the two path algorithms coexist:

* DPA treats every path component as one more scalar item;
* IPA treats the whole path as a single item whose match value against
  another path is the *directory similarity* (a fraction in [0, 1]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SemanticVector", "bag_intersection"]


def bag_intersection(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Multiset intersection size of two *sorted* id tuples (linear merge)."""
    i = j = hits = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        ai, bj = a[i], b[j]
        if ai == bj:
            hits += 1
            i += 1
            j += 1
        elif ai < bj:
            i += 1
        else:
            j += 1
    return hits


@dataclass(frozen=True, slots=True)
class SemanticVector:
    """Immutable semantic vector of a file.

    Attributes:
        scalar_ids: sorted, de-duplicated interned ids of the scalar
            items (scalar items are a set — tokens are namespaced by
            attribute, so a duplicate id carries no information).
        path_ids: interned path-component ids in path order, or ``None``
            when the trace carries no path for this file.
        n_ipa: precomputed IPA item count (scalars + 1 for the path) —
            the similarity denominator, read twice per comparison.
        sorted_path: ``path_ids`` pre-sorted for bag intersection (the
            IPA bag-mode hot path); computed lazily on first use and
            cached, so the sort cost is paid at most once per vector and
            not at all under configurations that never bag-compare paths.
        scalar_set: ``scalar_ids`` as a frozenset, lazily cached. Scalar
            ids are unique by construction (tokens are namespaced by
            attribute, and each attribute contributes distinct values),
            so the bag intersection of two scalar tuples equals the set
            intersection — which runs as one C-level ``&``.
    """

    scalar_ids: tuple[int, ...]
    path_ids: tuple[int, ...] | None = None
    n_ipa: int = field(init=False, repr=False, compare=False, default=0)
    _sorted_path: tuple[int, ...] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _scalar_set: frozenset[int] | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        ids = self.scalar_ids
        # normalise to strictly increasing: scalar items are a *set*
        # (namespaced interning makes duplicates meaningless), and
        # uniqueness is what lets similarity run set intersections
        normalised = tuple(sorted(set(ids)))
        if normalised != ids:
            object.__setattr__(self, "scalar_ids", normalised)
        object.__setattr__(
            self,
            "n_ipa",
            len(self.scalar_ids) + (1 if self.path_ids is not None else 0),
        )

    @property
    def sorted_path(self) -> tuple[int, ...]:
        cached = self._sorted_path
        if cached is None:
            cached = tuple(sorted(self.path_ids)) if self.path_ids else ()
            object.__setattr__(self, "_sorted_path", cached)
        return cached

    @property
    def scalar_set(self) -> frozenset[int]:
        cached = self._scalar_set
        if cached is None:
            cached = frozenset(self.scalar_ids)
            object.__setattr__(self, "_scalar_set", cached)
        return cached

    def n_items(self, method: str) -> int:
        """Item count under a path algorithm ("dpa" or "ipa").

        Under DPA every path component is an item; under IPA the whole
        path is one item.
        """
        n = len(self.scalar_ids)
        if self.path_ids is not None:
            if method == "dpa":
                n += len(self.path_ids)
            elif method == "ipa":
                n += 1
            else:
                raise ValueError(f"unknown path method {method!r}")
        return n

    def dpa_items(self) -> tuple[int, ...]:
        """All items under DPA semantics, sorted (scalars + path comps)."""
        if self.path_ids is None:
            return self.scalar_ids
        return tuple(sorted((*self.scalar_ids, *self.path_ids)))

    def sorted_path_ids(self) -> tuple[int, ...]:
        """Path component ids sorted for bag intersection ((), if no path)."""
        return self.sorted_path

    def approx_bytes(self) -> int:
        """Approximate resident size (memory-overhead accounting)."""
        n = len(self.scalar_ids) + (len(self.path_ids) if self.path_ids else 0)
        total = 64 + 8 * n
        if self._sorted_path:
            total += 56 + 8 * len(self._sorted_path)
        if self._scalar_set is not None:
            total += 216 + 32 * len(self._scalar_set)
        return total
