"""Vocabulary: interning of semantic-attribute tokens.

Semantic-vector items are interned to dense integer ids so similarity
computations are integer merges. Tokens are *namespaced by attribute*
(``("user", 7)`` is a different token from ``("process", 7)``) — two
attributes that happen to share a raw value must not count as a match.
Path components get their own namespace for the same reason; the paper's
Table 1 example (where ``user1`` appears both as the user attribute and a
path component and both matches count) comes out identical under this
scheme.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.utils.intern import Interner

__all__ = ["Vocabulary", "ThreadSafeVocabulary"]

_PATH_NS = "pathc"


class Vocabulary:
    """Interner specialised for namespaced semantic tokens."""

    __slots__ = ("_interner",)

    def __init__(self) -> None:
        self._interner = Interner()

    def scalar_token(self, attr: str, value: Any) -> int:
        """Id of the scalar item ``attr=value``."""
        return self._interner.intern((attr, value))

    def path_component(self, component: str) -> int:
        """Id of one path component (namespaced separately from scalars)."""
        return self._interner.intern((_PATH_NS, component))

    def path_components(self, components: tuple[str, ...]) -> tuple[int, ...]:
        """Ids for an ordered run of path components."""
        interner = self._interner
        return tuple(interner.intern((_PATH_NS, c)) for c in components)

    def decode(self, token_id: int) -> tuple[str, Any]:
        """Inverse lookup: ``(namespace_or_attr, value)`` of a token id."""
        return self._interner.token_of(token_id)  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._interner)

    def approx_bytes(self) -> int:
        """Approximate resident size (memory-overhead accounting)."""
        return self._interner.approx_bytes()


class ThreadSafeVocabulary(Vocabulary):
    """A :class:`Vocabulary` safe for concurrent interning.

    Interning is check-then-insert: two shards extracting records that
    share an attribute value (the same user touching files owned by two
    shards) would race and could hand out two ids for one token. The
    lock makes the id assignment atomic. Token *ids* stay opaque — which
    id a token gets may vary with thread interleaving, but similarity
    only compares ids for equality, so mined degrees are unaffected.

    Picklable (process-backend workers receive a snapshot); the lock is
    recreated on unpickle.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def scalar_token(self, attr: str, value: Any) -> int:
        with self._lock:
            return super().scalar_token(attr, value)

    def path_component(self, component: str) -> int:
        with self._lock:
            return super().path_component(component)

    def path_components(self, components: tuple[str, ...]) -> tuple[int, ...]:
        with self._lock:
            return super().path_components(components)

    def __getstate__(self):
        # always-truthy container (an empty interner is falsy, and pickle
        # skips __setstate__ for falsy states)
        return {"interner": self._interner}

    def __setstate__(self, state) -> None:
        self._interner = state["interner"]
        self._lock = threading.Lock()
