"""Workload scenario suite with planted-correlation ground truth.

Six composable scenarios (zipfian hotspot, producer/consumer pipeline,
directory-scan storm, small-file metadata churn, multi-tenant
interleaving, diurnal load shift) built on the same interleaving
:class:`~repro.traces.synthetic.workload.TraceEngine` as the paper
profiles — but each one also emits a machine-readable
:class:`TruthSet` of the correlations it planted, so mined Correlator
Lists can be scored with precision@k / recall@k and prefetch-hit
headroom instead of only kernel-vs-kernel bit-equality.

The whole package is numpy-free (randomness comes from the pure-python
:class:`~repro.workloads.prng.PureRng`), so scenario generation and
evaluation run identically on the no-numpy CI leg and across
``PYTHONHASHSEED`` settings. Entry points: ``repro workload`` on the
CLI, :func:`evaluate_scenario` / :func:`evaluate_all` in code,
``benchmarks/bench_workloads.py`` for the pinned BENCH rows.
"""

from repro.workloads.eval import (
    DEFAULT_EVENTS,
    DEFAULT_KS,
    KMetrics,
    ScenarioReport,
    evaluate_all,
    evaluate_scenario,
    mine_scenario,
    score_miner,
)
from repro.workloads.prng import PureRng, derive_prng
from repro.workloads.scenario import (
    SCENARIO_NAMES,
    PlantedPair,
    ScenarioInstance,
    TruthSet,
    generate_scenario,
    make_scenario,
    scenario_descriptions,
)

__all__ = [
    "SCENARIO_NAMES",
    "PlantedPair",
    "TruthSet",
    "ScenarioInstance",
    "make_scenario",
    "generate_scenario",
    "scenario_descriptions",
    "PureRng",
    "derive_prng",
    "KMetrics",
    "ScenarioReport",
    "mine_scenario",
    "score_miner",
    "evaluate_scenario",
    "evaluate_all",
    "DEFAULT_KS",
    "DEFAULT_EVENTS",
]
