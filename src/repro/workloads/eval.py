"""Precision/recall evaluation of mined lists against planted truth.

The scenario suite's scoring contract, in three layers:

* :func:`mine_scenario` — run a miner (single-shard :class:`Farmer`,
  :class:`ShardedFarmer`, or the full :class:`OnlineService` ingestion
  path) over a scenario's record stream;
* :func:`score_miner` — compare any mined miner's per-file prediction
  lists against a :class:`~repro.workloads.scenario.TruthSet`,
  producing macro-averaged precision@k / recall@k plus the
  prefetch-hit headroom (how far the mined prefetcher trails the
  planted oracle on the actual stream tail);
* :func:`evaluate_scenario` / :func:`evaluate_all` — the one-call
  wrappers the CLI, the benchmark suite and CI floors consume.

Metric definitions (documented verbatim in ``docs/workloads.md``):

* For each truth source with at least ``min_support`` appearances in
  the trace, ``preds = miner.predict(src, k)`` (the threshold-filtered
  Correlator List head, so ``len(preds)`` may be < k).
  **precision@k** = planted hits / ``len(preds)`` (0 when empty);
  **recall@k** = planted hits / ``min(k, n planted successors)``.
  Both are macro-averaged over scored sources — every planted source
  counts equally, so a hot program can't mask a mis-mined cold one.
* **prefetch-hit rate**: over the post-warmup stream tail, the fraction
  of accesses found in the prefetch set (``predict(prev, k)``) of the
  immediately preceding access. The **oracle** rate replaces the mined
  set with the truth set's top-k; **headroom** = oracle − mined is how
  much planted signal the miner left unclaimed. Headroom goes
  *negative* when mining beats the plant-only oracle — the miner also
  learns real co-access structure the truth set doesn't enumerate
  (revisits, cross-run interleavings), which FARMER on these scenarios
  in fact does.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.errors import ConfigError
from repro.traces.record import TraceRecord
from repro.workloads.scenario import TruthSet, make_scenario

__all__ = [
    "KMetrics",
    "ScenarioReport",
    "mine_scenario",
    "score_miner",
    "evaluate_scenario",
    "evaluate_all",
    "check_floors",
    "ACCURACY_FLOORS",
    "DEFAULT_KS",
    "DEFAULT_EVENTS",
]

DEFAULT_KS: tuple[int, ...] = (1, 4)
DEFAULT_EVENTS = 6000
_MIN_SUPPORT = 3
_WARMUP_FRAC = 0.25

# The pinned per-scenario accuracy floors (single-shard Farmer, seed 0,
# 3000+ events). Measured values sit 0.04-0.10 above every floor across
# the 3000/4000/6000-event runs, so the slack absorbs event-count tuning
# but an accuracy regression in the miner (a broken blend, a truncated
# window, a mis-ranked list) trips them. Asserted by the tier-1 floor
# test, the workload benchmarks and the CI workload-eval job.
ACCURACY_FLOORS: dict[str, dict[str, float]] = {
    "zipfian_hotspot": {"precision_at_1": 0.93, "recall_at_4": 0.88},
    "pipeline": {"precision_at_1": 0.88, "recall_at_4": 0.75},
    "scan_storm": {"precision_at_1": 0.92, "recall_at_4": 0.78},
    "metadata_churn": {"precision_at_1": 0.82, "recall_at_4": 0.82},
    "multi_tenant": {"precision_at_1": 0.92, "recall_at_4": 0.88},
    "diurnal": {"precision_at_1": 0.92, "recall_at_4": 0.88},
}


@dataclass(frozen=True, slots=True)
class KMetrics:
    """Macro-averaged retrieval quality at one cut-off ``k``."""

    k: int
    precision: float
    recall: float


@dataclass(frozen=True, slots=True)
class ScenarioReport:
    """One scenario's full evaluation against its planted truth."""

    scenario: str
    n_events: int
    n_truth_pairs: int
    n_scored_sources: int
    metrics: tuple[KMetrics, ...]
    oracle_hit_rate: float
    mined_hit_rate: float

    @property
    def headroom(self) -> float:
        """Prefetch-hit rate the miner left on the table vs the oracle.

        Negative when the miner *beats* the plant-only oracle by also
        exploiting unplanted co-access structure.
        """
        return self.oracle_hit_rate - self.mined_hit_rate

    def at(self, k: int) -> KMetrics:
        """The metrics row for cut-off ``k``.

        Raises:
            ConfigError: when ``k`` was not evaluated.
        """
        for m in self.metrics:
            if m.k == k:
                return m
        raise ConfigError(f"no metrics at k={k} for {self.scenario!r}")

    def to_dict(self) -> dict:
        """Flat JSON-friendly form (the BENCH row payload)."""
        out: dict = {
            "scenario": self.scenario,
            "n_events": self.n_events,
            "n_truth_pairs": self.n_truth_pairs,
            "n_scored_sources": self.n_scored_sources,
            "oracle_hit_rate": round(self.oracle_hit_rate, 6),
            "mined_hit_rate": round(self.mined_hit_rate, 6),
            "headroom": round(self.headroom, 6),
        }
        for m in self.metrics:
            out[f"precision_at_{m.k}"] = round(m.precision, 6)
            out[f"recall_at_{m.k}"] = round(m.recall, 6)
        return out


def mine_scenario(
    records: Sequence[TraceRecord],
    config: FarmerConfig | None = None,
    *,
    n_shards: int = 1,
    online: bool = False,
):
    """Mine a scenario stream; returns an object with ``predict``.

    ``n_shards > 1`` mines through :class:`ShardedFarmer` (consistent
    echo semantics with the service); ``online=True`` goes the whole
    way — a :class:`~repro.online.agent.ReplayAgent` offering into a
    running :class:`~repro.online.pipeline.OnlineService` with an
    admission policy generous enough that nothing is shed, then a
    drain, so the result is the drain-equivalence batch state.
    """
    config = config if config is not None else FarmerConfig()
    if online:
        from repro.online.agent import ReplayAgent
        from repro.online.pipeline import AdmissionPolicy, OnlineService

        policy = AdmissionPolicy(
            capacity=max(len(records) + 1, 1024),
            echo_watermark=1.0,
            defer_watermark=1.0,
        )
        sharded = replace(config, n_shards=max(n_shards, 1))
        with OnlineService(sharded, policy=policy) as service:
            ReplayAgent(records).run(service)
            service.drain()
        return service.service
    if n_shards > 1:
        from repro.service.sharded import ShardedFarmer

        return ShardedFarmer(replace(config, n_shards=n_shards)).mine(records)
    return Farmer(config).mine(records)


def score_miner(
    miner,
    truth: TruthSet,
    records: Sequence[TraceRecord],
    *,
    scenario: str = "",
    ks: Sequence[int] = DEFAULT_KS,
    prefetch_k: int | None = None,
    min_support: int = _MIN_SUPPORT,
    warmup_frac: float = _WARMUP_FRAC,
) -> ScenarioReport:
    """Score any mined miner against a planted truth set.

    ``miner`` needs only ``predict(fid, k)`` — :class:`Farmer`,
    :class:`ShardedFarmer` and :class:`OnlineService` all qualify, which
    is exactly what the kernel-parity and sharded-equivalence tests
    exploit.
    """
    if not ks:
        raise ConfigError("score_miner needs at least one k")
    support = Counter(r.fid for r in records)
    scored = [
        src for src in truth.sources() if support[src] >= min_support
    ]
    metrics: list[KMetrics] = []
    for k in ks:
        p_sum = 0.0
        r_sum = 0.0
        for src in scored:
            planted = {p.dst for p in truth.successors(src)}
            preds = miner.predict(src, k)
            hits = sum(1 for fid in preds if fid in planted)
            p_sum += hits / len(preds) if preds else 0.0
            r_sum += hits / min(k, len(planted))
        n = len(scored) or 1
        metrics.append(KMetrics(k=k, precision=p_sum / n, recall=r_sum / n))

    # prefetch-hit rates over the stream tail: would the next access
    # have been in the prefetch set issued for the previous one?
    k_hit = (
        prefetch_k
        if prefetch_k is not None
        else getattr(getattr(miner, "config", None), "prefetch_k", None) or 4
    )
    fids = [r.fid for r in records]
    start = max(1, int(len(fids) * warmup_frac))
    n_pairs = 0
    oracle_hits = 0
    mined_hits = 0
    for i in range(start, len(fids)):
        prev, nxt = fids[i - 1], fids[i]
        if prev == nxt:
            continue  # a repeat is trivially cached, not a prefetch
        n_pairs += 1
        if nxt in truth.top(prev, k_hit):
            oracle_hits += 1
        if nxt in miner.predict(prev, k_hit):
            mined_hits += 1
    denom = n_pairs or 1
    return ScenarioReport(
        scenario=scenario,
        n_events=len(records),
        n_truth_pairs=len(truth),
        n_scored_sources=len(scored),
        metrics=tuple(metrics),
        oracle_hit_rate=oracle_hits / denom,
        mined_hit_rate=mined_hits / denom,
    )


def evaluate_scenario(
    name: str,
    n_events: int = DEFAULT_EVENTS,
    seed: int = 0,
    config: FarmerConfig | None = None,
    *,
    ks: Sequence[int] = DEFAULT_KS,
    n_shards: int = 1,
    online: bool = False,
    min_support: int = _MIN_SUPPORT,
) -> ScenarioReport:
    """Generate, mine and score one named scenario end to end."""
    instance = make_scenario(name, seed=seed)
    records = instance.generate(n_events)
    miner = mine_scenario(
        records, config, n_shards=n_shards, online=online
    )
    return score_miner(
        miner,
        instance.truth,
        records,
        scenario=name,
        ks=ks,
        min_support=min_support,
    )


def check_floors(
    report: ScenarioReport,
    floors: dict[str, dict[str, float]] | None = None,
) -> list[str]:
    """Accuracy-floor violations of one report (empty = all clear).

    Each violation is a human-readable string naming the scenario, the
    metric, the measured value and the floor — what the CI job prints
    before failing.
    """
    table = floors if floors is not None else ACCURACY_FLOORS
    row = report.to_dict()
    violations: list[str] = []
    for metric, floor in table.get(report.scenario, {}).items():
        value = row.get(metric)
        if value is None:
            violations.append(
                f"{report.scenario}: metric {metric!r} not evaluated "
                f"(floor {floor})"
            )
        elif value < floor:
            violations.append(
                f"{report.scenario}: {metric}={value:.3f} below floor {floor}"
            )
    return violations


def evaluate_all(
    names: Sequence[str] | None = None,
    n_events: int = DEFAULT_EVENTS,
    seed: int = 0,
    config: FarmerConfig | None = None,
    *,
    ks: Sequence[int] = DEFAULT_KS,
    n_shards: int = 1,
    online: bool = False,
) -> list[ScenarioReport]:
    """Evaluate every (or the named subset of) scenario(s)."""
    from repro.workloads.scenario import SCENARIO_NAMES

    return [
        evaluate_scenario(
            name,
            n_events=n_events,
            seed=seed,
            config=config,
            ks=ks,
            n_shards=n_shards,
            online=online,
        )
        for name in (names if names is not None else SCENARIO_NAMES)
    ]
