"""The scenario builders: six workloads with planted ground truth.

Every builder wires the same three primitives into a
:class:`~repro.workloads.scenario.ScenarioInstance`:

* :class:`PoolSource` — a zipf-popular pool of chain programs (built
  with :func:`~repro.traces.synthetic.programs.build_program`, so the
  binary/working-group split and the run-noise model are exactly the
  paper profiles'), whose truth is
  :func:`~repro.traces.synthetic.programs.planted_pairs`;
* :class:`ChainSource` — raw multi-segment file chains (pipelines,
  directory scans) where segments hand files across uids;
* :class:`MixFactory` — a :class:`~repro.traces.synthetic.workload.RunFactory`
  that draws each job from a weighted mix of sources, with optionally
  *scheduled* weights (the diurnal shift), feeding the standard
  interleaving :class:`~repro.traces.synthetic.workload.TraceEngine`.

Everything here is numpy-free: randomness comes from
:class:`~repro.workloads.prng.PureRng`, so the generated streams and
truth sets are identical across processes, interpreters and
``PYTHONHASHSEED`` settings — pinned by the determinism suite.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.config import DEFAULT_ATTRIBUTES
from repro.errors import ConfigError
from repro.traces.synthetic.namespace import Namespace, SyntheticFile
from repro.traces.synthetic.programs import (
    ProgramSpec,
    build_program,
    generate_run_sequence,
    planted_pairs,
)
from repro.traces.synthetic.workload import EngineParams, RunPlan, TraceEngine
from repro.workloads.prng import (
    PureRng,
    derive_prng,
    pick_weighted,
    zipf_cumulative,
)
from repro.workloads.scenario import (
    PlantedPair,
    ScenarioInstance,
    TruthSet,
    scenario_descriptions,
)

__all__ = [
    "NoiseSpec",
    "PoolSource",
    "ChainSource",
    "MixFactory",
    "BUILDERS",
    "TRUTH_DEPTH",
]

# planted look-ahead: successors up to 3 positions ahead are true
# correlates, matching the miner's default window (4) with one step of
# slack for interleaving
TRUTH_DEPTH = 3
_DECAY = 0.5


@dataclass(frozen=True, slots=True)
class NoiseSpec:
    """Run-sequence perturbation knobs shared by the sources."""

    order_noise: float = 0.1
    revisit_rate: float = 0.05
    truncate: float = 0.05
    subset: float = 1.0
    head_bias: float = 0.0


class PoolSource:
    """Zipf-popular pool of chain programs; one run per job.

    The pure-python analogue of the paper profiles'
    :class:`~repro.traces.synthetic.profiles.PoolFactory`, with the
    planted-truth hook attached: its ground truth is the union of every
    program's :func:`planted_pairs` within :data:`TRUTH_DEPTH`.
    """

    def __init__(
        self,
        entries: list[tuple[ProgramSpec, int | None]],
        user_hosts: dict[int, list[int]],
        noise: NoiseSpec,
        program_zipf_s: float = 1.0,
        user_zipf_s: float = 0.8,
    ) -> None:
        if not entries:
            raise ConfigError("PoolSource needs at least one program")
        self._entries = entries
        self._user_hosts = user_hosts
        self._users = sorted(user_hosts)
        self._noise = noise
        self._program_cum = zipf_cumulative(len(entries), program_zipf_s)
        self._user_cum = zipf_cumulative(len(self._users), user_zipf_s)

    def plan_runs(self, rng: PureRng) -> list[RunPlan]:
        """One run: program by popularity, eligible user, noisy sequence."""
        spec, owner = self._entries[pick_weighted(rng, self._program_cum)]
        uid = (
            owner
            if owner is not None
            else self._users[pick_weighted(rng, self._user_cum)]
        )
        hosts = self._user_hosts[uid]
        host = hosts[rng.integers(0, len(hosts))]
        files = generate_run_sequence(
            spec,
            rng,
            order_noise=self._noise.order_noise,
            revisit_rate=self._noise.revisit_rate,
            truncate=self._noise.truncate,
            subset=self._noise.subset,
            head_bias=self._noise.head_bias,
        )
        return [RunPlan(uid=uid, host=host, program_id=spec.program_id, files=files)]

    def truth_pairs(self) -> list[PlantedPair]:
        """Planted pairs of every program, derated by the order noise."""
        group_strength = max(0.05, 1.0 - self._noise.order_noise)
        return [
            PlantedPair(src=src, dst=dst, strength=strength)
            for spec, _ in self._entries
            for src, dst, strength in planted_pairs(
                spec,
                depth=TRUTH_DEPTH,
                decay=_DECAY,
                group_strength=group_strength,
            )
        ]


@dataclass(frozen=True, slots=True)
class Chain:
    """One planted file chain split into per-uid run segments.

    Consecutive segments share their boundary file (the producer's last
    access is the consumer's first — the handoff), so the chain's
    adjacency spans uids while every individual access stays inside one
    run.
    """

    chain_id: int
    segments: tuple[tuple[int, tuple[SyntheticFile, ...]], ...]  # (uid, files)
    hosts: tuple[int, ...]

    def files(self) -> list[SyntheticFile]:
        """The full chain in canonical order (handoff files deduped)."""
        out: list[SyntheticFile] = []
        for _, segment in self.segments:
            for f in segment:
                if not out or out[-1].fid != f.fid:
                    out.append(f)
        return out


class ChainSource:
    """Raw chains (pipelines, scans): one job = one run per segment."""

    def __init__(
        self,
        chains: list[Chain],
        noise: NoiseSpec,
        chain_zipf_s: float = 0.8,
    ) -> None:
        if not chains:
            raise ConfigError("ChainSource needs at least one chain")
        self._chains = chains
        self._noise = noise
        self._cum = zipf_cumulative(len(chains), chain_zipf_s)

    def plan_runs(self, rng: PureRng) -> list[RunPlan]:
        """One job: every segment of one chain as its own run."""
        chain = self._chains[pick_weighted(rng, self._cum)]
        plans: list[RunPlan] = []
        for uid, segment in chain.segments:
            files = list(segment)
            # interior adjacent swaps only: handoff boundaries stay exact
            i = 1
            while i < len(files) - 2:
                if rng.random() < self._noise.order_noise:
                    files[i], files[i + 1] = files[i + 1], files[i]
                    i += 2
                else:
                    i += 1
            if (
                self._noise.truncate > 0.0
                and len(files) > 2
                and rng.random() < self._noise.truncate
            ):
                files = files[: rng.integers(2, len(files))]
            host = chain.hosts[rng.integers(0, len(chain.hosts))]
            plans.append(
                RunPlan(
                    uid=uid, host=host, program_id=chain.chain_id, files=files
                )
            )
        return plans

    def truth_pairs(self) -> list[PlantedPair]:
        """Window-deep adjacency over each full chain, noise-derated."""
        strength = max(0.05, 1.0 - self._noise.order_noise)
        pairs: list[PlantedPair] = []
        for chain in self._chains:
            files = chain.files()
            for i in range(len(files) - 1):
                for d in range(1, min(TRUTH_DEPTH, len(files) - 1 - i) + 1):
                    pairs.append(
                        PlantedPair(
                            src=files[i].fid,
                            dst=files[i + d].fid,
                            strength=strength * _DECAY ** (d - 1),
                        )
                    )
        return pairs


class MixFactory:
    """RunFactory drawing each job from a weighted mix of sources.

    ``schedule`` (when given) maps the job index to per-source weights —
    the seam that turns a static multi-tenant mix into a diurnal shift
    without touching the engine. Weights need not be normalised.
    """

    def __init__(
        self,
        namespace: Namespace,
        sources: Sequence[PoolSource | ChainSource],
        weights: Sequence[float] | None = None,
        schedule: Callable[[int], Sequence[float]] | None = None,
    ) -> None:
        if not sources:
            raise ConfigError("MixFactory needs at least one source")
        if weights is not None and len(weights) != len(sources):
            raise ConfigError("MixFactory needs one weight per source")
        self.namespace = namespace
        self._sources = list(sources)
        self._weights = list(weights) if weights is not None else None
        self._schedule = schedule
        self._jobs = 0

    @property
    def jobs_planned(self) -> int:
        """Jobs drawn so far (the schedule's clock)."""
        return self._jobs

    def _cum_weights(self) -> list[float]:
        weights = (
            list(self._schedule(self._jobs))
            if self._schedule is not None
            else (self._weights or [1.0] * len(self._sources))
        )
        total = sum(weights)
        if total <= 0.0:
            raise ConfigError("MixFactory weights must sum to > 0")
        cum: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cum.append(acc)
        cum[-1] = 1.0
        return cum

    def next_runs(self, rng: PureRng) -> list[RunPlan]:
        """Plan the next job from the currently-weighted source."""
        if len(self._sources) == 1:
            source = self._sources[0]
        else:
            source = self._sources[pick_weighted(rng, self._cum_weights())]
        self._jobs += 1
        return source.plan_runs(rng)

    def truth(self) -> TruthSet:
        """The union of every source's planted pairs."""
        pairs: list[PlantedPair] = []
        for source in self._sources:
            pairs.extend(source.truth_pairs())
        return TruthSet(pairs)


def _instance(
    name: str,
    ns: Namespace,
    factory: MixFactory,
    params: EngineParams,
    seed: int,
) -> ScenarioInstance:
    """Wire a factory into an engine-backed scenario instance."""
    return ScenarioInstance(
        name=name,
        description=scenario_descriptions()[name],
        namespace=ns,
        engine=TraceEngine(factory, params, derive_prng(seed, f"{name}-engine")),
        params=params,
        truth=factory.truth(),
        attributes=DEFAULT_ATTRIBUTES,
    )


def _pool_programs(
    ns: Namespace,
    rng: PureRng,
    count: int,
    name_fmt: str,
    dir_fmt: str,
    size_lo: int,
    size_hi: int,
    bin_dir: str = "/usr/bin",
    owner: Callable[[int], int | None] = lambda p: None,
    dev: int = 0,
) -> list[tuple[ProgramSpec, int | None]]:
    """A pool of library-free chain programs with sized working groups.

    Library-free on purpose: shared libraries would plant *many* true
    successors per lib file and blur the answer key; each program's
    chain is private, so the truth per source stays crisp.
    """
    return [
        (
            build_program(
                ns,
                program_id=p,
                name=name_fmt.format(p=p),
                group_dir=dir_fmt.format(p=p),
                group_size=rng.integers(size_lo, size_hi + 1),
                libraries=[],
                bin_dir=bin_dir,
                dev=dev,
            ),
            owner(p),
        )
        for p in range(count)
    ]


def _build_zipfian_hotspot(seed: int) -> ScenarioInstance:
    """A hot head of chain programs dominates a zipf-popular pool."""
    rng = derive_prng(seed, "zipfian_hotspot-population")
    ns = Namespace()
    entries = _pool_programs(
        ns, rng, 16, "hot{p:02d}", "/data/app{p:02d}", 10, 14
    )
    user_hosts = {uid: [uid % 12] for uid in range(32)}
    source = PoolSource(
        entries,
        user_hosts,
        NoiseSpec(order_noise=0.08, revisit_rate=0.05, truncate=0.05),
        program_zipf_s=1.2,
        user_zipf_s=0.7,
    )
    params = EngineParams(
        concurrency=8,
        random_access_rate=0.02,
        stat_rate=0.1,
        burst_mean=4.0,
    )
    return _instance(
        "zipfian_hotspot", ns, MixFactory(ns, [source]), params, seed
    )


def _build_pipeline(seed: int) -> ScenarioInstance:
    """Producer/consumer stage chains handing files across uids."""
    rng = derive_prng(seed, "pipeline-population")
    ns = Namespace()
    chains: list[Chain] = []
    for p in range(12):
        raw = ns.create_many(
            f"/ingest/p{p:02d}",
            [f"raw{i}.dat" for i in range(rng.integers(3, 5))],
            size=4 * 1024 * 1024,
            read_only=True,
        )
        handoff = ns.create(f"/stage/p{p:02d}", "handoff.dat", size=1024 * 1024)
        work = ns.create_many(
            f"/work/p{p:02d}",
            [f"part{i}.tmp" for i in range(rng.integers(3, 5))],
        )
        final = ns.create(f"/out/p{p:02d}", "result.dat")
        producer = (10 + p, (*raw, handoff))
        consumer = (50 + p, (handoff, *work, final))
        chains.append(
            Chain(
                chain_id=p,
                segments=(producer, consumer),
                hosts=(p % 6, 6 + p % 6),
            )
        )
    source = ChainSource(
        chains, NoiseSpec(order_noise=0.05, truncate=0.05), chain_zipf_s=0.9
    )
    params = EngineParams(
        concurrency=8,
        random_access_rate=0.015,
        stat_rate=0.08,
        burst_mean=3.0,
    )
    return _instance("pipeline", ns, MixFactory(ns, [source]), params, seed)


def _build_scan_storm(seed: int) -> ScenarioInstance:
    """Concurrent whole-directory scans interleaving into one stream."""
    rng = derive_prng(seed, "scan_storm-population")
    ns = Namespace()
    chains: list[Chain] = []
    for d in range(10):
        files = ns.create_many(
            f"/export/vol{d:02d}",
            [f"obj{i:03d}" for i in range(rng.integers(18, 27))],
            dev=1 + d % 4,
        )
        # one of four scanner daemons walks the directory in order
        chains.append(
            Chain(
                chain_id=d,
                segments=((200 + d % 4, tuple(files)),),
                hosts=(d % 4,),
            )
        )
    source = ChainSource(
        chains, NoiseSpec(order_noise=0.0, truncate=0.1), chain_zipf_s=0.6
    )
    params = EngineParams(
        concurrency=14,
        random_access_rate=0.02,
        stat_rate=0.3,
        burst_mean=2.0,
    )
    return _instance("scan_storm", ns, MixFactory(ns, [source]), params, seed)


def _build_metadata_churn(seed: int) -> ScenarioInstance:
    """Many small per-task file sets, stat-heavy, short bursty runs."""
    rng = derive_prng(seed, "metadata_churn-population")
    ns = Namespace()
    entries = _pool_programs(
        ns,
        rng,
        60,
        "task{p:02d}",
        "/tasks/t{p:03d}",
        4,
        7,
        bin_dir="/opt/tools",
        dev=2,
    )
    user_hosts = {uid: [uid % 8] for uid in range(24)}
    source = PoolSource(
        entries,
        user_hosts,
        NoiseSpec(order_noise=0.1, revisit_rate=0.2, truncate=0.05),
        program_zipf_s=0.8,
        user_zipf_s=0.8,
    )
    params = EngineParams(
        concurrency=10,
        random_access_rate=0.02,
        stat_rate=0.55,
        burst_mean=2.5,
    )
    return _instance(
        "metadata_churn", ns, MixFactory(ns, [source]), params, seed
    )


def _tenant_pool(
    ns: Namespace,
    rng: PureRng,
    tenant: int,
    n_programs: int,
    noise: NoiseSpec,
) -> PoolSource:
    """One tenant: private programs, uids and hosts under its own tree."""
    entries = [
        (
            build_program(
                ns,
                program_id=tenant * 100 + p,
                name=f"t{tenant}app{p}",
                group_dir=f"/tenants/t{tenant}/app{p}",
                group_size=rng.integers(8, 13),
                libraries=[],
                bin_dir=f"/tenants/t{tenant}/bin",
                dev=tenant,
            ),
            None,
        )
        for p in range(n_programs)
    ]
    user_hosts = {
        tenant * 100 + u: [tenant * 4 + u % 4] for u in range(12)
    }
    return PoolSource(
        entries, user_hosts, noise, program_zipf_s=1.0, user_zipf_s=0.7
    )


def _build_multi_tenant(seed: int) -> ScenarioInstance:
    """Four tenants with skewed per-tenant arrival rates."""
    rng = derive_prng(seed, "multi_tenant-population")
    ns = Namespace()
    noise = NoiseSpec(order_noise=0.1, revisit_rate=0.05, truncate=0.08)
    tenants = [_tenant_pool(ns, rng, t, 6, noise) for t in range(4)]
    rates = (8.0, 4.0, 2.0, 1.0)  # per-tenant arrival-rate skew
    factory = MixFactory(ns, tenants, weights=rates)
    params = EngineParams(
        concurrency=10,
        random_access_rate=0.02,
        stat_rate=0.1,
        burst_mean=3.5,
    )
    return _instance("multi_tenant", ns, factory, params, seed)


def _build_diurnal(seed: int) -> ScenarioInstance:
    """Day/night tenant mix: the active population flips each half-period.

    The day tenant's namespace is created first (low fids) and the night
    tenant's second (high fids), so a range-partitioned service sees the
    load shift *between shards* — the regime ``auto_rebalance`` is meant
    to absorb.
    """
    rng = derive_prng(seed, "diurnal-population")
    ns = Namespace()
    noise = NoiseSpec(order_noise=0.1, revisit_rate=0.05, truncate=0.05)
    day = _tenant_pool(ns, rng, 0, 8, noise)
    night = _tenant_pool(ns, rng, 1, 8, noise)
    period = 240  # jobs per full day/night cycle (~3k events)

    def shift(job_index: int) -> tuple[float, float]:
        phase = (job_index % period) / period
        return (0.9, 0.1) if phase < 0.5 else (0.1, 0.9)

    factory = MixFactory(ns, [day, night], schedule=shift)
    params = EngineParams(
        concurrency=8,
        random_access_rate=0.02,
        stat_rate=0.1,
        burst_mean=3.5,
    )
    return _instance("diurnal", ns, factory, params, seed)


BUILDERS: dict[str, Callable[[int], ScenarioInstance]] = {
    "zipfian_hotspot": _build_zipfian_hotspot,
    "pipeline": _build_pipeline,
    "scan_storm": _build_scan_storm,
    "metadata_churn": _build_metadata_churn,
    "multi_tenant": _build_multi_tenant,
    "diurnal": _build_diurnal,
}
