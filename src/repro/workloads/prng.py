"""Pure-python deterministic PRNG for the scenario suite.

The four paper profiles draw from ``numpy.random.Generator``; the
scenario generators must also run on the no-numpy CI leg, and their
output must be identical across processes and ``PYTHONHASHSEED``
settings (a planted truth set that drifts between machines is not a
ground truth). :class:`PureRng` is a SplitMix64 stream exposing exactly
the duck-typed subset of the numpy generator API that
:class:`~repro.traces.synthetic.workload.TraceEngine` and
:func:`~repro.traces.synthetic.programs.generate_run_sequence` consume —
``random`` / ``integers`` / ``exponential`` / ``beta`` — so one engine
serves both generator families.

Streams are derived exactly like :func:`repro.utils.rng.derive_rng`:
from a root seed plus a stable string label, hashed with blake2b, so
independent scenario components never share a stream and a new
component never perturbs an existing one.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_right
from collections.abc import Sequence

__all__ = ["PureRng", "derive_prng", "zipf_cumulative", "pick_weighted"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
# 1/2^53: next_u64's top 53 bits give a uniform double in [0, 1)
_INV_2_53 = 2.0**-53


class PureRng:
    """A SplitMix64-backed stand-in for ``numpy.random.Generator``.

    Implements only what the trace engine and the run-sequence noise
    model call; every method consumes the stream deterministically, so
    a fixed ``(seed, label)`` reproduces the same scenario bit-for-bit
    in any process.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """The raw 64-bit SplitMix64 output (advances the stream)."""
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return (self.next_u64() >> 11) * _INV_2_53

    def integers(self, low: int, high: int | None = None) -> int:
        """Uniform integer in ``[low, high)`` (numpy half-open call shape).

        With ``high`` omitted the range is ``[0, low)``. The modulo
        reduction has negligible bias for the scenario-sized ranges
        (< 2^32) this suite draws from.
        """
        if high is None:
            low, high = 0, low
        if high <= low:
            raise ValueError("integers needs high > low")
        return low + self.next_u64() % (high - low)

    def exponential(self, scale: float = 1.0) -> float:
        """Exponential variate with mean ``scale`` (inter-arrival gaps)."""
        # 1 - random() is in (0, 1]: log never sees zero
        return -scale * math.log(1.0 - self.random())

    def beta(self, a: float, b: float) -> float:
        """Beta(a, b) variate.

        The common scenario cases (``a == 1`` or ``b == 1``) invert the
        CDF directly; the general case runs Johnk's algorithm, which is
        deterministic given the stream.
        """
        if a <= 0.0 or b <= 0.0:
            raise ValueError("beta needs a > 0 and b > 0")
        if a == 1.0:
            return 1.0 - (1.0 - self.random()) ** (1.0 / b)
        if b == 1.0:
            return self.random() ** (1.0 / a)
        while True:
            x = self.random() ** (1.0 / a)
            y = self.random() ** (1.0 / b)
            if x + y <= 1.0 and (x + y) > 0.0:
                return x / (x + y)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.integers(0, i + 1)
            items[i], items[j] = items[j], items[i]


def derive_prng(seed: int, label: str) -> PureRng:
    """Derive the component stream for ``label`` from a root ``seed``.

    Mirrors :func:`repro.utils.rng.derive_rng`'s (seed, label) contract
    without numpy: blake2b over the pair is stable across processes and
    interpreter hash randomization.
    """
    digest = hashlib.blake2b(
        f"{seed & 0xFFFFFFFF}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return PureRng(int.from_bytes(digest, "little"))


def zipf_cumulative(n: int, s: float) -> list[float]:
    """Cumulative Zipf(s) weights over ``n`` ranks (rank 0 most popular).

    The pure-python counterpart of
    :func:`repro.traces.synthetic.workload.zipf_weights`, in the
    cumulative form :func:`pick_weighted` consumes.
    """
    if n <= 0:
        raise ValueError("zipf_cumulative needs n >= 1")
    weights = [(rank + 1) ** (-s) for rank in range(n)]
    total = sum(weights)
    cum: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cum.append(acc)
    cum[-1] = 1.0  # guard against float drift at the tail
    return cum


def pick_weighted(rng: PureRng, cumulative: Sequence[float]) -> int:
    """Draw an index from a cumulative weight vector (sums to 1.0)."""
    return min(bisect_right(cumulative, rng.random()), len(cumulative) - 1)
