"""Scenario DSL core: planted ground truth + the instance contract.

Every scenario in this suite is a workload *with an answer key*. The HP
trace (and the four paper profiles) let the repo verify that kernels are
bit-identical to each other, but never that FARMER finds the
correlations that actually exist — nothing records which adjacencies
were planted. A :class:`ScenarioInstance` therefore carries two outputs
side by side:

* a ``TraceRecord`` stream, produced by the same interleaving
  :class:`~repro.traces.synthetic.workload.TraceEngine` the paper
  profiles use (so the stream has realistic multi-process pollution),
  and
* a machine-readable :class:`TruthSet` — the planted successor pairs
  with their expected relative strengths — against which
  :mod:`repro.workloads.eval` scores mined Correlator Lists with
  precision@k / recall@k and prefetch-hit headroom.

Scenarios are looked up by name through :func:`make_scenario`; the
builders themselves live in :mod:`repro.workloads.generators` and are
composed from shared primitives (tenant pools, phase schedules, chain
programs), so new scenarios are a few lines of composition rather than
a new engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.traces.record import TraceRecord
from repro.traces.synthetic.namespace import Namespace

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.traces.synthetic.workload import EngineParams, TraceEngine

__all__ = [
    "PlantedPair",
    "TruthSet",
    "ScenarioInstance",
    "SCENARIO_NAMES",
    "make_scenario",
    "generate_scenario",
    "scenario_descriptions",
]


@dataclass(frozen=True, slots=True)
class PlantedPair:
    """One planted correlation: ``dst`` truly follows ``src``.

    ``strength`` is the *expected relative* strength in ``(0, 1]`` —
    how reliably the generator emits ``dst`` after ``src`` relative to
    the scenario's strongest plants. It orders the oracle's candidate
    ranking; it is not a calibrated probability.
    """

    src: int
    dst: int
    strength: float


class TruthSet:
    """The planted successor pairs of one scenario, indexed by source.

    The set is machine-readable (:meth:`to_json` / :meth:`from_json`)
    so evaluation runs can persist the answer key next to BENCH rows,
    and composable (:meth:`union`) so multi-tenant scenarios merge
    their tenants' plants.
    """

    __slots__ = ("_by_src", "_n_pairs")

    def __init__(self, pairs: list[PlantedPair] | tuple[PlantedPair, ...]) -> None:
        by_src: dict[int, list[PlantedPair]] = {}
        seen: set[tuple[int, int]] = set()
        n_pairs = 0
        for pair in pairs:
            if not 0.0 < pair.strength <= 1.0:
                raise ConfigError(
                    f"planted strength must be in (0, 1]: {pair}"
                )
            if pair.src == pair.dst:
                raise ConfigError(f"self-correlation planted: {pair}")
            key = (pair.src, pair.dst)
            if key in seen:
                continue  # first plant wins; unions overlap legitimately
            seen.add(key)
            by_src.setdefault(pair.src, []).append(pair)
            n_pairs += 1
        # strongest first, fid-ascending tie-break: the oracle's ranking
        # must be deterministic and hash-seed independent
        self._by_src = {
            src: tuple(sorted(plist, key=lambda p: (-p.strength, p.dst)))
            for src, plist in sorted(by_src.items())
        }
        self._n_pairs = n_pairs

    def sources(self) -> tuple[int, ...]:
        """All fids with at least one planted successor, ascending."""
        return tuple(self._by_src)

    def successors(self, src: int) -> tuple[PlantedPair, ...]:
        """Planted successors of ``src``, strongest first."""
        return self._by_src.get(src, ())

    def top(self, src: int, k: int) -> list[int]:
        """The oracle's prefetch answer: top-``k`` planted successor fids."""
        return [p.dst for p in self._by_src.get(src, ())[:k]]

    def expected(self, src: int, dst: int) -> float:
        """Planted strength of ``(src, dst)``; 0.0 when not planted."""
        for pair in self._by_src.get(src, ()):
            if pair.dst == dst:
                return pair.strength
        return 0.0

    def __contains__(self, edge: tuple[int, int]) -> bool:
        src, dst = edge
        return any(p.dst == dst for p in self._by_src.get(src, ()))

    def __len__(self) -> int:
        return self._n_pairs

    def union(self, *others: "TruthSet") -> "TruthSet":
        """Merge truth sets (tenant composition); first plant wins."""
        pairs: list[PlantedPair] = [
            p for plist in self._by_src.values() for p in plist
        ]
        for other in others:
            pairs.extend(p for plist in other._by_src.values() for p in plist)
        return TruthSet(pairs)

    def to_json(self) -> str:
        """Serialise as one JSON object: ``{src: [[dst, strength], ...]}``."""
        payload = {
            str(src): [[p.dst, p.strength] for p in plist]
            for src, plist in self._by_src.items()
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TruthSet":
        """Rebuild a truth set written by :meth:`to_json`."""
        payload = json.loads(text)
        pairs = [
            PlantedPair(src=int(src), dst=int(dst), strength=float(strength))
            for src, plist in payload.items()
            for dst, strength in plist
        ]
        return cls(pairs)


@dataclass(slots=True)
class ScenarioInstance:
    """A fully wired scenario: stream generator + answer key.

    ``generate`` is stateful and resumable, exactly like
    :class:`~repro.traces.synthetic.profiles.Workload`: calling it twice
    continues the same interleaved stream, which is how the diurnal
    rebalance tests mine one phase at a time.
    """

    name: str
    description: str
    namespace: Namespace
    engine: "TraceEngine"
    params: "EngineParams"
    truth: TruthSet
    attributes: tuple[str, ...]

    def generate(self, n_events: int) -> list[TraceRecord]:
        """Produce the next ``n_events`` interleaved trace records."""
        return self.engine.generate(n_events)


# name -> one-line description; the builder registry itself lives in
# generators.py and is imported lazily so `import repro.workloads`
# stays cheap and numpy-free
_DESCRIPTIONS: dict[str, str] = {
    "zipfian_hotspot": (
        "a small hot set of chain programs dominates a zipf-popular pool"
    ),
    "pipeline": (
        "producer/consumer stage chains handing files across directories "
        "and uids"
    ),
    "scan_storm": (
        "concurrent whole-directory scans interleaving into one stream"
    ),
    "metadata_churn": (
        "many small per-task file sets, stat-heavy, short bursty runs"
    ),
    "multi_tenant": (
        "four tenants with skewed per-tenant arrival rates over private "
        "trees"
    ),
    "diurnal": (
        "two tenant populations whose activity share shifts across the "
        "stream (day/night), skewing per-shard load"
    ),
}

SCENARIO_NAMES: tuple[str, ...] = tuple(_DESCRIPTIONS)


def scenario_descriptions() -> dict[str, str]:
    """``{name: one-line description}`` for every registered scenario."""
    return dict(_DESCRIPTIONS)


def make_scenario(name: str, seed: int = 0) -> ScenarioInstance:
    """Build a named scenario (see :data:`SCENARIO_NAMES`).

    Raises:
        ConfigError: for an unknown scenario name.
    """
    from repro.workloads import generators

    try:
        builder = generators.BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
        ) from None
    return builder(seed)


def generate_scenario(
    name: str, n_events: int, seed: int = 0
) -> tuple[list[TraceRecord], TruthSet]:
    """Generate ``n_events`` records of a named scenario plus its truth."""
    instance = make_scenario(name, seed=seed)
    return instance.generate(n_events), instance.truth
