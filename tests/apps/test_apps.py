"""Tests for the §4.2/§4.3 applications (layout, grouping, security)."""

import pytest

from repro.apps.grouping import SecurityRulePropagator, build_replica_groups
from repro.apps.layout import (
    evaluate_layout,
    plan_arrival_layout,
    plan_correlation_layout,
)
from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from tests.conftest import sequence_records


@pytest.fixture
def mined_farmer():
    """Two strongly correlated triples with distinct semantic contexts."""
    farmer = Farmer(FarmerConfig(max_strength=0.0))
    for r in sequence_records([1, 2, 3] * 15, uid=1, pid=5, host=1, path="/a/x"):
        farmer.observe(r)
    for r in sequence_records([7, 8, 9] * 15, uid=2, pid=6, host=2, path="/b/y"):
        farmer.observe(r)
    return farmer


class TestArrivalLayout:
    def test_first_access_order_dedup(self):
        plan = plan_arrival_layout([3, 1, 3, 2, 1])
        assert plan.placement_order() == [3, 1, 2]
        assert plan.n_groups == 3


class TestCorrelationLayout:
    def test_groups_correlated_files(self, mined_farmer):
        plan = plan_correlation_layout(
            [1, 2, 3, 7, 8, 9], mined_farmer, lambda fid: True, group_limit=3
        )
        first_group = plan.groups[0]
        assert first_group[0] == 1
        assert set(first_group) <= {1, 2, 3}
        assert len(first_group) > 1

    def test_mutable_files_alone(self, mined_farmer):
        plan = plan_correlation_layout(
            [1, 2, 3], mined_farmer, lambda fid: False, group_limit=4
        )
        assert all(len(g) == 1 for g in plan.groups)

    def test_no_double_placement(self, mined_farmer):
        plan = plan_correlation_layout(
            [1, 2, 3, 7, 8, 9, 1, 2], mined_farmer, lambda fid: True
        )
        order = plan.placement_order()
        assert len(order) == len(set(order))

    def test_group_limit_enforced(self, mined_farmer):
        plan = plan_correlation_layout(
            [1, 2, 3], mined_farmer, lambda fid: True, group_limit=2
        )
        assert all(len(g) <= 2 for g in plan.groups)

    def test_group_limit_validation(self, mined_farmer):
        with pytest.raises(ValueError):
            plan_correlation_layout([1], mined_farmer, lambda f: True, group_limit=0)


class TestEvaluateLayout:
    def test_grouped_layout_fewer_seeks(self, mined_farmer):
        order = [1, 2, 3, 7, 8, 9]
        sizes = {fid: 4096 for fid in order}
        batches = [[1, 2, 3], [7, 8, 9]] * 10
        arrival = evaluate_layout(plan_arrival_layout([1, 7, 2, 8, 3, 9]), batches, sizes)
        grouped = evaluate_layout(
            plan_correlation_layout(order, mined_farmer, lambda f: True, group_limit=3),
            batches,
            sizes,
        )
        assert grouped.total_seeks < arrival.total_seeks
        assert grouped.total_latency_ns < arrival.total_latency_ns

    def test_unknown_files_skipped(self, mined_farmer):
        ev = evaluate_layout(plan_arrival_layout([1]), [[99]], {1: 1024})
        assert ev.n_batches == 0
        assert ev.mean_seeks_per_batch != ev.mean_seeks_per_batch  # NaN


class TestReplicaGroups:
    def test_strong_pairs_grouped(self, mined_farmer):
        groups = build_replica_groups(
            mined_farmer, [1, 2, 3, 7, 8, 9], min_strength=0.3, max_group_size=4
        )
        assert groups.group_of[1] == groups.group_of[2]
        assert groups.group_of[1] != groups.group_of[7]
        assert set(groups.group_members(7)) <= {7, 8, 9}

    def test_size_cap(self, mined_farmer):
        groups = build_replica_groups(
            mined_farmer, [1, 2, 3, 7, 8, 9], min_strength=0.1, max_group_size=2
        )
        assert all(len(m) <= 2 for m in groups.members.values())

    def test_singletons_without_strength(self, mined_farmer):
        groups = build_replica_groups(
            mined_farmer, [1, 2, 3], min_strength=1.0, max_group_size=8
        )
        assert groups.n_groups == 3

    def test_validation(self, mined_farmer):
        with pytest.raises(ValueError):
            build_replica_groups(mined_farmer, [1], max_group_size=0)


class TestSecurityPropagation:
    def test_rule_reaches_correlates(self, mined_farmer):
        prop = SecurityRulePropagator(mined_farmer, min_strength=0.3, max_hops=1)
        covered = prop.assign(1, "no-delete")
        assert 1 in covered
        assert covered & {2, 3}
        assert "no-delete" in prop.rules_of(1)

    def test_does_not_cross_weak_links(self, mined_farmer):
        prop = SecurityRulePropagator(mined_farmer, min_strength=0.3, max_hops=2)
        covered = prop.assign(1, "rule")
        assert 7 not in covered  # different group, no strong edge

    def test_zero_hops_only_self(self, mined_farmer):
        prop = SecurityRulePropagator(mined_farmer, min_strength=0.0, max_hops=0)
        assert prop.assign(1, "r") == {1}

    def test_rules_accumulate(self, mined_farmer):
        prop = SecurityRulePropagator(mined_farmer, min_strength=0.3)
        prop.assign(1, "a")
        prop.assign(1, "b")
        assert prop.rules_of(1) == {"a", "b"}
        assert prop.rules_of(999) == set()
