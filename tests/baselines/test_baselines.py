"""Tests for the baseline predictors."""

import pytest

from repro.baselines import (
    FirstSuccessor,
    LastSuccessor,
    Nexus,
    NoopPredictor,
    ProbabilityGraph,
    ProgramBasedSuccessor,
    ProgramUserLastSuccessor,
    RecentPopularity,
    SDGraph,
    StableSuccessor,
    make_predictor,
    observe_all,
    predictor_names,
)
from repro.errors import ConfigError
from tests.conftest import make_record, sequence_records


class TestLastSuccessor:
    def test_predicts_last(self):
        p = observe_all(LastSuccessor(), sequence_records([1, 2, 1, 3]))
        assert p.predict(1) == [3]

    def test_unknown_empty(self):
        assert LastSuccessor().predict(9) == []

    def test_self_succession_ignored(self):
        p = observe_all(LastSuccessor(), sequence_records([1, 1, 2]))
        assert p.predict(1) == [2]

    def test_k_zero(self):
        p = observe_all(LastSuccessor(), sequence_records([1, 2]))
        assert p.predict(1, k=0) == []


class TestFirstSuccessor:
    def test_never_changes(self):
        p = observe_all(FirstSuccessor(), sequence_records([1, 2, 1, 3, 1, 4]))
        assert p.predict(1) == [2]


class TestStableSuccessor:
    def test_requires_patience(self):
        p = StableSuccessor(patience=2)
        observe_all(p, sequence_records([1, 2]))
        assert p.predict(1) == [2]
        observe_all(p, sequence_records([1, 3]))  # one deviation: keep 2
        assert p.predict(1) == [2]
        observe_all(p, sequence_records([1, 3]))  # second in a row: switch
        assert p.predict(1) == [3]

    def test_deviation_reset_on_confirmation(self):
        p = StableSuccessor(patience=2)
        observe_all(p, sequence_records([1, 2, 1, 3, 1, 2, 1, 3]))
        assert p.predict(1) == [2]

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            StableSuccessor(patience=0)


class TestRecentPopularity:
    def test_best_j_of_k(self):
        p = RecentPopularity(j=2, k=4)
        observe_all(p, sequence_records([1, 2, 1, 3, 1, 2, 1, 4]))
        # recent successors of 1: [2, 3, 2, 4]; only 2 qualifies (j=2)
        assert p.predict(1) == [2]

    def test_no_qualifier(self):
        p = RecentPopularity(j=2, k=4)
        observe_all(p, sequence_records([1, 2, 1, 3]))
        assert p.predict(1) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RecentPopularity(j=3, k=2)
        with pytest.raises(ValueError):
            RecentPopularity(j=0, k=2)


class TestProbabilityGraph:
    def test_chance(self):
        p = ProbabilityGraph(window=1, min_chance=0.0)
        observe_all(p, sequence_records([1, 2, 1, 2, 1, 3]))
        assert p.chance(1, 2) == pytest.approx(2 / 3)
        assert p.chance(1, 3) == pytest.approx(1 / 3)

    def test_min_chance_filters(self):
        p = ProbabilityGraph(window=1, min_chance=0.5)
        observe_all(p, sequence_records([1, 2, 1, 2, 1, 3, 1, 4]))
        assert p.predict(1, k=4) == [2]

    def test_window_counts_uniformly(self):
        p = ProbabilityGraph(window=3, min_chance=0.0)
        observe_all(p, sequence_records([1, 2, 3, 4]))
        # 2, 3 and 4 all follow 1 within the window, equally weighted
        assert p.chance(1, 2) == p.chance(1, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilityGraph(window=0)
        with pytest.raises(ValueError):
            ProbabilityGraph(min_chance=1.5)


class TestSDGraph:
    def test_relatedness_decays_with_distance(self):
        p = SDGraph(horizon=5)
        observe_all(p, sequence_records([1, 2, 9, 9, 9]))
        observe_all(p, sequence_records([1, 8, 8, 8, 3]))
        assert p.relatedness(1, 2) > p.relatedness(1, 3)

    def test_predict_orders_by_proximity(self):
        p = SDGraph(horizon=4)
        observe_all(p, sequence_records([1, 2, 3] * 10))
        assert p.predict(1, k=2)[0] == 2

    def test_unseen(self):
        assert SDGraph().predict(5) == []
        assert SDGraph().relatedness(1, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SDGraph(horizon=0)


class TestNexus:
    def test_lda_weighting(self):
        p = Nexus(window=3)
        observe_all(p, sequence_records([1, 2, 3, 4]))
        assert p.edge_weight(1, 2) == pytest.approx(1.0)
        assert p.edge_weight(1, 3) == pytest.approx(0.9)
        assert p.edge_weight(1, 4) == pytest.approx(0.8)

    def test_predicts_top_by_weight(self):
        p = Nexus(window=1)
        observe_all(p, sequence_records([1, 2, 1, 2, 1, 3]))
        assert p.predict(1, k=2) == [2, 3]

    def test_group_size_default(self):
        p = Nexus(group_size=3)
        observe_all(p, sequence_records([1, 2, 3, 4, 5, 1, 2, 3, 4, 5]))
        assert len(p.predict(1)) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Nexus(group_size=0)

    def test_approx_bytes(self):
        p = Nexus()
        observe_all(p, sequence_records(range(50)))
        assert p.approx_bytes() > 0


class TestPBS:
    def test_conditioned_on_pid(self):
        p = ProgramBasedSuccessor()
        # pid 1 runs 1->2, pid 2 runs 1->3, interleaved
        p.observe(make_record(1, pid=1))
        p.observe(make_record(1, pid=2))
        p.observe(make_record(2, pid=1))
        p.observe(make_record(3, pid=2))
        # fid 1 last seen under pid 2 -> successor 3
        assert p.predict(1) == [3]

    def test_unknown(self):
        assert ProgramBasedSuccessor().predict(1) == []


class TestPULS:
    def test_conditioned_on_pid_and_uid(self):
        p = ProgramUserLastSuccessor()
        p.observe(make_record(1, pid=1, uid=1))
        p.observe(make_record(2, pid=1, uid=1))
        p.observe(make_record(1, pid=1, uid=2))
        p.observe(make_record(5, pid=1, uid=2))
        assert p.predict(1) == [5]  # last condition was (pid 1, uid 2)


class TestNoop:
    def test_never_predicts(self):
        p = observe_all(NoopPredictor(), sequence_records([1, 2, 3]))
        assert p.predict(1, k=10) == []


class TestRegistry:
    def test_all_names_constructible(self):
        for name in predictor_names():
            predictor = make_predictor(name)
            observe_all(predictor, sequence_records([1, 2, 3, 1, 2, 3]))
            predictor.predict(1, 2)  # must not raise

    def test_expected_names(self):
        names = predictor_names()
        for expected in ("nexus", "last_successor", "probability_graph", "noop"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_predictor("oracle")

    def test_kwargs_forwarded(self):
        p = make_predictor("nexus", group_size=7)
        assert p.group_size == 7
