"""Shared fixtures: small deterministic traces and record builders."""

from __future__ import annotations

import pytest

from repro.traces.record import TraceRecord

# The synthetic generators (and the experiments' trace cache) are
# numpy-backed. Import them lazily so the numpy-free test subset (see
# the no-numpy CI leg) can collect and run this conftest on a bare
# interpreter; fixtures that need a generated trace import on first use.


def generate_trace(*args, **kwargs):
    from repro.traces.synthetic import generate_trace as gen

    return gen(*args, **kwargs)


def make_record(
    fid: int,
    ts: int = 0,
    uid: int = 1,
    pid: int = 100,
    host: int = 1,
    path: str | None = None,
    op: str = "open",
    size: int = 0,
    dev: int = 0,
) -> TraceRecord:
    """Terse record builder for unit tests."""
    return TraceRecord(
        ts=ts, fid=fid, uid=uid, pid=pid, host=host, path=path, op=op, size=size, dev=dev
    )


def sequence_records(fids, **kwargs) -> list[TraceRecord]:
    """Records for a plain fid sequence with increasing timestamps."""
    return [make_record(fid, ts=i * 1000, **kwargs) for i, fid in enumerate(fids)]


# one shared generate-or-reuse cache for the whole session: the same
# helper the experiments use, so a test session that drives both the
# service suites and service_experiment.run holds each big trace once.
# The service/property suites share several 20k-record traces across
# modules (~0.2s a generation); use this (or the ``synthetic_trace``
# fixture) instead of calling ``generate_trace`` directly for any trace
# of more than a few thousand records.
def cached_trace(*args, **kwargs):
    from repro.experiments.common import cached_trace as cached

    return cached(*args, **kwargs)


@pytest.fixture(scope="session")
def synthetic_trace():
    """Factory fixture over the session trace cache:
    ``synthetic_trace("hp", 20_000, seed=13)``."""
    return cached_trace


# same generate-once discipline for the planted-truth scenarios: the
# workload suites (floors, kernel parity, eval unit tests) score the
# same streams, so each (name, events, seed) is generated exactly once
# per session. Numpy-free: safe for the no-numpy test subset.
_SCENARIO_CACHE: dict[tuple, tuple] = {}


def cached_scenario(name: str, n_events: int = 3000, seed: int = 0):
    """``(records, truth)`` of a named scenario, cached per session."""
    key = (name, n_events, seed)
    if key not in _SCENARIO_CACHE:
        from repro.workloads import make_scenario

        instance = make_scenario(name, seed=seed)
        _SCENARIO_CACHE[key] = (instance.generate(n_events), instance.truth)
    return _SCENARIO_CACHE[key]


@pytest.fixture(scope="session")
def scenario_trace():
    """Factory fixture over the session scenario cache:
    ``scenario_trace("pipeline", 3000) -> (records, truth)``."""
    return cached_scenario


@pytest.fixture(scope="session")
def hp_trace_20k():
    """The canonical 20k-record HP trace (seed 13) the acceptance
    properties share: single-shard equivalence, rebalance from-scratch
    identity, and the replication failover suite all mine this
    workload."""
    return cached_trace("hp", 20_000, 13)


@pytest.fixture(scope="session")
def hp_trace():
    """A small deterministic HP trace shared across tests."""
    return generate_trace("hp", 1500, seed=7)


@pytest.fixture(scope="session")
def ins_trace():
    """A small deterministic INS trace (no paths)."""
    return generate_trace("ins", 1500, seed=7)


@pytest.fixture(scope="session")
def res_trace():
    """A small deterministic RES trace (no paths)."""
    return generate_trace("res", 1500, seed=7)


@pytest.fixture(scope="session")
def llnl_trace():
    """A small deterministic LLNL trace."""
    return generate_trace("llnl", 1500, seed=7)
