"""Shared fixtures: small deterministic traces and record builders."""

from __future__ import annotations

import pytest

from repro.traces.record import TraceRecord
from repro.traces.synthetic import generate_trace


def make_record(
    fid: int,
    ts: int = 0,
    uid: int = 1,
    pid: int = 100,
    host: int = 1,
    path: str | None = None,
    op: str = "open",
    size: int = 0,
    dev: int = 0,
) -> TraceRecord:
    """Terse record builder for unit tests."""
    return TraceRecord(
        ts=ts, fid=fid, uid=uid, pid=pid, host=host, path=path, op=op, size=size, dev=dev
    )


def sequence_records(fids, **kwargs) -> list[TraceRecord]:
    """Records for a plain fid sequence with increasing timestamps."""
    return [make_record(fid, ts=i * 1000, **kwargs) for i, fid in enumerate(fids)]


@pytest.fixture(scope="session")
def hp_trace():
    """A small deterministic HP trace shared across tests."""
    return generate_trace("hp", 1500, seed=7)


@pytest.fixture(scope="session")
def ins_trace():
    """A small deterministic INS trace (no paths)."""
    return generate_trace("ins", 1500, seed=7)


@pytest.fixture(scope="session")
def res_trace():
    """A small deterministic RES trace (no paths)."""
    return generate_trace("res", 1500, seed=7)


@pytest.fixture(scope="session")
def llnl_trace():
    """A small deterministic LLNL trace."""
    return generate_trace("llnl", 1500, seed=7)
