"""Array-kernel specifics beyond the shared equivalence matrix.

``tests/core/test_rerank_kernel.py`` already runs the array kernel
through every cross-kernel equivalence property. This module pins the
machinery that is *unique* to the flat/vectorized path:

* the rank-record full skip (and its bulk-kernel sibling, the
  whole-list epoch skip) — the satellite regression for
  ``RerankStats.entries_skipped_unchanged``;
* rank-record reuse under vector churn (per-entry version validation);
* the partial-select top-k cut (``rebuild_arrays`` vs ``rebuild``),
  including exact boundary-tie handling;
* ``VectorStore.update_batch`` ≡ the per-record update loop (vectors
  *and* version trajectories), across policies and the path-probe edge
  case;
* config variants that leave the inlined Function-1 fast path
  (dpa / prefix mode / degenerate weights).
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.graph.correlator_list import CorrelatorList
from repro.traces.synthetic import generate_trace
from tests.conftest import make_record


def _assert_second_rank_skips_whole_list(config: FarmerConfig) -> None:
    """mine → dirty+query (primes the skip state) → dirty+query again:
    the second rank must skip the full candidate scan, advancing
    ``entries_skipped_unchanged`` by exactly the successor count while
    serving the identical list."""
    trace = generate_trace("hp", 2_000, seed=17)
    farmer = Farmer(config)
    farmer.mine(trace)
    node_map = farmer.constructor.graph.node_map()
    fid = max(node_map, key=lambda g: len(node_map[g].succ_fids))
    d = len(node_map[fid].succ_fids)
    assert d > 0
    farmer.miner.mark_dirty(fid)
    first = farmer.correlators(fid)
    farmer.miner.mark_dirty(fid)
    before = farmer.rerank_stats()
    again = farmer.correlators(fid)
    after = farmer.rerank_stats()
    assert again == first
    assert after.n_reevaluations - before.n_reevaluations == 1
    assert after.entries_scanned - before.entries_scanned == d
    assert after.entries_skipped_unchanged - before.entries_skipped_unchanged == d


class TestFullSkip:
    def test_array_rank_record_full_skip(self):
        """The array kernel's rank record proves the whole list
        unchanged (node tick + vector epoch) and skips the scan."""
        _assert_second_rank_skips_whole_list(
            FarmerConfig(rerank_kernel="array")
        )

    def test_bulk_whole_list_epoch_skip(self):
        """The bulk kernel's epoch stamp does the same without numpy."""
        _assert_second_rank_skips_whole_list(
            FarmerConfig(rerank_kernel="bulk", incremental_rerank=True)
        )

    def test_skip_invalidated_by_vector_churn(self):
        """A vector-store epoch move disarms the full skip: the next
        rank rescans instead of serving the stale record."""
        farmer = Farmer(
            FarmerConfig(
                rerank_kernel="array", sv_policy="latest", max_strength=0.0
            )
        )
        for i in range(6):
            farmer.observe(make_record(1, uid=1, pid=1, host=1, ts=2 * i))
            farmer.observe(make_record(2, uid=1, pid=1, host=1, ts=2 * i + 1))
        farmer.miner.mark_dirty(1)
        farmer.correlators(1)  # record now primed
        # churn fid 2's vector (new uid/pid/host => new scalar ids)
        farmer.observe(make_record(2, uid=9, pid=9, host=9, ts=100))
        farmer.miner.mark_dirty(1)
        before = farmer.rerank_stats()
        after_list = {e.fid: e.degree for e in farmer.correlators(1)}
        stats = farmer.rerank_stats()
        assert stats.entries_skipped_unchanged == before.entries_skipped_unchanged
        assert after_list[2] == pytest.approx(farmer.correlation_degree(1, 2))


class TestRecordReuseEquivalence:
    def test_vector_churn_interleaved_queries(self):
        """Per-entry record reuse under the churny "latest" policy stays
        bit-identical to the plain bulk oracle at every query point."""
        trace = generate_trace("hp", 6_000, seed=29)
        common = dict(max_strength=0.0, sv_policy="latest", weight_p=0.9)
        fa = Farmer(FarmerConfig(rerank_kernel="array", **common))
        fb = Farmer(
            FarmerConfig(
                rerank_kernel="bulk", incremental_rerank=False, **common
            )
        )
        for i, record in enumerate(trace):
            fa.observe(record)
            fb.observe(record)
            assert fa.correlators(record.fid) == fb.correlators(record.fid), i
        assert fa.snapshot() == fb.snapshot()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(path_method="dpa"),
            dict(path_mode="prefix"),
            dict(weight_p=1.0),
            dict(weight_p=0.0),
            dict(vector_freeze_threshold=4),
        ],
        ids=["dpa", "prefix", "p=1", "p=0", "freeze"],
    )
    def test_off_fast_path_configs(self, overrides):
        """Configs that bypass the inlined IPA-bag fast path (dpa,
        prefix mode) or degenerate the Function-2 blend still agree
        with the oracle."""
        trace = generate_trace("hp", 3_000, seed=31)
        common = dict(max_strength=0.0)
        common.update(overrides)
        fa = Farmer(FarmerConfig(rerank_kernel="array", **common))
        fb = Farmer(
            FarmerConfig(
                rerank_kernel="bulk", incremental_rerank=False, **common
            )
        )
        for i, record in enumerate(trace):
            fa.observe(record)
            fb.observe(record)
            assert fa.predict(record.fid) == fb.predict(record.fid), i
        fids = set(fb.constructor.graph.nodes())
        assert set(fa.constructor.graph.nodes()) == fids
        for fid in fids:
            assert fa.correlators(fid) == fb.correlators(fid)


class TestPartialSelect:
    @pytest.mark.parametrize("seed", range(6))
    def test_rebuild_arrays_matches_rebuild(self, seed):
        """Direct unit equivalence, with a tiny degree pool so the
        capacity boundary almost always lands on an exact-tie plateau
        (the fid-ordered tie fill is the delicate part)."""
        rng = random.Random(seed)
        n = rng.choice([3, 63, 64, 65, 200, 500])
        fids = rng.sample(range(100_000), n)
        pool = [round(rng.random(), 2) for _ in range(5)]
        degrees = [rng.choice(pool) for _ in fids]
        np_fids = np.array(fids, dtype=np.int64)
        np_degrees = np.array(degrees, dtype=np.float64)
        for capacity in (1, 4, 16, 64, 600):
            for threshold in (0.0, 0.5):
                a = CorrelatorList(threshold=threshold, capacity=capacity)
                a.rebuild(zip(fids, degrees))
                b = CorrelatorList(threshold=threshold, capacity=capacity)
                b.rebuild_arrays(np_fids, np_degrees)
                assert a.entries() == b.entries(), (capacity, threshold)
                assert a._degrees == b._degrees

    def test_rebuild_arrays_all_below_threshold(self):
        lst = CorrelatorList(threshold=0.9, capacity=4)
        lst.rebuild_arrays(
            np.arange(100, dtype=np.int64), np.full(100, 0.5)
        )
        assert lst.entries() == []
        assert len(lst) == 0

    def test_wide_nodes_end_to_end(self):
        """High successor capacity with a tight list capacity drives
        the d >= cutoff rebuild_arrays path inside the array kernel;
        output must still match the bulk oracle."""
        trace = generate_trace("hp", 12_000, seed=37)
        common = dict(
            max_strength=0.0, successor_capacity=256, correlator_capacity=8
        )
        fa = Farmer(FarmerConfig(rerank_kernel="array", **common))
        fb = Farmer(
            FarmerConfig(
                rerank_kernel="bulk", incremental_rerank=False, **common
            )
        )
        fa.mine(trace)
        fb.mine(trace)
        node_map = fa.constructor.graph.node_map()
        widest = max(len(n.succ_fids) for n in node_map.values())
        assert widest >= 64  # the numpy partial-select path engaged
        for fid in fb.constructor.graph.nodes():
            assert fa.correlators(fid) == fb.correlators(fid)


class TestUpdateBatch:
    @pytest.mark.parametrize("policy", ["merge", "latest", "first"])
    @pytest.mark.parametrize("freeze", [0, 4], ids=["nofreeze", "freeze4"])
    def test_matches_update_loop(self, policy, freeze):
        """Batch folding is observably identical to the per-record
        loop: same vectors *and* the same per-file version trajectory
        (the freeze threshold and sim memos key on versions)."""
        trace = generate_trace("hp", 3_000, seed=11)
        cfg = FarmerConfig(sv_policy=policy, vector_freeze_threshold=freeze)
        batched = Farmer(cfg).constructor.vectors
        looped = Farmer(cfg).constructor.vectors
        batched.update_batch(trace)
        for record in trace:
            looped.update(record)
        va, ra = batched.maps()
        vb, rb = looped.maps()
        assert ra == rb
        assert va.keys() == vb.keys()
        for fid in va:
            assert va[fid].scalar_ids == vb[fid].scalar_ids, fid
            assert va[fid].path_ids == vb[fid].path_ids, fid

    def test_alternating_paths_probe_case(self):
        """A path *string* change with already-merged ids is the one
        case the deferred build must materialise mid-batch (the
        equality probe); alternate two paths to force it repeatedly."""
        records = [
            make_record(1, ts=i, path=("/a/x", "/b/x")[i % 2])
            for i in range(12)
        ] + [make_record(2, ts=100 + i, path="/c/y") for i in range(3)]
        cfg = FarmerConfig(sv_policy="merge", merge_cap=6)
        batched = Farmer(cfg).constructor.vectors
        looped = Farmer(cfg).constructor.vectors
        batched.update_batch(records)
        for record in records:
            looped.update(record)
        va, ra = batched.maps()
        vb, rb = looped.maps()
        assert ra == rb
        for fid in va:
            assert va[fid].scalar_ids == vb[fid].scalar_ids
            assert va[fid].path_ids == vb[fid].path_ids
