"""Focused tests for Stage 3 (CoMiner) and the experiment helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cominer import CoMiner
from repro.core.config import FarmerConfig
from repro.core.constructor import GraphConstructor
from repro.core.extractor import Extractor
from repro.core.farmer import Farmer
from repro.experiments.common import (
    TRACE_CACHE_CAPACITY,
    cached_trace,
    farmer_config_for,
    make_fpa,
    make_lru,
    make_nexus_prefetcher,
    mean,
    sim_config_for,
    trace_attributes,
)
from tests.conftest import sequence_records


def build_miner(config: FarmerConfig):
    extractor = Extractor(config.attributes)
    constructor = GraphConstructor(config, extractor)
    return constructor, CoMiner(config, constructor)


class TestCoMiner:
    def test_reevaluate_builds_list(self):
        cfg = FarmerConfig(max_strength=0.0)
        constructor, miner = build_miner(cfg)
        for r in sequence_records([1, 2, 3] * 5, path="/d/x"):
            constructor.observe(r)
        lst = miner.reevaluate(1)
        assert len(lst) > 0
        assert lst.is_sorted()

    def test_stale_entries_dropped_after_graph_eviction(self):
        cfg = FarmerConfig(max_strength=0.0, successor_capacity=2, window=1)
        constructor, miner = build_miner(cfg)
        # successors of 0 churn: 1,2,3 but capacity 2
        for r in sequence_records([0, 1, 0, 1, 0, 2, 0, 3]):
            constructor.observe(r)
            miner.reevaluate(r.fid)
        lst = miner.reevaluate(0)
        live = set(constructor.graph.successors(0))
        assert {e.fid for e in lst.entries()} <= live

    def test_semantic_distance_unknown_zero(self):
        cfg = FarmerConfig()
        _, miner = build_miner(cfg)
        assert miner.semantic_distance(1, 2) == 0.0

    def test_degree_bounds(self):
        """R is always within [0, 1] regardless of the mined stream."""
        cfg = FarmerConfig(max_strength=0.0)
        constructor, miner = build_miner(cfg)
        for r in sequence_records([1, 2, 1, 2, 2, 1, 3, 1, 2] * 4, path="/a/b"):
            constructor.observe(r)
        for src in (1, 2, 3):
            for dst in (1, 2, 3):
                assert 0.0 <= miner.correlation_degree(src, dst) <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=80))
    def test_lists_always_sorted_and_thresholded(self, fids):
        """Invariants hold for arbitrary access streams."""
        farmer = Farmer(FarmerConfig(max_strength=0.3))
        for r in sequence_records(fids):
            farmer.observe(r)
        for fid in set(fids):
            lst = farmer.miner.list_of(fid)
            if lst is None:
                continue
            assert lst.is_sorted()
            assert all(e.degree > 0.3 for e in lst.entries())


class TestExperimentCommonHelpers:
    def test_trace_attributes(self):
        assert "path" in trace_attributes("hp")
        assert "file" in trace_attributes("ins")

    def test_sim_config_per_trace(self):
        for trace, cap in TRACE_CACHE_CAPACITY.items():
            assert sim_config_for(trace).cache_capacity == cap
        assert sim_config_for("hp", cache_capacity=5).cache_capacity == 5

    def test_farmer_config_overrides(self):
        cfg = farmer_config_for("res", weight_p=0.2)
        assert cfg.weight_p == 0.2
        assert cfg.attributes == trace_attributes("res")

    def test_factories(self):
        assert make_fpa("hp").farmer.config.attributes == trace_attributes("hp")
        assert make_nexus_prefetcher(group_size=3).k == 3
        assert make_lru().candidates(None) == []

    def test_cached_trace_identity(self):
        a = cached_trace("hp", 300, 1)
        b = cached_trace("hp", 300, 1)
        assert a is b
        assert len(a) == 300

    def test_mean_skips_nan(self):
        assert mean([1.0, float("nan"), 3.0]) == pytest.approx(2.0)
        assert mean([]) != mean([])  # NaN
