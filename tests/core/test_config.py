"""Tests for FarmerConfig validation and derivations."""

import pytest

from repro.core.config import DEFAULT_ATTRIBUTES, PATHLESS_ATTRIBUTES, FarmerConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = FarmerConfig()
        assert cfg.weight_p == 0.7
        assert cfg.max_strength == 0.4
        assert cfg.path_method == "ipa"
        assert cfg.attributes == DEFAULT_ATTRIBUTES

    def test_pathless_set_has_file_id(self):
        assert "file" in PATHLESS_ATTRIBUTES
        assert "path" not in PATHLESS_ATTRIBUTES


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight_p": -0.1},
            {"weight_p": 1.1},
            {"max_strength": 2.0},
            {"window": 0},
            {"lda_decrement": 1.5},
            {"weight_schedule": "exp"},
            {"attributes": ()},
            {"attributes": ("user", "nope")},
            {"path_method": "xyz"},
            {"path_mode": "xyz"},
            {"sv_policy": "random"},
            {"merge_cap": 0},
            {"successor_capacity": 0},
            {"correlator_capacity": 0},
            {"prefetch_k": -1},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            FarmerConfig(**kwargs)

    def test_accepts_boundaries(self):
        FarmerConfig(weight_p=0.0)
        FarmerConfig(weight_p=1.0)
        FarmerConfig(max_strength=0.0)
        FarmerConfig(prefetch_k=0)


class TestDerivations:
    def test_with_revalidates(self):
        cfg = FarmerConfig()
        assert cfg.with_(weight_p=0.5).weight_p == 0.5
        with pytest.raises(ConfigError):
            cfg.with_(weight_p=5.0)

    def test_with_preserves_other_fields(self):
        cfg = FarmerConfig(window=7)
        assert cfg.with_(weight_p=0.1).window == 7

    def test_as_nexus_reduction(self):
        """§7: p=0 and no filtering reduces FARMER to Nexus."""
        nexus_like = FarmerConfig().as_nexus()
        assert nexus_like.weight_p == 0.0
        assert nexus_like.max_strength == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FarmerConfig().weight_p = 0.5
