"""Tests for Stage 1 (Extracting)."""

from repro.core.extractor import Extractor
from repro.vsm.vocabulary import Vocabulary
from tests.conftest import make_record


class TestExtractor:
    def test_scalar_items(self):
        ex = Extractor(("user", "process"))
        v = ex.extract(make_record(1, uid=5, pid=9))
        assert len(v.scalar_ids) == 2
        assert v.path_ids is None

    def test_path_tokenised(self):
        ex = Extractor(("user", "path"))
        v = ex.extract(make_record(1, uid=5, path="/a/b/c"))
        assert v.path_ids is not None
        assert len(v.path_ids) == 3

    def test_missing_path_skipped(self):
        ex = Extractor(("user", "path"))
        v = ex.extract(make_record(1, uid=5, path=None))
        assert v.path_ids is None
        assert len(v.scalar_ids) == 1

    def test_shared_vocabulary_comparable(self):
        vocab = Vocabulary()
        ex1 = Extractor(("user",), vocab)
        ex2 = Extractor(("user",), vocab)
        v1 = ex1.extract(make_record(1, uid=5))
        v2 = ex2.extract(make_record(2, uid=5))
        assert v1.scalar_ids == v2.scalar_ids

    def test_same_value_different_attr_distinct(self):
        ex = Extractor(("user", "process"))
        v = ex.extract(make_record(1, uid=7, pid=7))
        assert len(set(v.scalar_ids)) == 2

    def test_file_attribute(self):
        ex = Extractor(("file", "dev"))
        v1 = ex.extract(make_record(1, dev=0))
        v2 = ex.extract(make_record(2, dev=0))
        # fid differs, dev matches
        assert len(set(v1.scalar_ids) & set(v2.scalar_ids)) == 1

    def test_approx_bytes(self):
        ex = Extractor(("user", "path"))
        before = ex.approx_bytes()
        for i in range(50):
            ex.extract(make_record(i, uid=i, path=f"/d/{i}"))
        assert ex.approx_bytes() > before
