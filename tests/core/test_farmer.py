"""Tests for the FARMER pipeline (constructor, CoMiner, sorter, façade)."""

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from tests.conftest import make_record, sequence_records


def run_pattern(farmer: Farmer, fids, **kwargs):
    for r in sequence_records(fids, **kwargs):
        farmer.observe(r)
    return farmer


class TestObserve:
    def test_builds_graph_and_lists(self):
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        run_pattern(farmer, [1, 2, 3] * 10, path="/p/x")
        assert farmer.constructor.graph.n_nodes() == 3
        assert len(farmer.correlators(1)) > 0

    def test_correlators_sorted_descending(self):
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        run_pattern(farmer, [1, 2, 1, 3, 1, 2, 1, 2] * 6)
        entries = farmer.correlators(1)
        degrees = [e.degree for e in entries]
        assert degrees == sorted(degrees, reverse=True)

    def test_predict_respects_k(self):
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        run_pattern(farmer, [1, 2, 3, 4, 5] * 8)
        assert len(farmer.predict(1, k=2)) <= 2
        assert farmer.predict(99) == []

    def test_threshold_filters(self):
        """With an impossible threshold nothing is ever valid."""
        farmer = Farmer(FarmerConfig(max_strength=1.0))
        run_pattern(farmer, [1, 2] * 20, uid=1, pid=1, host=1, path="/a/b")
        assert farmer.correlators(1) == []

    def test_op_filter(self):
        farmer = Farmer(FarmerConfig(op_filter=("open",)))
        farmer.observe(make_record(1, op="stat"))
        farmer.observe(make_record(2, op="stat"))
        assert farmer.stats().n_observed == 0
        farmer.observe(make_record(3, op="open"))
        assert farmer.stats().n_observed == 1

    def test_mine_chains(self):
        farmer = Farmer()
        assert farmer.mine(sequence_records([1, 2, 3])) is farmer


class TestFunctionTwo:
    def test_blend(self):
        """R = sim*p + F*(1-p) holds for a mined pair."""
        cfg = FarmerConfig(weight_p=0.6, max_strength=0.0)
        farmer = Farmer(cfg)
        run_pattern(farmer, [1, 2] * 10, uid=3, pid=4, host=5, path="/d/f")
        sim = farmer.semantic_distance(1, 2)
        freq = farmer.access_frequency(1, 2)
        expected = sim * 0.6 + freq * 0.4
        assert farmer.correlation_degree(1, 2) == pytest.approx(expected)

    def test_p_zero_is_frequency_only(self):
        farmer = Farmer(FarmerConfig(weight_p=0.0, max_strength=0.0))
        run_pattern(farmer, [1, 2] * 10)
        assert farmer.correlation_degree(1, 2) == pytest.approx(
            farmer.access_frequency(1, 2)
        )

    def test_p_one_is_similarity_only(self):
        farmer = Farmer(FarmerConfig(weight_p=1.0, max_strength=0.0))
        run_pattern(farmer, [1, 2] * 10, path="/d/f")
        assert farmer.correlation_degree(1, 2) == pytest.approx(
            farmer.semantic_distance(1, 2)
        )

    def test_unseen_pair_zero(self):
        farmer = Farmer()
        assert farmer.correlation_degree(1, 2) == 0.0
        assert farmer.semantic_distance(1, 2) == 0.0
        assert farmer.access_frequency(1, 2) == 0.0


class TestNexusReduction:
    def test_p0_ranking_matches_nexus(self, hp_trace):
        """§7: FARMER with p=0 and no threshold ranks like Nexus."""
        from repro.baselines.nexus import Nexus

        farmer = Farmer(
            FarmerConfig(weight_p=0.0, max_strength=0.0, correlator_capacity=32)
        )
        nexus = Nexus(window=4, successor_capacity=32)
        subset = hp_trace[:600]
        for r in subset:
            farmer.observe(r)
            nexus.observe(r)
        agreements = 0
        checked = 0
        for r in subset[:200]:
            f_top = farmer.predict(r.fid, k=1)
            n_top = nexus.predict(r.fid, k=1)
            if f_top and n_top:
                checked += 1
                agreements += f_top[0] == n_top[0]
        assert checked > 50
        # ranking criteria differ only by the N_A normalisation's tie
        # handling, so agreement must be near-total
        assert agreements / checked > 0.9


class TestStatsAndMemory:
    def test_stats_counts(self, hp_trace):
        farmer = Farmer()
        farmer.mine(hp_trace[:500])
        stats = farmer.stats()
        assert stats.n_observed == 500
        assert stats.n_files > 0
        assert stats.n_edges > 0
        assert stats.vocabulary_size > 0
        assert stats.memory_bytes > 0
        assert stats.memory_megabytes == stats.memory_bytes / 1e6

    def test_memory_grows_with_mining(self, hp_trace):
        farmer = Farmer()
        farmer.mine(hp_trace[:100])
        early = farmer.memory_bytes()
        farmer.mine(hp_trace[100:600])
        assert farmer.memory_bytes() > early

    def test_threshold_bounds_memory(self, hp_trace):
        """§3.3: filtering keeps the footprint smaller."""
        tight = Farmer(FarmerConfig(max_strength=0.6))
        loose = Farmer(FarmerConfig(max_strength=0.0))
        tight.mine(hp_trace)
        loose.mine(hp_trace)
        assert tight.stats().n_entries < loose.stats().n_entries

    def test_snapshot(self, hp_trace):
        farmer = Farmer()
        farmer.mine(hp_trace[:400])
        snap = farmer.snapshot()
        assert snap.n_lists > 0
        assert snap.n_entries >= snap.n_lists  # lists are non-empty
        assert 0 < snap.mean_top_degree <= 1.0


class TestSorter:
    def test_strongest_pairs(self, hp_trace):
        farmer = Farmer()
        farmer.mine(hp_trace[:500])
        pairs = farmer.sorter.strongest_pairs(5)
        assert len(pairs) <= 5
        degrees = [e.degree for _, e in pairs]
        assert degrees == sorted(degrees, reverse=True)

    def test_top_empty_for_unknown(self):
        farmer = Farmer()
        assert farmer.sorter.top(123, 3) == []
