"""Lazy vs eager mining: the dirty/lazy contract and its equivalence.

The refactored hot path defers the full Algorithm-1 re-rank to the first
query of a dirty Correlator List. These tests pin the contract:

* query results are bit-identical to the eager per-request schedule when
  queries follow the triggering request (the FPA pattern) — property-
  tested over a 20k-record synthetic trace;
* a stale cached similarity is never served after a vector change;
* the batched ``mine()`` fast path agrees with an ``observe()`` loop.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.traces.synthetic import generate_trace
from repro.vsm.similarity import similarity
from tests.conftest import make_record, sequence_records


def lazy_eager_pair(**kwargs) -> tuple[Farmer, Farmer]:
    cfg = FarmerConfig(**kwargs)
    return Farmer(cfg.with_(lazy_reevaluation=True)), Farmer(
        cfg.with_(lazy_reevaluation=False)
    )


class TestEagerLazyEquivalence:
    def test_20k_trace_equivalence(self, synthetic_trace):
        """Acceptance property: over a 20k-record synthetic trace, the
        lazy Farmer returns identical ``correlators()``/``predict()``
        results to the eager schedule at every query point."""
        trace = synthetic_trace("hp", 20_000, seed=11)
        lazy, eager = lazy_eager_pair(max_strength=0.3)
        seen: set[int] = set()
        for i, record in enumerate(trace):
            lazy.observe(record)
            eager.observe(record)
            seen.add(record.fid)
            # the FPA query pattern: ask about the file just requested
            assert lazy.correlators(record.fid) == eager.correlators(record.fid)
            assert lazy.predict(record.fid) == eager.predict(record.fid)
            if i % 2000 == 1999:
                # full-state checkpoint: every file ever seen agrees
                for fid in seen:
                    assert lazy.correlators(fid) == eager.correlators(fid)
        assert lazy.snapshot() == eager.snapshot()
        assert lazy.stats().n_observed == eager.stats().n_observed == len(trace)

    def test_equivalence_pathless_trace(self):
        """Same property on an INS-style (path-less) attribute set."""
        from repro.core.config import PATHLESS_ATTRIBUTES

        trace = generate_trace("ins", 3_000, seed=5)
        lazy, eager = lazy_eager_pair(
            max_strength=0.2, attributes=PATHLESS_ATTRIBUTES
        )
        for record in trace:
            lazy.observe(record)
            eager.observe(record)
            assert lazy.predict(record.fid) == eager.predict(record.fid)

    def test_equivalence_without_cache(self):
        """Lazy/eager agreement does not depend on the similarity cache."""
        trace = generate_trace("hp", 1_500, seed=3)
        lazy, eager = lazy_eager_pair(max_strength=0.3, sim_cache_capacity=0)
        for record in trace:
            lazy.observe(record)
            eager.observe(record)
            assert lazy.correlators(record.fid) == eager.correlators(record.fid)


class TestDirtyProtocol:
    def test_observe_marks_dirty_query_clears(self):
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        for r in sequence_records([1, 2, 1, 2]):
            farmer.observe(r)
        assert farmer.miner.is_dirty(1)
        assert farmer.miner.is_dirty(2)
        farmer.correlators(1)
        assert not farmer.miner.is_dirty(1)
        assert farmer.miner.is_dirty(2)

    def test_snapshot_flushes_all(self):
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        for r in sequence_records([1, 2, 3] * 4):
            farmer.observe(r)
        assert farmer.miner.n_dirty() > 0
        farmer.snapshot()
        assert farmer.miner.n_dirty() == 0

    def test_eager_mode_never_dirty(self):
        farmer = Farmer(FarmerConfig(max_strength=0.0, lazy_reevaluation=False))
        for r in sequence_records([1, 2, 3] * 4):
            farmer.observe(r)
        assert farmer.miner.n_dirty() == 0

    def test_query_unknown_fid(self):
        farmer = Farmer()
        assert farmer.miner.query(123) is None
        assert farmer.correlators(123) == []

    def test_stale_edges_swept_on_query(self):
        """The deferred re-rank performs the stale-edge sweep."""
        farmer = Farmer(
            FarmerConfig(max_strength=0.0, successor_capacity=2, window=1)
        )
        for r in sequence_records([0, 1, 0, 1, 0, 2, 0, 3]):
            farmer.observe(r)
        entries = {e.fid for e in farmer.correlators(0)}
        assert entries <= set(farmer.constructor.graph.successors(0))


class TestBatchMine:
    def test_mine_agrees_with_observe_loop(self):
        """The batched fast path and an observe() loop agree on every
        list once queried (both re-rank against the same final state)."""
        trace = generate_trace("hp", 2_000, seed=9)
        # correlator capacity >= successor capacity so both paths keep
        # exactly the same {R > threshold} set (no capacity-order effects)
        cfg = FarmerConfig(max_strength=0.3, correlator_capacity=64)
        batched = Farmer(cfg).mine(trace)
        looped = Farmer(cfg)
        for record in trace:
            looped.observe(record)
        fids = set(batched.constructor.graph.nodes())
        assert fids == set(looped.constructor.graph.nodes())
        for fid in fids:
            assert batched.correlators(fid) == looped.correlators(fid)
        snap_b, snap_l = batched.snapshot(), looped.snapshot()
        assert (snap_b.n_lists, snap_b.n_entries, snap_b.max_length) == (
            snap_l.n_lists,
            snap_l.n_entries,
            snap_l.max_length,
        )
        # mean aggregates sum floats in list-creation order, which differs
        # between the two paths — identical up to summation rounding
        assert snap_b.mean_length == pytest.approx(snap_l.mean_length)
        assert snap_b.mean_top_degree == pytest.approx(snap_l.mean_top_degree)

    def test_mine_leaves_nothing_dirty(self):
        farmer = Farmer().mine(generate_trace("hp", 500, seed=2))
        assert farmer.miner.n_dirty() == 0

    def test_mine_respects_op_filter(self):
        farmer = Farmer(FarmerConfig(op_filter=("open",)))
        farmer.mine(
            [make_record(1, op="stat"), make_record(2, op="open"), make_record(3)]
        )
        assert farmer.stats().n_observed == 2


class TestCacheInvalidation:
    def test_changed_vector_refreshes_similarity(self):
        """Regression (satellite): a file whose attributes change
        mid-trace must yield a refreshed sim on the next evaluation —
        a stale cached similarity is never served."""
        cfg = FarmerConfig(max_strength=0.0, sv_policy="latest", weight_p=1.0)
        farmer = Farmer(cfg)
        farmer.observe(make_record(1, uid=1, pid=1, host=1, path="/a/x"))
        farmer.observe(make_record(2, uid=1, pid=1, host=1, path="/a/y"))
        sim_before = farmer.semantic_distance(1, 2)  # warms the cache
        assert sim_before > 0.0
        assert farmer.semantic_distance(1, 2) == sim_before  # cache hit
        # file 2's attributes change entirely → vector version bump
        farmer.observe(make_record(2, uid=9, pid=9, host=9, path="/z/q"))
        sim_after = farmer.semantic_distance(1, 2)
        expected = similarity(
            farmer.constructor.vector_of(1), farmer.constructor.vector_of(2)
        )
        assert sim_after == pytest.approx(expected)
        assert sim_after != sim_before
        assert farmer.miner.sim_cache_stats().stale >= 1

    def test_changed_vector_refreshes_degree_on_query(self):
        """The re-ranked Correlator List reflects the fresh sim/R."""
        cfg = FarmerConfig(max_strength=0.0, sv_policy="latest", weight_p=0.9)
        farmer = Farmer(cfg)
        for r in sequence_records([1, 2] * 6, uid=1, pid=1, host=1, path="/a/b"):
            farmer.observe(r)
        before = {e.fid: e.degree for e in farmer.correlators(1)}
        assert before[2] > 0.0
        # file 2 is re-requested from an unrelated context, then file 1
        # again so its list is re-ranked on the next query
        farmer.observe(make_record(2, uid=7, pid=7, host=7, path="/q/r", ts=99))
        farmer.observe(make_record(1, uid=1, pid=1, host=1, path="/a/b", ts=100))
        after = {e.fid: e.degree for e in farmer.correlators(1)}
        assert after[2] == pytest.approx(farmer.correlation_degree(1, 2))
        assert after[2] != before[2]

    def test_cache_hits_accumulate_on_stable_vectors(self):
        """Repeated mining of a stable pattern mostly hits the cache."""
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        for r in sequence_records([1, 2, 3] * 30, path="/p/x"):
            farmer.observe(r)
            farmer.predict(r.fid)
        stats = farmer.miner.sim_cache_stats()
        assert stats.hits > stats.misses
