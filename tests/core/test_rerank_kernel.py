"""The one-pass re-rank kernel: bulk vs entrywise vs array.

The acceptance property for the re-rank kernels: over a randomized
20k-record synthetic trace, a Farmer on the bulk kernel (incremental
stamps on *and* off) — and, when numpy is available, on the vectorized
array kernel — returns bit-identical query results to the
entry-by-entry reference path, under both the lazy and the eager
schedule — while doing measurably less work (no insorts during
re-ranks, fewer Function-1 evaluation requests).
"""

import importlib.util

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.traces.synthetic import generate_trace

KERNELS = {
    "bulk+stamps": dict(rerank_kernel="bulk", incremental_rerank=True),
    "bulk": dict(rerank_kernel="bulk", incremental_rerank=False),
    "entrywise": dict(rerank_kernel="entrywise"),
}
if importlib.util.find_spec("numpy") is not None:
    # the vectorized kernel rides every equivalence property below; on
    # a no-numpy interpreter the matrix simply shrinks to the pure
    # kernels (the array kernel refuses to construct, by contract)
    KERNELS["array"] = dict(rerank_kernel="array")


def farmers_for(**common):
    return {k: Farmer(FarmerConfig(**common, **kw)) for k, kw in KERNELS.items()}


class TestKernelEquivalence:
    def test_20k_trace_equivalence_lazy(self, synthetic_trace):
        """Acceptance property (lazy schedule): bulk (stamps on and
        off) and entrywise agree at every query point of a 20k trace."""
        trace = synthetic_trace("hp", 20_000, seed=23)
        farmers = farmers_for(max_strength=0.3)
        ref = farmers["entrywise"]
        seen: set[int] = set()
        for i, record in enumerate(trace):
            for f in farmers.values():
                f.observe(record)
            seen.add(record.fid)
            expected = ref.correlators(record.fid)
            for name, f in farmers.items():
                if f is not ref:
                    assert f.correlators(record.fid) == expected, (name, i)
            if i % 4000 == 3999:
                for fid in seen:
                    expected = ref.correlators(fid)
                    for f in farmers.values():
                        assert f.correlators(fid) == expected
        snaps = {k: f.snapshot() for k, f in farmers.items()}
        assert snaps["bulk+stamps"] == snaps["entrywise"]
        assert snaps["bulk"] == snaps["entrywise"]

    def test_eager_schedule_equivalence(self):
        """Same property under the paper's literal per-request
        schedule (lazy_reevaluation=False)."""
        trace = generate_trace("hp", 6_000, seed=7)
        farmers = farmers_for(max_strength=0.3, lazy_reevaluation=False)
        ref = farmers["entrywise"]
        for record in trace:
            for f in farmers.values():
                f.observe(record)
            expected = ref.predict(record.fid)
            assert all(
                f.predict(record.fid) == expected for f in farmers.values()
            )

    def test_batch_mine_equivalence(self):
        """Chunked batch mining (the incremental service pattern, where
        the stamps actually skip work) stays bit-identical."""
        trace = generate_trace("hp", 8_000, seed=5)
        farmers = farmers_for(max_strength=0.3)
        for start in range(0, len(trace), 250):
            for f in farmers.values():
                f.mine(trace[start : start + 250])
        ref = farmers["entrywise"]
        fids = set(ref.constructor.graph.nodes())
        for f in farmers.values():
            assert set(f.constructor.graph.nodes()) == fids
        for fid in fids:
            expected = ref.correlators(fid)
            for f in farmers.values():
                assert f.correlators(fid) == expected
        # the stamps must have skipped at least some unchanged entries
        # (window-straddling predecessors across chunk boundaries)
        assert (
            farmers["bulk+stamps"].rerank_stats().entries_skipped_unchanged > 0
        )
        assert farmers["bulk"].rerank_stats().entries_skipped_unchanged == 0

    def test_small_capacity_overflow_equivalence(self):
        """The capacity cut is where ranking paths could diverge; pin
        equality under heavy list overflow (capacity 2, threshold 0)."""
        trace = generate_trace("hp", 4_000, seed=13)
        farmers = farmers_for(max_strength=0.0, correlator_capacity=2)
        ref = farmers["entrywise"]
        for record in trace:
            for f in farmers.values():
                f.observe(record)
            expected = ref.correlators(record.fid)
            assert all(
                f.correlators(record.fid) == expected for f in farmers.values()
            )


class TestOpCounts:
    def test_bulk_rerank_never_insorts(self):
        """Re-ranks on the bulk kernel cost zero binary insertions; the
        entrywise reference pays one per scanned entry."""
        trace = generate_trace("hp", 3_000, seed=3)
        farmers = farmers_for(max_strength=0.3)
        for record in trace:
            for f in farmers.values():
                f.observe(record)
                f.predict(record.fid)
        bulk = farmers["bulk+stamps"].rerank_stats()
        entry = farmers["entrywise"].rerank_stats()
        assert bulk.n_reevaluations == entry.n_reevaluations
        assert bulk.entries_scanned == entry.entries_scanned
        # bulk insorts come only from the eager single-edge refreshes
        assert bulk.insort_ops < entry.insort_ops / 2

    def test_stamps_cut_function1_requests(self):
        """With stable vectors, the per-entry sim memo absorbs most
        Function-1 evaluation requests before they reach the cache."""
        trace = generate_trace("hp", 4_000, seed=9)

        def fpa(with_stamps: bool) -> Farmer:
            f = Farmer(
                FarmerConfig(
                    vector_freeze_threshold=8, incremental_rerank=with_stamps
                )
            )
            for record in trace:
                f.observe(record)
                f.predict(record.fid)
            return f

        stamped = fpa(True)
        plain = fpa(False)
        # identical outputs...
        fids = set(stamped.constructor.graph.nodes())
        for fid in fids:
            assert stamped.correlators(fid) == plain.correlators(fid)
        # ...with far fewer Function-1 evaluation requests, and no more
        # actual recomputations
        assert stamped.sim_cache_stats().lookups < plain.sim_cache_stats().lookups / 2
        assert stamped.sim_cache_stats().misses <= plain.sim_cache_stats().misses

    def test_semantic_distances_batch_kernel(self):
        """The batch kernel answers a whole successor set in one pass,
        agreeing with the single-pair path and warming the cache."""
        trace = generate_trace("hp", 1_000, seed=4)
        farmer = Farmer()
        for record in trace:
            farmer.observe(record)
        src = trace[0].fid
        dsts = list(farmer.constructor.graph.successors(src)) + [999_999]
        batch = farmer.miner.semantic_distances(src, dsts)
        assert len(batch) == len(dsts)
        assert batch == [farmer.semantic_distance(src, d) for d in dsts]
        assert batch[-1] == 0.0  # unseen fid
        # unseen source: all zeros
        assert farmer.miner.semantic_distances(888_888, dsts) == [0.0] * len(dsts)

    def test_rerank_stats_exposed_via_farmer_stats(self):
        farmer = Farmer()
        farmer.mine(generate_trace("hp", 500, seed=2))
        stats = farmer.stats()
        assert stats.rerank == farmer.rerank_stats()
        assert stats.rerank.n_reevaluations > 0
        assert stats.rerank.entries_scanned > 0


class TestStampCorrectness:
    def test_stamp_never_serves_stale_degree(self):
        """A stamp only matches when every input matches, so a changed
        vector or frequency always recomputes — spot-check by forcing
        vector churn between queries."""
        from tests.conftest import make_record

        cfg = FarmerConfig(max_strength=0.0, sv_policy="latest", weight_p=0.9)
        farmer = Farmer(cfg)
        for i in range(6):
            farmer.observe(make_record(1, uid=1, pid=1, host=1, ts=2 * i))
            farmer.observe(make_record(2, uid=1, pid=1, host=1, ts=2 * i + 1))
        before = {e.fid: e.degree for e in farmer.correlators(1)}
        farmer.observe(make_record(2, uid=9, pid=9, host=9, ts=100))
        farmer.observe(make_record(1, uid=1, pid=1, host=1, ts=101))
        after = {e.fid: e.degree for e in farmer.correlators(1)}
        assert after[2] == pytest.approx(farmer.correlation_degree(1, 2))
        assert after[2] != before[2]

    def test_config_validates_kernel_name(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FarmerConfig(rerank_kernel="quantum")
