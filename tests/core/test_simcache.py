"""Tests for the versioned similarity cache (Stage 3 hot-path support)."""

import pytest

from repro.core.config import FarmerConfig
from repro.core.simcache import SimilarityCache
from repro.errors import ConfigError


class TestLookupStore:
    def test_miss_then_hit(self):
        cache = SimilarityCache(capacity=8)
        assert cache.lookup(1, 2, 1, 1) is None
        cache.store(1, 2, 1, 1, 0.5)
        assert cache.lookup(1, 2, 1, 1) == 0.5
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_symmetric_key(self):
        """sim is symmetric: (a, b) and (b, a) share one entry."""
        cache = SimilarityCache(capacity=8)
        cache.store(2, 1, ver_a=5, ver_b=3, value=0.25)
        assert cache.lookup(1, 2, ver_a=3, ver_b=5) == 0.25
        assert len(cache) == 1

    def test_version_mismatch_is_stale_miss(self):
        """A bumped endpoint version must never serve the old value."""
        cache = SimilarityCache(capacity=8)
        cache.store(1, 2, 1, 1, 0.9)
        assert cache.lookup(1, 2, 2, 1) is None  # a's vector changed
        assert cache.lookup(1, 2, 1, 2) is None  # b's vector changed
        stats = cache.stats()
        assert stats.stale == 2
        assert stats.misses == 2

    def test_store_overwrites_stale_entry(self):
        cache = SimilarityCache(capacity=8)
        cache.store(1, 2, 1, 1, 0.9)
        cache.store(1, 2, 2, 1, 0.1)
        assert len(cache) == 1
        assert cache.lookup(1, 2, 2, 1) == 0.1
        assert cache.lookup(1, 2, 1, 1) is None


class TestCapacity:
    def test_lru_eviction(self):
        cache = SimilarityCache(capacity=2)
        cache.store(1, 2, 1, 1, 0.1)
        cache.store(1, 3, 1, 1, 0.2)
        assert cache.lookup(1, 2, 1, 1) == 0.1  # refresh (1,2)
        cache.store(1, 4, 1, 1, 0.3)  # evicts (1,3), the LRU entry
        assert cache.lookup(1, 3, 1, 1) is None
        assert cache.lookup(1, 2, 1, 1) == 0.1
        assert cache.lookup(1, 4, 1, 1) == 0.3
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_capacity_zero_disables(self):
        cache = SimilarityCache(capacity=0)
        cache.store(1, 2, 1, 1, 0.5)
        assert len(cache) == 0
        assert cache.lookup(1, 2, 1, 1) is None
        assert cache.stats().hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityCache(capacity=-1)

    def test_config_knob_rejected_negative(self):
        with pytest.raises(ConfigError):
            FarmerConfig(sim_cache_capacity=-5)


class TestStats:
    def test_hit_rate(self):
        cache = SimilarityCache(capacity=8)
        cache.store(1, 2, 1, 1, 0.5)
        for _ in range(3):
            cache.lookup(1, 2, 1, 1)
        cache.lookup(3, 4, 1, 1)
        stats = cache.stats()
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.size == 1
        assert stats.capacity == 8

    def test_idle_hit_rate_zero(self):
        assert SimilarityCache().stats().hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = SimilarityCache(capacity=8)
        cache.store(1, 2, 1, 1, 0.5)
        cache.lookup(1, 2, 1, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_approx_bytes_grows(self):
        cache = SimilarityCache(capacity=64)
        empty = cache.approx_bytes()
        for i in range(10):
            cache.store(0, i + 1, 1, 1, 0.5)
        assert cache.approx_bytes() > empty
