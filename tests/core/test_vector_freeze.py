"""The vector-stability heuristic (``vector_freeze_threshold``).

ROADMAP follow-up: the merge policy rewrites hot shared files' vectors
dozens of times early in a trace, and every rewrite invalidates all of
the file's cached similarities — the HP-trace hit rate sat around 10%.
Freezing a vector after N rewrites keeps versions stable, so the
regression test here pins the headline effect: the hit rate on the HP
trace rises severalfold once vectors saturate.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.errors import ConfigError
from repro.traces.synthetic import generate_trace
from tests.conftest import make_record


def fpa_loop(config: FarmerConfig, trace) -> Farmer:
    farmer = Farmer(config)
    for record in trace:
        farmer.observe(record)
        farmer.predict(record.fid)
    return farmer


class TestFreezeSemantics:
    def test_default_off(self):
        assert FarmerConfig().vector_freeze_threshold == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            FarmerConfig(vector_freeze_threshold=-1)

    def test_version_stops_at_threshold(self):
        cfg = FarmerConfig(sv_policy="latest", vector_freeze_threshold=3)
        farmer = Farmer(cfg)
        store = farmer.constructor.vectors
        for i in range(10):
            # every request rewrites the vector until the freeze bites
            farmer.observe(make_record(1, uid=i, pid=i, host=i, ts=i))
        assert store.version_of(1) == 3
        assert store.is_frozen(1)

    def test_frozen_vector_keeps_content(self):
        cfg = FarmerConfig(sv_policy="latest", vector_freeze_threshold=1)
        farmer = Farmer(cfg)
        farmer.observe(make_record(1, uid=7, pid=7, host=7))
        frozen = farmer.constructor.vector_of(1)
        farmer.observe(make_record(1, uid=9, pid=9, host=9, ts=1))
        assert farmer.constructor.vector_of(1) == frozen

    def test_unfrozen_below_threshold(self):
        cfg = FarmerConfig(sv_policy="latest", vector_freeze_threshold=5)
        farmer = Farmer(cfg)
        farmer.observe(make_record(1, uid=1, pid=1, host=1))
        assert not farmer.constructor.vectors.is_frozen(1)

    def test_threshold_off_never_freezes(self):
        farmer = Farmer(FarmerConfig(sv_policy="latest"))
        for i in range(50):
            farmer.observe(make_record(1, uid=i, pid=i, host=i, ts=i))
        assert not farmer.constructor.vectors.is_frozen(1)
        assert farmer.constructor.vector_version(1) == 50


class TestHitRateRegression:
    def test_hp_trace_hit_rate_rises(self):
        """The headline regression: on the synthetic HP trace the FPA
        loop's sim-cache hit rate rises from ~10% (unfrozen, version
        churn) to well over 40% with a saturation threshold of 8."""
        trace = generate_trace("hp", 8_000, seed=1)
        # stamps off: the re-rank stamps front-run the cache (they absorb
        # lookups that would have been hits), so the heuristic's effect
        # on the cache is measured in isolation
        cold = fpa_loop(
            FarmerConfig(incremental_rerank=False), trace
        ).sim_cache_stats()
        hot = fpa_loop(
            FarmerConfig(vector_freeze_threshold=8, incremental_rerank=False),
            trace,
        ).sim_cache_stats()
        assert cold.hit_rate < 0.20  # the ROADMAP's ~10% baseline
        assert hot.hit_rate > 0.40
        assert hot.hit_rate > 3 * cold.hit_rate
        # fewer Function-1 recomputations is the point of the heuristic
        assert hot.misses < cold.misses

    def test_freeze_still_mines_correlations(self):
        """Freezing trades vector adaptivity, not mining correctness:
        the frozen run still produces populated Correlator Lists."""
        trace = generate_trace("hp", 2_000, seed=3)
        frozen = fpa_loop(FarmerConfig(vector_freeze_threshold=4), trace)
        snap = frozen.snapshot()
        assert snap.n_lists > 0
        assert snap.n_entries > 0
